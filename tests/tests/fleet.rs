//! Fleet integration: rendezvous failover against real listening
//! servers, and (when the `modsynd` binary is present) a supervised
//! kill-and-restart round trip.

use std::time::{Duration, Instant};

use modsyn_fleet::{sibling_binary, wait_for_200, FleetConfig, FleetRouter, Supervisor};
use modsyn_obs::Tracer;
use modsyn_svc::client::BackoffPolicy;
use modsyn_svc::{Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(60);

fn start() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(
        ServerConfig {
            jobs: 2,
            ..ServerConfig::default()
        },
        Tracer::disabled(),
    )
    .expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

/// Failover is the router's job: with the digest's primary replica down,
/// the same request must come back from the survivor, byte-identical.
#[test]
fn router_fails_over_to_the_surviving_replica() {
    let (h1, t1) = start();
    let (h2, t2) = start();
    let router = FleetRouter::new(vec![h1.addr(), h2.addr()]);
    let g = modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name("vbe-ex1").expect("benchmark"));
    let digest = modsyn_store::fnv1a64(g.as_bytes());
    let policy = BackoffPolicy {
        max_attempts: 2,
        max_total_wait: Duration::from_secs(2),
        ..BackoffPolicy::default()
    };

    let first = router
        .route(
            digest,
            "POST",
            "/synth?method=modular",
            g.as_bytes(),
            TIMEOUT,
            &policy,
        )
        .expect("fleet route");
    assert_eq!(first.status, 200, "{}", first.text());

    // Kill the digest's primary; the secondary must absorb the re-route.
    let primary = router.primary(digest).expect("two replicas");
    let (dead_h, dead_t, alive_h, alive_t) = if primary == h1.addr() {
        (h1, t1, h2, t2)
    } else {
        (h2, t2, h1, t1)
    };
    dead_h.shutdown();
    dead_t.join().expect("server thread").expect("server run");

    let failed_over = router
        .route(
            digest,
            "POST",
            "/synth?method=modular",
            g.as_bytes(),
            TIMEOUT,
            &policy,
        )
        .expect("failover route");
    assert_eq!(failed_over.status, 200);
    assert_eq!(
        failed_over.body, first.body,
        "failover answer must be byte-identical"
    );

    alive_h.shutdown();
    alive_t.join().expect("server thread").expect("server run");
}

/// End-to-end supervision of real `modsynd` replicas: kill one with
/// SIGKILL, let the supervisor notice and restart it, and require the
/// replacement to report ready. Skips (with a note) when the `modsynd`
/// binary has not been built alongside the test runner.
#[test]
fn supervisor_restarts_a_killed_modsynd_replica() {
    let Ok(modsynd) = sibling_binary("modsynd") else {
        eprintln!("skipping: modsynd binary not built (run a full workspace build first)");
        return;
    };
    let base_port = 23000 + (std::process::id() % 9000) as u16;
    let dir = std::env::temp_dir().join(format!("modsyn-itest-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = FleetConfig {
        command: vec![
            modsynd.to_string_lossy().into_owned(),
            "--addr".into(),
            "127.0.0.1:{port}".into(),
            "--access-log".into(),
            "off".into(),
            "--durable".into(),
            format!("{}/replica-{{replica}}", dir.display()),
        ],
        replicas: 2,
        base_port,
        backoff_initial: Duration::from_millis(10),
        ..FleetConfig::default()
    };
    let mut sup = Supervisor::start(config).expect("start fleet");
    for addr in sup.addrs() {
        assert!(
            wait_for_200(addr, "/readyz", Duration::from_secs(20)),
            "replica at {addr} never became ready"
        );
    }

    assert!(sup.kill(0), "kill the live replica");
    let deadline = Instant::now() + Duration::from_secs(20);
    while sup.restarts(0) == 0 {
        assert!(Instant::now() < deadline, "supervisor never restarted it");
        let _ = sup.tick(Instant::now());
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        wait_for_200(sup.addrs()[0], "/readyz", Duration::from_secs(20)),
        "restarted replica never became ready"
    );
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
