//! Cross-crate chaos integration tests: the fault plane driving the pool,
//! the supervised retry ladder, the service circuit breaker and the
//! backoff client, all through public APIs and (for the service) a real
//! loopback listener.

use std::time::{Duration, Instant};

use modsyn::{synthesize, synthesize_with_retry, RetryPolicy, SynthesisOptions};
use modsyn_fault::{site, FaultPlan, FaultRule, Faults};
use modsyn_obs::Tracer;
use modsyn_par::WorkerPool;
use modsyn_svc::client::{self, BackoffPolicy};
use modsyn_svc::{BreakerConfig, Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(60);

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, Tracer::disabled()).expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

fn stop(handle: &ServerHandle, thread: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}

fn benchmark_g(name: &str) -> String {
    modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name(name).expect("known benchmark"))
}

fn post_synth(handle: &ServerHandle, body: &str) -> client::ClientResponse {
    client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        body.as_bytes(),
        TIMEOUT,
    )
    .expect("synth request")
}

fn metric(handle: &ServerHandle, name: &str) -> u64 {
    let response =
        client::request(handle.addr(), "GET", "/metrics", b"", TIMEOUT).expect("metrics request");
    modsyn_svc::Metrics::parse_line(&response.text(), name)
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{}", response.text()))
}

// ---------------------------------------------------------------------------
// Worker pool: contained panics at every site, gauges drain to zero.
// ---------------------------------------------------------------------------

#[test]
fn pool_contains_injected_panics_at_every_site_and_gauges_drain() {
    // One rule per panic site, one hit each. A job that panics at enqueue
    // never reaches the run probe, so the run rule needs no skip; the
    // drain site is probed by every job (even panicked ones), so skipping
    // two probes lands that hit on the third job. A single worker keeps
    // the queue_depth gauge on one span so "drains to zero" is a
    // well-defined last-write assertion.
    let faults = FaultPlan::new("chaos", 7)
        .rule(FaultRule::at(site::POOL_ENQUEUE).times(1))
        .rule(FaultRule::at(site::POOL_RUN).times(1))
        .rule(FaultRule::at(site::POOL_DRAIN).times(1).skip(2))
        .arm();
    let tracer = Tracer::enabled();
    let survivors = {
        let pool = WorkerPool::with_tracer_and_faults(1, tracer.clone(), faults.clone());

        // Job 1 dies at enqueue (closure never runs), job 2 at run (result
        // discarded), job 3 at drain (channel dropped); all surface as
        // errors on their own handles only.
        let errors: Vec<String> = (0..3)
            .map(|i| {
                pool.submit("doomed", move || i)
                    .join()
                    .expect_err("fault must surface")
                    .message
            })
            .collect();
        assert!(errors[0].contains(site::POOL_ENQUEUE), "{errors:?}");
        assert!(errors[1].contains(site::POOL_RUN), "{errors:?}");
        assert!(
            errors[2].contains("dropped before completion"),
            "{errors:?}"
        );
        assert_eq!(faults.total_injected(), 3);

        // Budgets spent: the same pool keeps serving ordinary work.
        let alive: Vec<usize> = (0..8)
            .map(|i| {
                pool.submit("alive", move || i * i)
                    .join()
                    .expect("healthy job")
            })
            .collect();
        assert_eq!(alive, (0..8).map(|i| i * i).collect::<Vec<_>>());
        alive.len()
    }; // drop the pool: workers drained and joined
    assert_eq!(survivors, 8);

    let report = tracer.report();
    assert_eq!(report.total_counter("injected_faults"), 3);
    assert!(report.total_counter("panics") >= 2, "enqueue + run panics");
    // The worker samples queue depth after every pop; once everything
    // drained its last sample must be zero.
    let workers = report.spans_with_prefix("worker:");
    assert_eq!(workers.len(), 1);
    assert_eq!(workers[0].gauge("queue_depth"), Some(0.0));
}

// ---------------------------------------------------------------------------
// Retry ladder: the supervised result is the clean result.
// ---------------------------------------------------------------------------

#[test]
fn ladder_output_under_faults_is_identical_to_the_clean_run_and_certifies() {
    let stg = modsyn_stg::benchmarks::by_name("nouse").expect("known benchmark");
    let limited = |faults: Faults| SynthesisOptions {
        solver: modsyn_sat::SolverOptions {
            max_backtracks: Some(40_000),
            ..Default::default()
        },
        faults,
        ..Default::default()
    };
    let clean = synthesize(&stg, &limited(Faults::none())).expect("clean run");

    let faults = FaultPlan::new("chaos", 11)
        .rule(FaultRule::at(site::SAT_ABORT).times(2))
        .arm();
    let out = synthesize_with_retry(&stg, &limited(faults.clone()), &RetryPolicy::default())
        .expect("ladder recovers");
    assert_eq!(
        out.attempts.len(),
        2,
        "both injected aborts were climbed over"
    );
    assert_eq!(faults.total_injected(), 2);

    // The recovered report is *the* report: same logic, same area, and it
    // passes the independent oracle including observation equivalence.
    assert_eq!(out.report.final_states, clean.final_states);
    assert_eq!(out.report.literals, clean.literals);
    let render = |r: &modsyn::SynthesisReport| -> Vec<String> {
        r.functions
            .iter()
            .map(|f| format!("{}={}", f.name, f.sop))
            .collect()
    };
    assert_eq!(render(&out.report), render(&clean));
    let spec = modsyn_sg::derive(&stg, &Default::default()).expect("spec");
    modsyn::certify_report(Some(&spec), &out.report).expect("oracle certifies");
}

// ---------------------------------------------------------------------------
// Circuit breaker over a live loopback server.
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_under_injected_failures_then_recovers_through_half_open() {
    // A persistent pool.run panic plan makes every synthesis fail (500) —
    // a worker panic is the one failure the server's retry ladder cannot
    // absorb, unlike sat.abort which the portfolio rung now recovers. A
    // threshold of 1.5 (trips on the second quick failure — the score
    // decays slightly between records, so 2.0 would never be reached) and
    // a short cooldown keep the test fast. We hold a clone of the armed
    // handle so the "fault cleared" transition is an explicit switch, not
    // a budget coincidence.
    let faults = FaultPlan::new("chaos", 3)
        .rule(FaultRule::at(site::POOL_RUN))
        .arm();
    let cooldown = Duration::from_millis(200);
    let (handle, thread) = start(ServerConfig {
        jobs: 1,
        faults: faults.clone(),
        breaker: BreakerConfig {
            failure_threshold: 1.5,
            cooldown,
            ..Default::default()
        },
        ..ServerConfig::default()
    });
    let g = benchmark_g("vbe-ex1");

    // Closed: failures pass through as 500s and score against the breaker.
    for _ in 0..2 {
        let r = post_synth(&handle, &g);
        assert_eq!(r.status, 500, "{}", r.text());
    }
    // Open: rejected up front with 503 + Retry-After, no synthesis run.
    let rejected = post_synth(&handle, &g);
    assert_eq!(rejected.status, 503, "{}", rejected.text());
    assert!(
        rejected.text().contains("breaker-open"),
        "{}",
        rejected.text()
    );
    let retry_after: u64 = rejected
        .header("retry-after")
        .expect("Retry-After header")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry_after >= 1);
    assert_eq!(metric(&handle, "modsynd_breaker_opens_total"), 1);
    assert!(metric(&handle, "modsynd_breaker_rejections_total") >= 1);

    // Half-open after the cooldown, with the fault still active: the probe
    // fails and the breaker re-opens for another cooldown.
    std::thread::sleep(cooldown + Duration::from_millis(50));
    let probe = post_synth(&handle, &g);
    assert_eq!(probe.status, 500, "{}", probe.text());
    assert_eq!(metric(&handle, "modsynd_breaker_opens_total"), 2);
    let reopened = post_synth(&handle, &g);
    assert_eq!(reopened.status, 503, "{}", reopened.text());

    // Clear the fault, wait out the cooldown: the half-open probe now
    // succeeds, the breaker closes, and traffic flows (200, certified).
    faults.set_enabled(false);
    std::thread::sleep(cooldown + Duration::from_millis(50));
    let recovered = post_synth(&handle, &g);
    assert_eq!(recovered.status, 200, "{}", recovered.text());
    assert!(recovered.text().contains("\"certified\":true"));
    // Closed again: the next request is admitted normally (served from
    // cache — hits never consult the breaker, but a fresh miss would).
    let after = post_synth(&handle, &g);
    assert_eq!(after.status, 200);
    assert!(
        faults.total_injected() >= 3,
        "both closed-state failures and the probe"
    );
    stop(&handle, thread);
}

// ---------------------------------------------------------------------------
// Backoff client against real sockets.
// ---------------------------------------------------------------------------

#[test]
fn client_backoff_honours_retry_after_but_caps_total_wait() {
    // queue_capacity 0: every cache miss is shed with 503 Retry-After: 1.
    let (handle, thread) = start(ServerConfig {
        jobs: 1,
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let g = benchmark_g("vbe-ex1");
    let policy = BackoffPolicy {
        max_attempts: 4,
        initial: Duration::from_millis(50),
        max_delay: Duration::from_secs(2),
        max_total_wait: Duration::from_millis(150),
        seed: 1,
    };
    let started = Instant::now();
    let response = client::request_with_backoff(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        g.as_bytes(),
        TIMEOUT,
        &policy,
    )
    .expect("the shed responses still parse");
    let elapsed = started.elapsed();
    assert_eq!(response.status, 503, "{}", response.text());
    // The server asked for 1s waits; the client honoured the header but
    // its 150ms total-wait budget cut retries short well before the 3s
    // that three obedient sleeps would take.
    assert!(
        elapsed >= Duration::from_millis(150),
        "a capped sleep happened: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "budget bounded the waits: {elapsed:?}"
    );
    let sheds = metric(&handle, "modsynd_shed_total");
    assert!(
        (2..=4).contains(&sheds),
        "retried at least once, stopped once the wait budget ran out: {sheds}"
    );
    stop(&handle, thread);
}

#[test]
fn client_backoff_retries_transient_connect_failures() {
    // Grab a port with no listener: every connect is refused, so every
    // attempt consumes a backoff sleep until attempts run out.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    }; // listener dropped: the port refuses connections
    let policy = BackoffPolicy {
        max_attempts: 3,
        initial: Duration::from_millis(40),
        max_delay: Duration::from_millis(200),
        max_total_wait: Duration::from_secs(2),
        seed: 9,
    };
    let started = Instant::now();
    let err = client::request_with_backoff(addr, "GET", "/healthz", b"", TIMEOUT, &policy)
        .expect_err("nothing is listening");
    let elapsed = started.elapsed();
    // Two sleeps happened between the three attempts: equal-jitter draws
    // from [base/2, base] give at least 20ms + 40ms.
    assert!(
        elapsed >= Duration::from_millis(60),
        "retries were spaced out: {elapsed:?}"
    );
    assert_ne!(
        err.kind(),
        std::io::ErrorKind::InvalidData,
        "a socket error, not a parse error"
    );
}
