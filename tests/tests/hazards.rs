//! End-to-end hazard story: detection, gate-level manifestation, removal.

use modsyn::{derive_logic, modular_resolve, remove_static_hazards, CscSolveOptions};
use modsyn_logic::{simulate_cover, static_hazards, Cover, DelayModel};
use modsyn_sg::{derive, DeriveOptions, EdgeLabel};
use modsyn_stg::benchmarks;

/// Adversarial delays for a hazardous transition `from -> to` on `cover`:
/// cubes covering only the `from` endpoint (about to turn off) get the
/// minimum delay, everything else the maximum — the worst case for a
/// static-1 pulse.
fn adversarial_delays(cover: &Cover, from: &[bool], to: &[bool]) -> DelayModel {
    let and_delays = cover
        .cubes()
        .iter()
        .map(|c| {
            if c.covers_minterm(from) && !c.covers_minterm(to) {
                1
            } else {
                5
            }
        })
        .collect();
    DelayModel {
        and_delays,
        or_delay: 1,
    }
}

#[test]
fn detected_hazards_manifest_and_removal_silences_them() {
    let mut demonstrated = 0usize;
    for name in ["wrdata", "pa", "vbe-ex1", "nouse"] {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        let functions = derive_logic(&out.graph).unwrap();
        let n = out.graph.signals().len();
        let vals = |s: usize| (0..n).map(|i| out.graph.value(s, i)).collect::<Vec<bool>>();
        let transitions: Vec<(Vec<bool>, Vec<bool>)> = out
            .graph
            .edges()
            .iter()
            .filter(|e| matches!(e.label, EdgeLabel::Signal { .. }))
            .map(|e| (vals(e.from), vals(e.to)))
            .collect();

        let repaired = remove_static_hazards(&out.graph, &functions);

        for (f, fixed) in functions.iter().zip(&repaired) {
            let report = static_hazards(f.sop.cover(), &transitions);
            for (from, to) in &report.hazardous {
                let delays = adversarial_delays(f.sop.cover(), from, to);
                let steps = vec![(0u64, from.clone()), (100, to.clone())];
                let before = simulate_cover(f.sop.cover(), &delays, &steps);
                assert!(
                    before.glitches >= 1,
                    "{name}/{}: detected hazard did not manifest",
                    f.name
                );
                demonstrated += 1;

                // The repaired cover on the same transition, with the same
                // adversarial policy applied to its own cubes.
                let delays = adversarial_delays(fixed.sop.cover(), from, to);
                let after = simulate_cover(fixed.sop.cover(), &delays, &steps);
                assert_eq!(
                    after.glitches, 0,
                    "{name}/{}: hazard survived removal",
                    f.name
                );
            }
        }
    }
    assert!(
        demonstrated >= 1,
        "expected at least one hazardous transition across the sample"
    );
}

#[test]
fn hazard_free_results_stay_clean_under_any_single_step() {
    // After removal, every specification transition of every function is
    // glitch-free under the adversarial delay policy.
    let stg = benchmarks::wrdata();
    let sg = derive(&stg, &DeriveOptions::default()).unwrap();
    let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
    let functions = derive_logic(&out.graph).unwrap();
    let repaired = remove_static_hazards(&out.graph, &functions);
    let n = out.graph.signals().len();
    let vals = |s: usize| (0..n).map(|i| out.graph.value(s, i)).collect::<Vec<bool>>();

    for f in &repaired {
        for e in out.graph.edges() {
            let (from, to) = (vals(e.from), vals(e.to));
            let delays = adversarial_delays(f.sop.cover(), &from, &to);
            let steps = vec![(0u64, from), (100, to)];
            let trace = simulate_cover(f.sop.cover(), &delays, &steps);
            assert_eq!(trace.glitches, 0, "{}", f.name);
        }
    }
}
