//! Cube-and-conquer integration: the `cnc` engine must honour the
//! workspace determinism contract end to end — identical cubes, winners,
//! stats and synthesised circuits for every `--jobs` value — and every
//! engine must drive the public `synthesize` entry point to an
//! oracle-certifiable result.

use modsyn::{certify_report, synthesize, Engine, Method, SynthesisOptions, SynthesisReport};
use modsyn_cnc::{cube_formula, solve_cnc, CncOptions, CubeOptions};
use modsyn_fault::Faults;
use modsyn_par::CancelToken;
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn with_engine(method: Method, engine: Engine) -> SynthesisOptions {
    let mut options = SynthesisOptions::for_method(method);
    options.engine = engine;
    options
}

/// Everything observable about a report except the wall clock.
fn canonical(report: &SynthesisReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{} {} | {} -> {} states | {} -> {} signals | {} literals",
        report.benchmark,
        report.method,
        report.initial_states,
        report.final_states,
        report.initial_signals,
        report.final_signals,
        report.literals,
    )
    .unwrap();
    for f in &report.formulas {
        writeln!(s, "formula {f:?}").unwrap();
    }
    for f in &report.functions {
        writeln!(s, "fn {} = {} [{} lit]", f.name, f.sop, f.literals).unwrap();
    }
    s
}

/// The cube list is a pure function of formula and options: repeated runs
/// (and runs under differently-shaped but equal options) are identical.
#[test]
fn cubing_a_benchmark_encoding_is_deterministic() {
    let stg = benchmarks::by_name("nak-pa").unwrap();
    let sg = derive(&stg, &DeriveOptions::default()).unwrap();
    let analysis = sg.csc_analysis();
    let pairs = analysis.csc_pairs.clone();
    let encoding = modsyn::encode_csc_partial(&sg, &analysis, &pairs, 1);
    let options = CubeOptions {
        depth: 3,
        cutoff: 4,
        candidates: 8,
    };
    let a = cube_formula(
        &encoding.formula,
        &options,
        &CancelToken::never(),
        &Faults::none(),
    )
    .expect("cubing must not abort");
    let b = cube_formula(
        &encoding.formula,
        &options,
        &CancelToken::never(),
        &Faults::none(),
    )
    .expect("cubing must not abort");
    assert_eq!(a.cubes, b.cubes);
    assert_eq!(a.forced_literals, b.forced_literals);
    assert_eq!(a.refuted_branches, b.refuted_branches);
    assert_eq!(a.propagations, b.propagations);
}

/// Conquering the same cube set on 1, 2, 4 and 8 workers returns the same
/// verdict, the same winning cube, the same model and the same aggregated
/// stats — the lowest-index-SAT contract of DESIGN.md §15.
#[test]
fn conquer_results_are_identical_across_worker_counts() {
    let stg = benchmarks::by_name("pe-rcv-ifc-fc").unwrap();
    let sg = derive(&stg, &DeriveOptions::default()).unwrap();
    let analysis = sg.csc_analysis();
    let pairs = analysis.csc_pairs.clone();
    let encoding = modsyn::encode_csc_partial(&sg, &analysis, &pairs, 2);
    let options = |jobs: usize| CncOptions {
        cube: CubeOptions {
            depth: 4,
            cutoff: 8,
            candidates: 8,
        },
        jobs,
        max_conflicts: None,
        max_decisions: None,
    };
    let reference = solve_cnc(
        &encoding.formula,
        &options(1),
        &CancelToken::never(),
        &Faults::none(),
    );
    assert!(
        reference.outcome.is_decided(),
        "reference conquer must decide, got {:?}",
        reference.outcome
    );
    for jobs in [2, 4, 8] {
        let run = solve_cnc(
            &encoding.formula,
            &options(jobs),
            &CancelToken::never(),
            &Faults::none(),
        );
        assert_eq!(run.winner, reference.winner, "jobs={jobs}");
        assert_eq!(run.cubes_spawned, reference.cubes_spawned, "jobs={jobs}");
        assert_eq!(run.cubes_refuted, reference.cubes_refuted, "jobs={jobs}");
        assert_eq!(run.stats, reference.stats, "jobs={jobs}");
        match (&reference.outcome, &run.outcome) {
            (modsyn_sat::Outcome::Satisfiable(a), modsyn_sat::Outcome::Satisfiable(b)) => {
                assert_eq!(a.as_slice(), b.as_slice(), "jobs={jobs}: model diverged");
            }
            (a, b) => assert_eq!(a, b, "jobs={jobs}"),
        }
    }
}

/// Full-pipeline determinism: `--engine cnc` synthesis reports are
/// byte-identical for every `--jobs` value (the conquer pool size follows
/// the synthesis-wide jobs knob in the CLI).
#[test]
fn cnc_synthesis_is_identical_across_jobs() {
    let stg = benchmarks::by_name("vbe4a").unwrap();
    let engine = |jobs: u32| Engine::Cnc {
        depth: 4,
        cutoff: 16,
        jobs,
    };
    let reference =
        synthesize(&stg, &with_engine(Method::Direct, engine(1))).expect("vbe4a direct/cnc jobs=1");
    for jobs in [2, 4] {
        let run = synthesize(&stg, &with_engine(Method::Direct, engine(jobs)))
            .unwrap_or_else(|e| panic!("vbe4a direct/cnc jobs={jobs}: {e}"));
        assert_eq!(canonical(&reference), canonical(&run), "jobs={jobs}");
    }
}

/// Every engine synthesises an oracle-certified circuit from the public
/// entry point, for both the modular and direct methods.
#[test]
fn all_engines_synthesize_certified_circuits() {
    let stg = benchmarks::by_name("alloc-outbound").unwrap();
    let spec = derive(&stg, &DeriveOptions::default()).unwrap();
    for method in [Method::Modular, Method::Direct] {
        for engine in [Engine::Dpll, Engine::Cdcl, Engine::cnc()] {
            let report = synthesize(&stg, &with_engine(method, engine))
                .unwrap_or_else(|e| panic!("{method} {engine}: {e}"));
            certify_report(Some(&spec), &report)
                .unwrap_or_else(|e| panic!("{method} {engine}: oracle violation: {e}"));
        }
    }
}
