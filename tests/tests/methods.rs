//! Cross-method integration: the three flows compared on the same inputs.

use modsyn::{synthesize, Method, SynthesisError, SynthesisOptions};
use modsyn_sat::SolverOptions;
use modsyn_stg::benchmarks;

fn with_limit(method: Method, limit: u64) -> SynthesisOptions {
    let mut options = SynthesisOptions::for_method(method);
    options.solver = SolverOptions {
        max_backtracks: Some(limit),
        ..SolverOptions::default()
    };
    options
}

#[test]
fn all_methods_agree_on_tiny_benchmarks() {
    for name in ["vbe-ex1", "vbe-ex2", "sendr-done", "nousc-ser", "nouse"] {
        let stg = benchmarks::by_name(name).unwrap();
        let modular = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))
            .unwrap_or_else(|e| panic!("{name} modular: {e}"));
        let direct = synthesize(&stg, &SynthesisOptions::for_method(Method::Direct))
            .unwrap_or_else(|e| panic!("{name} direct: {e}"));
        let lavagno = synthesize(&stg, &SynthesisOptions::for_method(Method::Lavagno))
            .unwrap_or_else(|e| panic!("{name} lavagno: {e}"));
        // On these tiny graphs every method should find the same number of
        // state signals and an identical-cost implementation.
        assert_eq!(modular.final_signals, direct.final_signals, "{name}");
        assert_eq!(modular.final_signals, lavagno.final_signals, "{name}");
        assert_eq!(modular.literals, direct.literals, "{name}");
    }
}

#[test]
fn lavagno_rejects_non_free_choice() {
    let stg = benchmarks::alex_nonfc();
    let err = synthesize(&stg, &SynthesisOptions::for_method(Method::Lavagno)).unwrap_err();
    assert_eq!(err, SynthesisError::NotFreeChoice);
    // The modular method is not restricted (the paper's key generality
    // claim): it synthesises the same STG fine.
    let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular)).unwrap();
    assert!(report.literals > 0);
}

#[test]
fn lavagno_reports_state_splitting_on_race_bound_instances() {
    // `pa` and `wrdata` need concurrently-excited state signals, which the
    // race-free restriction forbids — the analogue of the SIS internal
    // state error the paper reports for `pa`.
    for name in ["pa", "wrdata"] {
        let stg = benchmarks::by_name(name).unwrap();
        match synthesize(&stg, &with_limit(Method::Lavagno, 100_000)) {
            Err(SynthesisError::StateSplittingRequired) => {}
            other => panic!("{name}: expected split error, got {other:?}"),
        }
    }
}

#[test]
fn direct_method_aborts_on_the_largest_benchmark() {
    let stg = benchmarks::mr0();
    match synthesize(&stg, &with_limit(Method::Direct, 5_000)) {
        Err(SynthesisError::BacktrackLimit { .. }) => {}
        other => panic!(
            "expected backtrack-limit abort, got {:?}",
            other.map(|r| r.literals)
        ),
    }
}

#[test]
fn modular_survives_the_limit_that_kills_direct() {
    // The paper's headline: the same budget that aborts the direct method
    // is ample for the modular flow.
    let stg = benchmarks::mmu0();
    let direct = synthesize(&stg, &with_limit(Method::Direct, 5_000));
    assert!(
        matches!(direct, Err(SynthesisError::BacktrackLimit { .. })),
        "direct should abort at 5k backtracks"
    );
    let modular = synthesize(&stg, &with_limit(Method::Modular, 5_000))
        .expect("modular solves within the same budget");
    assert!(modular.literals > 0);
}

#[test]
fn formula_decomposition_shrinks_instances() {
    // Per-module formulas must be much smaller than the direct instance.
    let stg = benchmarks::mmu0();
    let modular = synthesize(&stg, &with_limit(Method::Modular, 50_000)).unwrap();
    let max_module_vars = modular
        .formulas
        .iter()
        .map(|f| f.variables)
        .max()
        .expect("at least one formula");
    // The direct encoding at the same signal count covers every state.
    // Compare against the actual direct encoding at the analysis lower
    // bound.
    let sg = modsyn_sg::derive(&stg, &modsyn_sg::DeriveOptions::default()).unwrap();
    let analysis = sg.csc_analysis();
    let direct = modsyn::encode_csc(&sg, &analysis, analysis.lower_bound.max(1));
    assert!(
        max_module_vars < direct.formula.num_vars(),
        "module {max_module_vars} vars vs direct {}",
        direct.formula.num_vars()
    );
    assert!(
        modular.formulas.iter().map(|f| f.clauses).max().unwrap() < direct.formula.clause_count()
    );
}
