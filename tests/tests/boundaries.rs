//! Boundary and stress cases across crates.

use modsyn_sg::{EdgeLabel, SgError, SignalMeta, StateGraph};
use modsyn_stg::{parse_g, write_g, Polarity, SignalKind};

fn meta(name: String) -> SignalMeta {
    SignalMeta {
        name,
        kind: SignalKind::Output,
    }
}

#[test]
fn state_graph_supports_exactly_64_signals() {
    let signals: Vec<SignalMeta> = (0..64).map(|i| meta(format!("s{i}"))).collect();
    let mut sg = StateGraph::new(signals).unwrap();
    assert_eq!(sg.full_mask(), u64::MAX);
    let all_ones = sg.add_state(u64::MAX);
    let all_but_top = sg.add_state(u64::MAX >> 1);
    sg.add_edge(
        all_ones,
        all_but_top,
        EdgeLabel::Signal {
            signal: 63,
            polarity: Polarity::Fall,
        },
    );
    assert!(sg.value(all_ones, 63));
    assert!(!sg.value(all_but_top, 63));
    assert_eq!(sg.code(all_ones) ^ sg.code(all_but_top), 1 << 63);
    // 65 signals must be rejected.
    let too_many: Vec<SignalMeta> = (0..65).map(|i| meta(format!("t{i}"))).collect();
    assert!(matches!(
        StateGraph::new(too_many),
        Err(SgError::TooManySignals { requested: 65 })
    ));
}

#[test]
fn deep_instance_numbers_round_trip_through_g() {
    // A signal with five pulses: instances up to /5.
    let mut lines = String::from(".model inst\n.inputs a\n.outputs b\n.graph\n");
    let mut prev = "a+".to_string();
    for i in 1..=5 {
        let (bp, bm) = if i == 1 {
            ("b+".to_string(), "b-".to_string())
        } else {
            (format!("b+/{i}"), format!("b-/{i}"))
        };
        lines.push_str(&format!("{prev} {bp}\n{bp} {bm}\n"));
        prev = bm;
    }
    lines.push_str(&format!("{prev} a-\na- a+\n.marking {{ <a-,a+> }}\n.end\n"));
    let stg = parse_g(&lines).unwrap();
    let b = stg.find_signal("b").unwrap();
    assert_eq!(stg.transitions_of(b).len(), 10);
    let again = parse_g(&write_g(&stg)).unwrap();
    assert_eq!(
        again.transitions_of(again.find_signal("b").unwrap()).len(),
        10
    );
}

#[test]
fn empty_and_degenerate_graphs_are_handled() {
    // A state graph with one state and no edges.
    let mut sg = StateGraph::new(vec![meta("x".into())]).unwrap();
    let s = sg.add_state(0);
    sg.set_initial(s);
    let analysis = sg.csc_analysis();
    assert!(analysis.satisfies_csc());
    assert!(analysis.satisfies_usc());
    assert_eq!(analysis.lower_bound, 0);
    // Hiding the only signal collapses to a single silent state.
    let q = sg.hide_signals(&[0]).unwrap();
    assert_eq!(q.graph.state_count(), 1);
    assert_eq!(q.graph.signals().len(), 0);
}

#[test]
fn sat_formula_with_many_variables_solves() {
    use modsyn_sat::{solve, CnfFormula, Lit, SolverOptions, Var};
    // A 2000-variable implication chain: forces all true.
    let n = 2000;
    let mut f = CnfFormula::new(n);
    f.add_clause([Lit::positive(Var::new(0))]);
    for i in 1..n {
        f.add_clause([Lit::negative(Var::new(i - 1)), Lit::positive(Var::new(i))]);
    }
    let out = solve(&f, SolverOptions::default());
    let model = out.model().expect("chain is satisfiable");
    assert!(model.value(Var::new(n - 1)));
}

#[test]
fn logic_cover_survives_wide_universes() {
    use modsyn_logic::{minimize, Cover, Cube};
    // 40 variables (beyond one cube word): f = x0 & x39.
    let n = 40;
    let on = Cover::from_cubes(n, vec![Cube::from_literals(n, &[(0, true), (39, true)])]);
    let r = minimize(&on, &Cover::empty(n));
    assert_eq!(r.cover.literal_count(), 2);
    let mut values = vec![false; n];
    values[0] = true;
    values[39] = true;
    assert!(r.cover.covers_minterm(&values));
}

#[test]
fn every_benchmark_stg_is_live() {
    use modsyn_petri::ReachabilityOptions;
    for (name, stg) in modsyn_stg::benchmarks::all() {
        let report = stg
            .net()
            .liveness(&ReachabilityOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.is_live(),
            "{name}: dead transitions {:?}",
            report.dead
        );
    }
}
