//! Incremental-synthesis integration tests: every Table-1 row is edited,
//! re-synthesised through a warm synthesis store, certified by the
//! independent oracle and byte-compared against from-scratch synthesis —
//! plus the serving surface (`/synth/incr`, `/explain`, `--store-snapshot`
//! warm restarts) against real loopback listeners.

use std::time::Duration;

use modsyn_bench::incr::{edit_specs, run_incr_row};
use modsyn_bench::PAPER_TABLE1;
use modsyn_obs::{parse_json, Tracer};
use modsyn_svc::client::{self, ClientResponse};
use modsyn_svc::{Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(120);
const SEED: usize = 0;

/// Runs the full cold → edit → from-scratch → incremental protocol for
/// each row. `run_incr_row` itself asserts the hard invariants (oracle
/// certification, byte identity with the from-scratch run, at least one
/// store hit, dirty strictly below total); the re-assertions here keep the
/// headline shape pinned even if the harness is refactored.
fn assert_incremental(names: &[&str]) {
    for name in names {
        let m = run_incr_row(name, SEED);
        assert!(m.store_hits >= 1, "{name}: incremental run reused nothing");
        assert!(
            m.dirty_modules < m.total_modules,
            "{name}: dirty {} not below total {}",
            m.dirty_modules,
            m.total_modules
        );
        assert_eq!(
            m.store_hits + m.dirty_modules,
            m.total_modules,
            "{name}: hits + dirty must cover every module solve"
        );
    }
}

// The 23 Table-1 rows, split so no single test dominates the (single
// threaded) suite wall clock. `incremental_tests_cover_every_table1_row`
// fails if a row is added or dropped without updating the groups.
const LARGE_ROWS: [&str; 4] = ["mr0", "mr1", "mmu0", "mmu1"];
const SMALL_ROWS_A: [&str; 7] = [
    "sbuf-ram-write",
    "vbe4a",
    "nak-pa",
    "pe-rcv-ifc-fc",
    "ram-read-sbuf",
    "alex-nonfc",
    "sbuf-send-pkt2",
];
const SMALL_ROWS_B: [&str; 6] = [
    "sbuf-send-ctl",
    "atod",
    "pa",
    "alloc-outbound",
    "wrdata",
    "fifo",
];
const SMALL_ROWS_C: [&str; 6] = [
    "sbuf-read-ctl",
    "nouse",
    "vbe-ex2",
    "nousc-ser",
    "sendr-done",
    "vbe-ex1",
];

#[test]
fn incremental_tests_cover_every_table1_row() {
    let mut covered: Vec<&str> = LARGE_ROWS
        .iter()
        .chain(&SMALL_ROWS_A)
        .chain(&SMALL_ROWS_B)
        .chain(&SMALL_ROWS_C)
        .copied()
        .collect();
    covered.sort_unstable();
    let mut expected: Vec<&str> = PAPER_TABLE1.iter().map(|r| r.name).collect();
    expected.sort_unstable();
    assert_eq!(covered, expected);
}

#[test]
fn incremental_identity_large_rows() {
    assert_incremental(&LARGE_ROWS);
}

#[test]
fn incremental_identity_small_rows_a() {
    assert_incremental(&SMALL_ROWS_A);
}

#[test]
fn incremental_identity_small_rows_b() {
    assert_incremental(&SMALL_ROWS_B);
}

#[test]
fn incremental_identity_small_rows_c() {
    assert_incremental(&SMALL_ROWS_C);
}

// ---------------------------------------------------------------------
// Serving surface.

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, Tracer::disabled()).expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

fn stop(handle: &ServerHandle, thread: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}

fn request(handle: &ServerHandle, method: &str, path: &str, body: &str) -> ClientResponse {
    client::request(handle.addr(), method, path, body.as_bytes(), TIMEOUT)
        .expect("loopback request")
}

#[test]
fn synth_incr_resolves_fewer_modules_and_matches_fresh_synthesis() {
    let (base_g, edited_g) = edit_specs("nak-pa", SEED);
    let (handle, thread) = start(ServerConfig::default());

    // Base synthesis seeds the store and names the incremental baseline.
    let base = request(&handle, "POST", "/synth?method=modular", &base_g);
    assert_eq!(base.status, 200, "{}", base.text());
    let digest = base
        .header("x-modsyn-digest")
        .expect("digest header")
        .to_string();

    // Unknown base and missing base are typed client errors.
    let missing = request(&handle, "POST", "/synth/incr?method=modular", &edited_g);
    assert_eq!(missing.status, 400, "{}", missing.text());
    let unknown = request(
        &handle,
        "POST",
        "/synth/incr?method=modular&base=0123456789abcdef",
        &edited_g,
    );
    assert_eq!(unknown.status, 422, "{}", unknown.text());

    // The incremental run: strictly fewer modules re-solved than total.
    let incr = request(
        &handle,
        "POST",
        &format!("/synth/incr?method=modular&base={digest}"),
        &edited_g,
    );
    assert_eq!(incr.status, 200, "{}", incr.text());
    assert_eq!(incr.header("x-modsyn-cache"), Some("miss"));
    let dirty: u64 = incr
        .header("x-modsyn-dirty-modules")
        .expect("dirty header")
        .parse()
        .expect("dirty count");
    let total: u64 = incr
        .header("x-modsyn-total-modules")
        .expect("total header")
        .parse()
        .expect("total count");
    assert!(dirty < total, "dirty {dirty} not below total {total}");

    // Store counters surface in /metrics.
    let metrics = request(&handle, "GET", "/metrics", "").text();
    let counter = |name: &str| {
        modsyn_svc::Metrics::parse_line(&metrics, name)
            .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
    };
    assert!(counter("modsynd_store_hits_total") >= 1);
    assert!(counter("modsynd_store_misses_total") >= 1);
    assert_eq!(counter("modsynd_store_dirty_total"), dirty);

    // Byte identity against a *second, fresh* daemon's from-scratch run —
    // the first daemon would answer from its response cache.
    let incr_body = incr.text();
    stop(&handle, thread);
    let (fresh_handle, fresh_thread) = start(ServerConfig::default());
    let fresh = request(&fresh_handle, "POST", "/synth?method=modular", &edited_g);
    assert_eq!(fresh.status, 200, "{}", fresh.text());
    assert_eq!(
        incr_body,
        fresh.text(),
        "incremental response must be byte-identical to from-scratch synthesis"
    );
    stop(&fresh_handle, fresh_thread);
}

#[test]
fn explain_reports_provenance_for_certified_synthesis() {
    let (handle, thread) = start(ServerConfig::default());
    let g = modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name("vbe-ex2").expect("benchmark"));

    let synth = request(&handle, "POST", "/synth?method=modular", &g);
    assert_eq!(synth.status, 200, "{}", synth.text());
    let digest = synth
        .header("x-modsyn-digest")
        .expect("digest header")
        .to_string();
    let body = parse_json(&synth.text()).expect("synth body");
    let inserted = body
        .get("inserted")
        .and_then(modsyn_obs::Json::as_arr)
        .and_then(|arr| arr.first())
        .and_then(modsyn_obs::Json::as_str)
        .expect("at least one inserted signal")
        .to_string();

    let explain = request(
        &handle,
        "GET",
        &format!("/explain?digest={digest}&signal={inserted}"),
        "",
    );
    assert_eq!(explain.status, 200, "{}", explain.text());
    let explanation = parse_json(&explain.text()).expect("explain body");
    assert_eq!(
        explanation.get("signal").and_then(modsyn_obs::Json::as_str),
        Some(inserted.as_str())
    );
    let provenance = explanation
        .get("provenance")
        .and_then(modsyn_obs::Json::as_arr)
        .expect("provenance array");
    assert!(!provenance.is_empty());

    // Typed misses: unknown digest, then unknown signal.
    let bad_digest = request(
        &handle,
        "GET",
        "/explain?digest=ffffffffffffffff&signal=x",
        "",
    );
    assert_eq!(bad_digest.status, 404, "{}", bad_digest.text());
    let bad_signal = request(
        &handle,
        "GET",
        &format!("/explain?digest={digest}&signal=no-such-signal"),
        "",
    );
    assert_eq!(bad_signal.status, 404, "{}", bad_signal.text());

    stop(&handle, thread);
}

#[test]
fn store_snapshot_survives_restart_with_full_cache_warmth() {
    let path = std::env::temp_dir().join(format!("modsyn-store-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = || ServerConfig {
        store_snapshot: Some(path.clone()),
        ..ServerConfig::default()
    };
    let rows = ["vbe-ex1", "vbe-ex2"];
    let bodies: Vec<String> = rows
        .iter()
        .map(|name| modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name(name).expect("benchmark")))
        .collect();

    // First life: synthesise, then drain (which persists the snapshot).
    let (handle, thread) = start(config());
    let mut digest = String::new();
    for body in &bodies {
        let response = request(&handle, "POST", "/synth?method=modular", body);
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(response.header("x-modsyn-cache"), Some("miss"));
        digest = response
            .header("x-modsyn-digest")
            .expect("digest")
            .to_string();
    }
    stop(&handle, thread);
    assert!(path.exists(), "graceful drain must write the snapshot");

    // Second life: every request is answered from the restored cache, and
    // /explain still reaches the first life's provenance records.
    let (handle, thread) = start(config());
    for body in &bodies {
        let response = request(&handle, "POST", "/synth?method=modular", body);
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(
            response.header("x-modsyn-cache"),
            Some("hit"),
            "restarted daemon must answer warm"
        );
    }
    let explain = request(
        &handle,
        "GET",
        &format!("/explain?digest={digest}&signal=csc0"),
        "",
    );
    assert_eq!(explain.status, 200, "{}", explain.text());
    stop(&handle, thread);
    let _ = std::fs::remove_file(&path);
}
