//! Property tests (gated): enable with `--features proptest-tests` after
//! re-adding the proptest dev-dependency (needs network; see Cargo.toml).
#![cfg(feature = "proptest-tests")]
//! Property-based tests for the SAT substrate.

use modsyn_sat::{
    parse_dimacs, simplify, solve, write_dimacs, CnfFormula, Heuristic, Lit, Outcome,
    SolverOptions, Var,
};
use proptest::prelude::*;

/// Strategy: a random CNF over `n` variables as (var, polarity) clause
/// lists.
fn cnf_strategy(n: usize) -> impl Strategy<Value = CnfFormula> {
    proptest::collection::vec(
        proptest::collection::vec((0..n, proptest::bool::ANY), 1..4),
        0..24,
    )
    .prop_map(move |clauses| {
        let mut f = CnfFormula::new(n);
        for clause in clauses {
            f.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pol)| Lit::with_polarity(Var::new(v), pol)),
            );
        }
        f
    })
}

fn brute_force_sat(f: &CnfFormula) -> bool {
    let n = f.num_vars();
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
        f.evaluate(&assignment)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(f in cnf_strategy(6)) {
        let expected = brute_force_sat(&f);
        let out = solve(&f, SolverOptions::default());
        prop_assert_eq!(out.is_sat(), expected);
        if let Outcome::Satisfiable(model) = out {
            prop_assert!(model.check(&f));
        }
    }

    #[test]
    fn engines_and_heuristics_agree(f in cnf_strategy(6)) {
        let reference = solve(&f, SolverOptions::default()).is_sat();
        for heuristic in [
            Heuristic::FirstUnassigned,
            Heuristic::JeroslowWang,
            Heuristic::Moms,
            Heuristic::Activity,
        ] {
            for learning in [false, true] {
                let opts = SolverOptions { heuristic, learning, ..Default::default() };
                prop_assert_eq!(
                    solve(&f, opts).is_sat(),
                    reference,
                    "{:?} learning={}", heuristic, learning
                );
            }
        }
    }

    #[test]
    fn simplify_preserves_satisfiability(f in cnf_strategy(6)) {
        let r = simplify(&f);
        let before = solve(&f, SolverOptions::default()).is_sat();
        let after = !r.unsat && solve(&r.formula, SolverOptions::default()).is_sat();
        prop_assert_eq!(before, after);
        // Forced literals extend to a model when satisfiable.
        if before {
            for lit in &r.forced {
                // No forced literal may contradict another.
                prop_assert!(!r.forced.contains(&!*lit));
            }
        }
    }

    #[test]
    fn dimacs_round_trip_preserves_formula(f in cnf_strategy(5)) {
        let text = write_dimacs(&f);
        let again = parse_dimacs(&text).unwrap();
        prop_assert_eq!(again.num_vars(), f.num_vars());
        prop_assert_eq!(again.clause_count(), f.clause_count());
        prop_assert_eq!(
            solve(&again, SolverOptions::default()).is_sat(),
            solve(&f, SolverOptions::default()).is_sat()
        );
    }
}
