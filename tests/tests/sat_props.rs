//! Differential tests for the SAT substrate.
//!
//! The ungated part cross-checks three independent deciders on seeded
//! random small CNFs — [`modsyn_sat::solve_exhaustive`] (brute force over
//! all assignments, the ground truth), the DPLL engine under every
//! heuristic × learning combination, and the thread portfolio — so a bug
//! in any one of them shows up as a verdict disagreement with a
//! reproducible seed. The proptest versions of these properties remain at
//! the bottom, gated behind `--features proptest-tests` (the dependency
//! needs network access to fetch; see `Cargo.toml`).

use modsyn_check::rng::SplitMix64;
use modsyn_par::CancelToken;
use modsyn_sat::{
    solve, solve_exhaustive, solve_portfolio, standard_portfolio, CnfFormula, Heuristic, Lit,
    Outcome, SolverOptions, Var,
};

/// Draws a random CNF: up to `max_vars` variables, up to 24 clauses of 1–3
/// literals. Small enough for `solve_exhaustive`, large enough to cover
/// empty formulas, unit clauses, tautological clauses and UNSAT cores.
fn random_cnf(rng: &mut SplitMix64, max_vars: usize) -> CnfFormula {
    let n = 1 + rng.below(max_vars);
    let mut f = CnfFormula::new(n);
    for _ in 0..rng.below(24) {
        let len = 1 + rng.below(3);
        f.add_clause(
            (0..len).map(|_| Lit::with_polarity(Var::new(rng.below(n)), rng.below(2) == 1)),
        );
    }
    f
}

#[test]
fn dpll_agrees_with_exhaustive_search_on_500_random_cnfs() {
    let mut rng = SplitMix64::new(0x5a7_d1ff);
    for case in 0..500 {
        let f = random_cnf(&mut rng, 8);
        let expected = solve_exhaustive(&f).is_sat();
        for heuristic in [
            Heuristic::FirstUnassigned,
            Heuristic::JeroslowWang,
            Heuristic::Moms,
            Heuristic::Activity,
        ] {
            for learning in [false, true] {
                let opts = SolverOptions {
                    heuristic,
                    learning,
                    ..SolverOptions::default()
                };
                let out = solve(&f, opts);
                assert_eq!(
                    out.is_sat(),
                    expected,
                    "case {case}: {heuristic:?} learning={learning} disagrees with brute force"
                );
                if let Outcome::Satisfiable(model) = out {
                    assert!(model.check(&f), "case {case}: model does not satisfy");
                }
            }
        }
    }
}

#[test]
fn portfolio_agrees_with_exhaustive_search_on_500_random_cnfs() {
    let mut rng = SplitMix64::new(0x0f_f01d);
    for case in 0..500 {
        let f = random_cnf(&mut rng, 8);
        let expected = solve_exhaustive(&f).is_sat();
        let configs = standard_portfolio(SolverOptions::default());
        let result = solve_portfolio(&f, &configs, &CancelToken::never());
        assert_eq!(
            result.outcome.is_sat(),
            expected,
            "case {case}: portfolio disagrees with brute force"
        );
        if let Outcome::Satisfiable(model) = result.outcome {
            assert!(
                model.check(&f),
                "case {case}: portfolio model does not satisfy"
            );
        }
    }
}

#[test]
fn cdcl_and_cnc_agree_with_exhaustive_search_on_500_random_cnfs() {
    use modsyn_cnc::{solve_with_engine, Engine};
    use modsyn_fault::Faults;

    let mut rng = SplitMix64::new(0xcdc1_cafe);
    for case in 0..500 {
        let f = random_cnf(&mut rng, 8);
        let expected = solve_exhaustive(&f).is_sat();
        for engine in [Engine::Cdcl, Engine::cnc()] {
            let (outcome, _) = solve_with_engine(
                engine,
                &f,
                SolverOptions::default(),
                &CancelToken::never(),
                &Faults::none(),
            );
            assert_eq!(
                outcome.is_sat(),
                expected,
                "case {case}: engine {engine} disagrees with brute force"
            );
            if let Outcome::Satisfiable(model) = outcome {
                assert!(
                    model.check(&f),
                    "case {case}: {engine} model does not satisfy"
                );
            }
        }
    }
}

/// The DIMACS writer and parser are mutual inverses on generated CNFs:
/// `parse(write(f))` reproduces `f` exactly (variable count, clause list,
/// literal order), not just an equisatisfiable formula.
#[test]
fn dimacs_round_trip_is_a_fixpoint_on_generated_cnfs() {
    use modsyn_sat::{parse_dimacs, write_dimacs};

    let mut rng = SplitMix64::new(0xd1_aac5);
    for case in 0..300 {
        let f = random_cnf(&mut rng, 9);
        let text = write_dimacs(&f);
        let parsed = parse_dimacs(&text)
            .unwrap_or_else(|e| panic!("case {case}: round-trip parse failed: {e}"));
        assert_eq!(parsed, f, "case {case}: parse∘write is not the identity");
        // A second trip is byte-stable: write∘parse∘write = write.
        assert_eq!(write_dimacs(&parsed), text, "case {case}: writer unstable");
    }
}

/// Malformed DIMACS inputs produce the *typed* errors the API promises —
/// never a panic, never a silently-wrong formula.
#[test]
fn dimacs_parser_rejects_malformed_documents_with_typed_errors() {
    use modsyn_sat::{parse_dimacs, SatError};

    // Missing or malformed headers.
    for input in [
        "",
        "1 2 0\n",
        "p\n",
        "p cnf\n",
        "p cnf x 2\n",
        "p dnf 2 2\n1 2 0\n",
        "p cnf -3 2\n",
    ] {
        match parse_dimacs(input) {
            Err(SatError::MalformedHeader { .. }) => {}
            other => panic!("{input:?}: expected MalformedHeader, got {other:?}"),
        }
    }
    // Unparsable literal tokens.
    for input in [
        "p cnf 2 1\n1 two 0\n",
        "p cnf 2 1\n1 2.5 0\n",
        "p cnf 2 1\n--1 0\n",
    ] {
        match parse_dimacs(input) {
            Err(SatError::MalformedLiteral { .. }) => {}
            other => panic!("{input:?}: expected MalformedLiteral, got {other:?}"),
        }
    }
    // Literals beyond the declared variable range, either polarity.
    for input in [
        "p cnf 2 1\n3 0\n",
        "p cnf 2 1\n1 -5 0\n",
        "p cnf 0 1\n1 0\n",
    ] {
        match parse_dimacs(input) {
            Err(SatError::VariableOutOfRange { .. }) => {}
            other => panic!("{input:?}: expected VariableOutOfRange, got {other:?}"),
        }
    }
    // Benign edge cases that must parse: comments anywhere, blank lines,
    // clauses spanning lines, and a trailing clause missing its 0.
    let f = parse_dimacs("c head\np cnf 3 2\n\n1 -2\n3 0\nc mid\n-1 -3\n").unwrap();
    assert_eq!(f.num_vars(), 3);
    assert_eq!(f.clause_count(), 2);
}

#[test]
fn exhaustive_model_satisfies_the_formula() {
    let mut rng = SplitMix64::new(7);
    for case in 0..100 {
        let f = random_cnf(&mut rng, 6);
        if let Outcome::Satisfiable(model) = solve_exhaustive(&f) {
            assert!(model.check(&f), "case {case}");
        }
    }
}

#[cfg(feature = "proptest-tests")]
mod proptests {
    use modsyn_sat::{
        parse_dimacs, simplify, solve, write_dimacs, CnfFormula, Heuristic, Lit, Outcome,
        SolverOptions, Var,
    };
    use proptest::prelude::*;

    /// Strategy: a random CNF over `n` variables as (var, polarity) clause
    /// lists.
    fn cnf_strategy(n: usize) -> impl Strategy<Value = CnfFormula> {
        proptest::collection::vec(
            proptest::collection::vec((0..n, proptest::bool::ANY), 1..4),
            0..24,
        )
        .prop_map(move |clauses| {
            let mut f = CnfFormula::new(n);
            for clause in clauses {
                f.add_clause(
                    clause
                        .into_iter()
                        .map(|(v, pol)| Lit::with_polarity(Var::new(v), pol)),
                );
            }
            f
        })
    }

    fn brute_force_sat(f: &CnfFormula) -> bool {
        let n = f.num_vars();
        (0u32..(1 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
            f.evaluate(&assignment)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn solver_agrees_with_brute_force(f in cnf_strategy(6)) {
            let expected = brute_force_sat(&f);
            let out = solve(&f, SolverOptions::default());
            prop_assert_eq!(out.is_sat(), expected);
            if let Outcome::Satisfiable(model) = out {
                prop_assert!(model.check(&f));
            }
        }

        #[test]
        fn engines_and_heuristics_agree(f in cnf_strategy(6)) {
            let reference = solve(&f, SolverOptions::default()).is_sat();
            for heuristic in [
                Heuristic::FirstUnassigned,
                Heuristic::JeroslowWang,
                Heuristic::Moms,
                Heuristic::Activity,
            ] {
                for learning in [false, true] {
                    let opts = SolverOptions { heuristic, learning, ..Default::default() };
                    prop_assert_eq!(
                        solve(&f, opts).is_sat(),
                        reference,
                        "{:?} learning={}", heuristic, learning
                    );
                }
            }
        }

        #[test]
        fn simplify_preserves_satisfiability(f in cnf_strategy(6)) {
            let r = simplify(&f);
            let before = solve(&f, SolverOptions::default()).is_sat();
            let after = !r.unsat && solve(&r.formula, SolverOptions::default()).is_sat();
            prop_assert_eq!(before, after);
            // Forced literals extend to a model when satisfiable.
            if before {
                for lit in &r.forced {
                    // No forced literal may contradict another.
                    prop_assert!(!r.forced.contains(&!*lit));
                }
            }
        }

        #[test]
        fn dimacs_round_trip_preserves_formula(f in cnf_strategy(5)) {
            let text = write_dimacs(&f);
            let again = parse_dimacs(&text).unwrap();
            prop_assert_eq!(again.num_vars(), f.num_vars());
            prop_assert_eq!(again.clause_count(), f.clause_count());
            prop_assert_eq!(
                solve(&again, SolverOptions::default()).is_sat(),
                solve(&f, SolverOptions::default()).is_sat()
            );
        }
    }
}
