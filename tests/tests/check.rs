//! Negative-path tests for the `modsyn-check` oracle: every corruption of
//! a specification, solved graph, or netlist must come back as a *typed*
//! [`CheckError`] naming the counterexample — never a panic, never a
//! silent pass.

use modsyn_check::{
    check_consistency, check_csc, check_equivalence, check_speed_independence, check_usc,
    verify_solution, CheckError, GateNetlist, SopFn,
};
use modsyn_sg::{derive, DeriveOptions, EdgeLabel, SignalMeta, StateGraph};
use modsyn_stg::{parse_g, Polarity, SignalKind};

fn meta(name: &str, kind: SignalKind) -> SignalMeta {
    SignalMeta {
        name: name.into(),
        kind,
    }
}

fn signal_edge(signal: usize, polarity: Polarity) -> EdgeLabel {
    EdgeLabel::Signal { signal, polarity }
}

/// A correct 4-state handshake: input `a` (bit 0), output `b` (bit 1).
/// `00 -a+-> 01 -b+-> 11 -a--> 10 -b--> 00`.
fn handshake() -> StateGraph {
    let mut g = StateGraph::new(vec![
        meta("a", SignalKind::Input),
        meta("b", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b00, 0b01, 0b11, 0b10] {
        g.add_state(code);
    }
    g.add_edge(0, 1, signal_edge(0, Polarity::Rise));
    g.add_edge(1, 2, signal_edge(1, Polarity::Rise));
    g.add_edge(2, 3, signal_edge(0, Polarity::Fall));
    g.add_edge(3, 0, signal_edge(1, Polarity::Fall));
    g.set_initial(0);
    g
}

/// `b = a`: rises once `a` is high, falls once `a` is low.
fn handshake_netlist() -> GateNetlist {
    let mut netlist = GateNetlist::new(2);
    netlist.set(
        1,
        SopFn {
            name: "b".into(),
            cubes: vec![vec![(0, true)]],
        },
    );
    netlist
}

#[test]
fn the_uncorrupted_handshake_passes_every_checker() {
    let g = handshake();
    verify_solution(Some(&g), &g, &handshake_netlist()).unwrap();
}

#[test]
fn a_wrong_polarity_edge_is_typed_inconsistent() {
    let mut g = StateGraph::new(vec![
        meta("a", SignalKind::Input),
        meta("b", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b00, 0b01, 0b11, 0b10] {
        g.add_state(code);
    }
    // The a- edge claims to be a second a+: it fires `a` from the wrong
    // value (two rises in a row along the cycle).
    g.add_edge(0, 1, signal_edge(0, Polarity::Rise));
    g.add_edge(1, 2, signal_edge(1, Polarity::Rise));
    g.add_edge(2, 3, signal_edge(0, Polarity::Rise));
    g.add_edge(3, 0, signal_edge(1, Polarity::Fall));
    g.set_initial(0);
    let err = check_consistency(&g).unwrap_err();
    assert!(
        matches!(err, CheckError::Inconsistent { state: 2, .. }),
        "got {err}"
    );
}

#[test]
fn an_edge_that_flips_a_foreign_bit_is_typed_inconsistent() {
    let mut g = handshake();
    // A b+ edge between states whose codes differ in bit 0, not bit 1.
    g.add_edge(1, 0, signal_edge(1, Polarity::Rise));
    let err = check_consistency(&g).unwrap_err();
    assert!(matches!(err, CheckError::Inconsistent { .. }), "got {err}");
}

#[test]
fn an_unreachable_state_is_reported_by_index() {
    let mut g = handshake();
    let orphan = g.add_state(0b01);
    let err = check_consistency(&g).unwrap_err();
    assert_eq!(err, CheckError::Unreachable { state: orphan });
}

#[test]
fn duplicate_codes_are_typed_usc_and_csc_violations() {
    // An 8-state double handshake: the second lap repeats every code of
    // the first, so USC fails on every lap pair; the pair that disagrees
    // on b's excitation is additionally a CSC violation.
    let mut g = StateGraph::new(vec![
        meta("a", SignalKind::Input),
        meta("b", SignalKind::Output),
        meta("c", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b000, 0b001, 0b011, 0b010, 0b000, 0b001, 0b101, 0b100] {
        g.add_state(code);
    }
    g.add_edge(0, 1, signal_edge(0, Polarity::Rise));
    g.add_edge(1, 2, signal_edge(1, Polarity::Rise));
    g.add_edge(2, 3, signal_edge(0, Polarity::Fall));
    g.add_edge(3, 4, signal_edge(1, Polarity::Fall));
    g.add_edge(4, 5, signal_edge(0, Polarity::Rise));
    g.add_edge(5, 6, signal_edge(2, Polarity::Rise));
    g.add_edge(6, 7, signal_edge(0, Polarity::Fall));
    g.add_edge(7, 0, signal_edge(2, Polarity::Fall));
    g.set_initial(0);
    check_consistency(&g).unwrap();

    let usc = check_usc(&g).unwrap_err();
    assert!(matches!(usc, CheckError::UscViolation { .. }), "got {usc}");

    // States 1 and 5 share code 001 but enable b+ vs c+.
    let csc = check_csc(&g).unwrap_err();
    let CheckError::CscViolation {
        a, b, differing, ..
    } = csc
    else {
        panic!("expected CscViolation, got {csc}");
    };
    assert_eq!((a, b), (1, 5));
    assert_eq!(differing, vec!["b".to_string(), "c".to_string()]);
}

#[test]
fn an_undriven_output_is_typed_missing_function() {
    let g = handshake();
    let err = check_speed_independence(&GateNetlist::new(2), &g).unwrap_err();
    assert_eq!(err, CheckError::MissingFunction { signal: "b".into() });
}

#[test]
fn a_gate_firing_too_early_is_typed_nonconforming() {
    let g = handshake();
    let mut netlist = GateNetlist::new(2);
    // b = 1 (constant): the gate wants to rise in state 0 where the
    // specification keeps b stable until a+ has fired.
    netlist.set(
        1,
        SopFn {
            name: "b".into(),
            cubes: vec![vec![]],
        },
    );
    let err = check_speed_independence(&netlist, &g).unwrap_err();
    assert!(
        matches!(
            err,
            CheckError::Nonconforming {
                state: 0,
                spec_excited: false,
                ..
            }
        ),
        "got {err}"
    );
}

#[test]
fn a_withdrawn_excitation_is_typed_not_speed_independent() {
    // Outputs x (bit 0) and y (bit 1) start out concurrently excited, but
    // firing x+ leads to a state with no pending y+ edge: x+ withdraws
    // y's excitation, which glitches under unbounded gate delay.
    let mut g = StateGraph::new(vec![
        meta("x", SignalKind::Output),
        meta("y", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b00, 0b01, 0b10, 0b11] {
        g.add_state(code);
    }
    g.add_edge(0, 1, signal_edge(0, Polarity::Rise));
    g.add_edge(0, 2, signal_edge(1, Polarity::Rise));
    g.add_edge(2, 3, signal_edge(0, Polarity::Rise));
    g.add_edge(1, 0, signal_edge(0, Polarity::Fall));
    g.add_edge(3, 2, signal_edge(0, Polarity::Fall));
    g.set_initial(0);
    let mut netlist = GateNetlist::new(2);
    // x toggles freely; y rises only from the initial code.
    netlist.set(
        0,
        SopFn {
            name: "x".into(),
            cubes: vec![vec![(0, false), (1, false)], vec![(1, true)]],
        },
    );
    netlist.set(
        1,
        SopFn {
            name: "y".into(),
            cubes: vec![vec![(0, false)]],
        },
    );
    let err = check_speed_independence(&netlist, &g).unwrap_err();
    assert!(
        matches!(err, CheckError::NotSpeedIndependent { state: 0, .. }),
        "got {err}"
    );
}

#[test]
fn alphabet_mismatch_is_typed_not_equivalent() {
    let left = handshake();
    let mut right = StateGraph::new(vec![
        meta("a", SignalKind::Input),
        meta("c", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b00, 0b01, 0b11, 0b10] {
        right.add_state(code);
    }
    right.add_edge(0, 1, signal_edge(0, Polarity::Rise));
    right.add_edge(1, 2, signal_edge(1, Polarity::Rise));
    right.add_edge(2, 3, signal_edge(0, Polarity::Fall));
    right.add_edge(3, 0, signal_edge(1, Polarity::Fall));
    right.set_initial(0);
    let err = check_equivalence(&left, &right).unwrap_err();
    let CheckError::NotEquivalent {
        left_alphabet,
        right_alphabet,
    } = err
    else {
        panic!("expected NotEquivalent");
    };
    assert!(left_alphabet.contains(&"b".to_string()));
    assert!(right_alphabet.contains(&"c".to_string()));
}

#[test]
fn behavioural_divergence_is_typed_not_equivalent() {
    // Same alphabet, but the right graph runs the handshake twice per
    // cycle of `b` — wait, it swaps the order: b+ before a+. Initial
    // observable moves differ, so no weak bisimulation exists.
    let mut right = StateGraph::new(vec![
        meta("a", SignalKind::Input),
        meta("b", SignalKind::Output),
    ])
    .unwrap();
    for code in [0b00, 0b10, 0b11, 0b01] {
        right.add_state(code);
    }
    right.add_edge(0, 1, signal_edge(1, Polarity::Rise));
    right.add_edge(1, 2, signal_edge(0, Polarity::Rise));
    right.add_edge(2, 3, signal_edge(1, Polarity::Fall));
    right.add_edge(3, 0, signal_edge(0, Polarity::Fall));
    right.set_initial(0);
    check_consistency(&right).unwrap();
    let err = check_equivalence(&handshake(), &right).unwrap_err();
    assert!(matches!(err, CheckError::NotEquivalent { .. }), "got {err}");
}

#[test]
fn corrupt_g_texts_give_typed_parse_errors_not_panics() {
    for (label, text) in [
        (
            "unterminated marking",
            ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { <b+,a+>\n.end\n",
        ),
        (
            "undeclared signal",
            ".model x\n.inputs a\n.graph\na+ q+\nq+ a-\na- a+\n.marking { <a-,a+> }\n.end\n",
        ),
        (
            "bad instance suffix",
            ".model x\n.inputs a\n.outputs b\n.graph\na+/zz b+\nb+ a+/zz\n.marking { <b+,a+/zz> }\n.end\n",
        ),
        (
            "unknown marking place",
            ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking { nowhere }\n.end\n",
        ),
    ] {
        assert!(parse_g(text).is_err(), "{label}: expected a parse error");
    }
}

#[test]
fn an_inconsistent_stg_fails_derivation_with_a_typed_error_not_a_panic() {
    // `a` rises twice per cycle with no fall between: the token game has
    // no consistent binary interpretation.
    let stg = parse_g(
        ".model bad\n.inputs a\n.outputs b\n.graph\na+ a+/2\na+/2 b+\nb+ a+\n.marking { <b+,a+> }\n.end\n",
    )
    .unwrap();
    assert!(derive(&stg, &DeriveOptions::default()).is_err());
}
