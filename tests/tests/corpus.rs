//! Cross-crate corpus tests: the composition engine's certificates hold
//! against the independent oracle, the corpus stream honours the
//! three-valued verdict contract end to end, every typed rejection in the
//! taxonomy is actually reachable (or at least constructible), and the
//! serving layer advertises the same vocabulary over HTTP.
//!
//! Failing composed cases shrink through their recipe to a minimal
//! derivation before panicking, mirroring what `differ --corpus` prints.

use std::time::Duration;

use modsyn::{
    synthesize, synthesize_with_retry, Method, RetryPolicy, SynthesisError, SynthesisOptions,
};
use modsyn_corpus::{
    check_certificate, corpus_case, evaluate_case, gen_asym, gen_corpus, CorpusNode, CorpusRecipe,
    EvalOptions, Expectation, Rejection, Skeleton, Unit, Verdict,
};
use modsyn_fault::{site, FaultPlan, FaultRule};
use modsyn_obs::Tracer;
use modsyn_petri::NetClass;
use modsyn_stg::{parse_g, write_g, Frag, SignalKind, StgBuilder};
use modsyn_svc::{client, Server, ServerConfig};

// ---------------------------------------------------------------------------
// Composition preserves the certified properties (with recipe shrinking).
// ---------------------------------------------------------------------------

/// Checks one recipe's certificate; on failure, shrinks to a minimal
/// failing derivation first so the panic names the smallest culprit.
fn assert_certified(recipe: &CorpusRecipe) {
    let (stg, cert) = recipe.build();
    let Err(first) = check_certificate(&stg, &cert) else {
        return;
    };
    let mut minimal = recipe.clone();
    let mut message = first;
    loop {
        let next = minimal.shrink().into_iter().find_map(|candidate| {
            let (stg, cert) = candidate.build();
            check_certificate(&stg, &cert).err().map(|e| (candidate, e))
        });
        match next {
            Some((candidate, e)) => {
                minimal = candidate;
                message = e;
            }
            None => panic!(
                "seed {}: {message}\n  minimal derivation: {}",
                recipe.seed,
                minimal.node.derivation()
            ),
        }
    }
}

#[test]
fn composed_corpus_sweep_is_oracle_certified() {
    // Every shape the generator draws: leaves, articulations, synchronous
    // products and the mixed form. The certificate check is the oracle
    // side: reachability (1-safety, deadlock freedom), the structural
    // classifier against the claimed bound, and `modsyn-check`
    // consistency on the derived state graph.
    for seed in 0..48 {
        assert_certified(&gen_corpus(seed));
    }
}

#[test]
fn articulation_preserves_liveness_safety_and_class() {
    for a in Skeleton::all() {
        for b in Skeleton::all() {
            let recipe = CorpusRecipe {
                seed: 0,
                node: CorpusNode::Articulate(vec![
                    CorpusNode::Unit(Unit::Skel(a)),
                    CorpusNode::Unit(Unit::Skel(b)),
                ]),
            };
            let (stg, cert) = recipe.build();
            check_certificate(&stg, &cert)
                .unwrap_or_else(|e| panic!("art({},{}): {e}", a.name(), b.name()));
            assert!(
                stg.net().classify() <= NetClass::FreeChoice,
                "art({},{}) left the theory",
                a.name(),
                b.name()
            );
        }
    }
}

#[test]
fn sync_product_of_sequential_templates_preserves_properties() {
    let sequential = [
        Skeleton::Channel,
        Skeleton::Pipeline(2),
        Skeleton::Pipeline(4),
    ];
    for a in sequential {
        for b in sequential {
            let recipe = CorpusRecipe {
                seed: 0,
                node: CorpusNode::Sync(vec![
                    CorpusNode::Unit(Unit::Skel(a)),
                    CorpusNode::Unit(Unit::Skel(b)),
                ]),
            };
            let (stg, cert) = recipe.build();
            check_certificate(&stg, &cert)
                .unwrap_or_else(|e| panic!("sync({},{}): {e}", a.name(), b.name()));
            assert!(
                stg.net().classify() <= NetClass::FreeChoice,
                "sync({},{}) left the theory",
                a.name(),
                b.name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The three-valued verdict contract, end to end on a stream slice.
// ---------------------------------------------------------------------------

#[test]
fn corpus_stream_slice_honours_the_verdict_contract() {
    // Two cheap in-theory composites and two asymmetric-choice probes —
    // the full sweep is the release-mode `corpus` run CI replays.
    for seed in [7u64, 15, 18, 26] {
        let (stg, expectation) = corpus_case(seed);
        let report = evaluate_case(&stg, expectation, &EvalOptions::default());
        assert!(report.ok(), "seed {seed}: {:?}", report.violations);
        match expectation {
            Expectation::InTheory => {
                let modular = report
                    .outcomes
                    .iter()
                    .find(|o| o.method == Method::Modular)
                    .expect("modular always runs");
                assert_eq!(modular.verdict, Verdict::Certified, "seed {seed}");
            }
            Expectation::BeyondTheory => {
                let lavagno = report
                    .outcomes
                    .iter()
                    .find(|o| o.method == Method::Lavagno)
                    .expect("lavagno always runs");
                assert_eq!(
                    lavagno.verdict,
                    Verdict::Rejected(Rejection::BeyondFreeChoice),
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn write_g_is_a_fixpoint_across_the_corpus_stream() {
    for seed in 0..32 {
        let (stg, _) = corpus_case(seed);
        let rendered = write_g(&stg);
        let reparsed = parse_g(&rendered)
            .unwrap_or_else(|e| panic!("seed {seed}: write_g output does not re-parse: {e}"));
        assert_eq!(write_g(&reparsed), rendered, "seed {seed}: not a fixpoint");
    }
}

// ---------------------------------------------------------------------------
// Negative paths: every rejection in the taxonomy, reached or constructed.
// ---------------------------------------------------------------------------

/// A subject whose CSC resolution must consult the SAT solver: the
/// fork/join barrier's concurrency diamond has equal entry/exit codes.
fn sat_bound_subject() -> modsyn_stg::Stg {
    Skeleton::ForkJoin(3).build()
}

#[test]
fn class_gate_rejects_probes_with_not_free_choice() {
    for seed in 0..3 {
        let stg = gen_asym(seed).build();
        let err = synthesize(&stg, &SynthesisOptions::for_method(Method::Lavagno))
            .expect_err("probes are beyond the gated theory");
        assert!(matches!(err, SynthesisError::NotFreeChoice), "{err}");
        let rejection = Rejection::of(&err);
        assert_eq!(rejection, Rejection::BeyondFreeChoice);
        assert!(rejection.is_class());
        assert_eq!(rejection.tag(), "not-free-choice");
    }
}

#[test]
fn conflict_storm_draws_a_backtrack_limit_rejection() {
    let faults = FaultPlan::new("corpus", 5)
        .rule(FaultRule::at(site::SAT_CONFLICT_STORM))
        .arm();
    let options = SynthesisOptions {
        solver: modsyn_sat::SolverOptions {
            max_backtracks: Some(50),
            ..Default::default()
        },
        faults,
        ..Default::default()
    };
    let err = synthesize(&sat_bound_subject(), &options).expect_err("storm burns the budget");
    let rejection = Rejection::of(&err);
    assert_eq!(rejection, Rejection::BacktrackLimit, "{err}");
    assert!(rejection.is_capacity());
    assert_eq!(rejection.tag(), "backtrack-limit");
}

#[test]
fn pre_cancelled_run_draws_an_aborted_rejection() {
    // The default token is the inert `never()`; a real token is needed
    // for `cancel()` to observably trip.
    let options = SynthesisOptions {
        cancel: modsyn_par::CancelToken::new(),
        ..Default::default()
    };
    options.cancel.cancel();
    let err = synthesize(&sat_bound_subject(), &options).expect_err("token already fired");
    let rejection = Rejection::of(&err);
    assert_eq!(rejection, Rejection::Aborted, "{err}");
    assert!(!rejection.is_capacity());
    assert_eq!(rejection.tag(), "aborted");
}

#[test]
fn exhausted_ladder_is_typed_with_its_attempt_trace() {
    // The fork-join subject needs ~1000 backtracks; a budget of 10 with
    // the doubling cap already at 10 makes every rung — base and the
    // portfolio (which is immune to single-solver fault plans, so faults
    // could not force this) — fail retryably with a genuine
    // backtrack-limit, and no fallback keeps the ladder to those two
    // rungs, so it runs out instead of recovering.
    let options = SynthesisOptions {
        solver: modsyn_sat::SolverOptions {
            max_backtracks: Some(10),
            ..Default::default()
        },
        ..Default::default()
    };
    let policy = RetryPolicy {
        backtrack_cap: 10,
        attempt_timeout: None,
        fallback: false,
        max_attempts: 2,
    };
    let err = synthesize_with_retry(&sat_bound_subject(), &options, &policy)
        .expect_err("every rung hits the backtrack limit");
    let SynthesisError::Exhausted { ref attempts } = err else {
        panic!("expected Exhausted, got {err}");
    };
    assert_eq!(attempts.len(), 2, "base rung plus the portfolio rung");
    let rejection = Rejection::of(&err);
    assert_eq!(rejection, Rejection::Exhausted);
    assert_eq!(rejection.tag(), "exhausted");
}

#[test]
fn state_budget_and_signal_cap_rejections_are_typed() {
    // A derivation budget far below the subject's state count.
    let options = SynthesisOptions {
        derive: modsyn_sg::DeriveOptions { max_states: 4 },
        ..Default::default()
    };
    let err = synthesize(&sat_bound_subject(), &options).expect_err("budget is 4 states");
    let rejection = Rejection::of(&err);
    assert_eq!(rejection, Rejection::StateBudget, "{err}");
    assert_eq!(rejection.tag(), "state-budget");

    // More signals than the packed 64-bit state code can hold.
    let mut b = StgBuilder::new("wide");
    let pulses: Vec<Frag> = (0..65)
        .map(|i| {
            let kind = if i == 0 {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            let s = b.signal(format!("s{i}"), kind).expect("unique names");
            Frag::seq([Frag::rise(s), Frag::fall(s)])
        })
        .collect();
    let wide = b.cycle(Frag::seq(pulses)).expect("well-formed cycle");
    let err = synthesize(&wide, &SynthesisOptions::default()).expect_err("65 signals");
    let rejection = Rejection::of(&err);
    assert_eq!(rejection, Rejection::TooManySignals, "{err}");
    assert_eq!(rejection.tag(), "too-many-signals");
}

#[test]
fn the_whole_taxonomy_is_constructible_tagged_and_partitioned() {
    // The variants without a cheap end-to-end trigger still map totally
    // from their error values; together with the end-to-end tests above,
    // every variant of the closed taxonomy is asserted.
    let constructed = [
        (
            SynthesisError::NoSolution { max_signals: 5 },
            Rejection::NoSolution,
            "no-solution",
        ),
        (
            SynthesisError::StateSplittingRequired,
            Rejection::StateSplittingRequired,
            "state-splitting-required",
        ),
        (
            SynthesisError::CscUnresolved {
                remaining_conflicts: 2,
            },
            Rejection::CscUnresolved,
            "csc-unresolved",
        ),
        (
            SynthesisError::Sg(modsyn_sg::SgError::Inconsistent {
                signal: "x".into(),
                detail: "rise follows rise".into(),
            }),
            Rejection::StateGraph,
            "state-graph",
        ),
    ];
    for (error, expected, tag) in constructed {
        assert_eq!(Rejection::of(&error), expected, "{error}");
        assert_eq!(expected.tag(), tag);
    }

    // Closed: ten variants, ten distinct tags, and class/capacity never
    // overlap (a class verdict must never be excusable as capacity).
    let all = Rejection::all();
    let mut tags: Vec<&str> = all.iter().map(Rejection::tag).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), all.len(), "duplicate tags in the taxonomy");
    for r in all {
        assert!(!(r.is_class() && r.is_capacity()), "{r} is both");
    }
}

// ---------------------------------------------------------------------------
// The daemon speaks the same vocabulary: typed 422 + X-Modsyn-Class.
// ---------------------------------------------------------------------------

#[test]
fn daemon_rejects_probes_with_the_typed_422_and_class_header() {
    let server = Server::bind(
        ServerConfig {
            jobs: 1,
            ..ServerConfig::default()
        },
        Tracer::disabled(),
    )
    .expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let timeout = Duration::from_secs(60);

    // A beyond-theory probe through the gated flow: the typed rejection,
    // with the structural class advertised alongside.
    let probe = write_g(&gen_asym(0).build());
    let rejected = client::request(
        handle.addr(),
        "POST",
        "/synth?method=lavagno",
        probe.as_bytes(),
        timeout,
    )
    .expect("request");
    assert_eq!(rejected.status, 422, "{}", rejected.text());
    assert!(
        rejected.text().contains("\"error\":\"not-free-choice\""),
        "{}",
        rejected.text()
    );
    assert_eq!(rejected.header("x-modsyn-class"), Some("asymmetric-choice"));

    // An in-theory template on the happy path: certified, no class header.
    let ok = client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        write_g(&Skeleton::Channel.build()).as_bytes(),
        timeout,
    )
    .expect("request");
    assert_eq!(ok.status, 200, "{}", ok.text());
    assert!(ok.text().contains("\"certified\":true"));
    assert_eq!(ok.header("x-modsyn-class"), None);

    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}
