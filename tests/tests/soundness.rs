//! Theorem-level soundness checks of the insertion machinery.

use modsyn::{modular_resolve, CscSolveOptions};
use modsyn_sg::{bisimilar, derive, DeriveOptions};
use modsyn_stg::benchmarks;

/// The paper's behaviour-conservation property: inserting state signals and
/// then hiding them again leaves the observable behaviour unchanged — the
/// quotient of the expanded graph by the inserted signals is bisimilar to
/// the original state graph.
#[test]
fn insertion_conserves_observable_behaviour() {
    for name in [
        "vbe-ex1",
        "vbe-ex2",
        "sendr-done",
        "nousc-ser",
        "nouse",
        "fifo",
        "wrdata",
        "pa",
        "atod",
        "sbuf-read-ctl",
        "sbuf-send-ctl",
        "alloc-outbound",
        "alex-nonfc",
        "nak-pa",
        "pe-rcv-ifc-fc",
    ] {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let inserted: Vec<usize> = out
            .inserted
            .iter()
            .map(|n| out.graph.signal_index(n).expect("inserted signal exists"))
            .collect();
        let hidden = out.graph.hide_signals(&inserted).unwrap();
        assert!(
            bisimilar(&hidden.graph, &sg),
            "{name}: expansion + hiding is not behaviour-preserving"
        );
    }
}

/// Hiding the inserted signals must also give back exactly the original
/// state count (the split copies re-merge along the inserted edges).
#[test]
fn hiding_inserted_signals_restores_the_state_count() {
    for name in ["vbe-ex1", "nouse", "wrdata", "fifo"] {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        let inserted: Vec<usize> = out
            .inserted
            .iter()
            .map(|n| out.graph.signal_index(n).unwrap())
            .collect();
        let hidden = out.graph.hide_signals(&inserted).unwrap();
        assert_eq!(hidden.graph.state_count(), sg.state_count(), "{name}");
        assert_eq!(hidden.graph.edge_count(), sg.edge_count(), "{name}");
    }
}

/// The min-area (BDD) flow must preserve behaviour exactly like the SAT
/// flow.
#[test]
fn min_area_flow_is_also_behaviour_preserving() {
    // The mmu0 BDD build is release-speed only; debug runs cover the
    // smaller rows.
    let names: &[&str] = if cfg!(debug_assertions) {
        &["nak-pa", "fifo"]
    } else {
        &["mmu0", "nak-pa", "fifo"]
    };
    for &name in names {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let options = CscSolveOptions {
            min_area: true,
            ..Default::default()
        };
        let out = modular_resolve(&sg, &options).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inserted: Vec<usize> = out
            .inserted
            .iter()
            .map(|n| out.graph.signal_index(n).unwrap())
            .collect();
        let hidden = out.graph.hide_signals(&inserted).unwrap();
        assert!(bisimilar(&hidden.graph, &sg), "{name}");
    }
}
