//! `.g` format round-trip integration: every benchmark survives
//! serialisation and re-parsing with identical synthesis behaviour.

use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::{benchmarks, parse_g, write_g};

#[test]
fn every_benchmark_round_trips_through_g_format() {
    for (name, stg) in benchmarks::all() {
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
        assert_eq!(stg.signal_count(), again.signal_count(), "{name}");
        assert_eq!(
            stg.net().transition_count(),
            again.net().transition_count(),
            "{name}"
        );
        // The state graphs must be identical in size and conflict structure.
        let a = derive(&stg, &DeriveOptions::default()).unwrap();
        let b = derive(&again, &DeriveOptions::default()).unwrap();
        assert_eq!(a.state_count(), b.state_count(), "{name}");
        assert_eq!(a.edge_count(), b.edge_count(), "{name}");
        assert_eq!(
            a.csc_analysis().csc_pairs.len(),
            b.csc_analysis().csc_pairs.len(),
            "{name}"
        );
    }
}

/// `parse ∘ write` is idempotent: one round trip reaches a fixpoint, both
/// at the text level and at the [`modsyn_stg::Stg`] structural level.
fn assert_round_trip_fixpoint(name: &str, stg: &modsyn_stg::Stg) {
    let t1 = write_g(stg);
    let s2 = parse_g(&t1).unwrap_or_else(|e| panic!("{name}: {e}\n{t1}"));
    let t2 = write_g(&s2);
    assert_eq!(t1, t2, "{name}: text is not a write/parse fixpoint");
    let s3 = parse_g(&t2).unwrap_or_else(|e| panic!("{name}: {e}\n{t2}"));
    assert_eq!(s2, s3, "{name}: structure is not a write/parse fixpoint");
}

#[test]
fn write_then_parse_is_idempotent_on_every_benchmark() {
    for (name, stg) in benchmarks::all() {
        assert_round_trip_fixpoint(name, &stg);
    }
}

#[test]
fn write_then_parse_is_idempotent_on_generated_stgs() {
    use modsyn_check::{gen_stg, Profile};
    for seed in 0..30 {
        for profile in [Profile::Small, Profile::Medium] {
            let stg = gen_stg(seed, profile);
            assert_round_trip_fixpoint(&format!("seed {seed} {profile:?}"), &stg);
        }
    }
}

#[test]
fn round_trip_preserves_signal_kinds_and_names() {
    let stg = benchmarks::nak_pa();
    let again = parse_g(&write_g(&stg)).unwrap();
    for s in stg.signal_ids() {
        let info = stg.signal(s);
        let mapped = again
            .find_signal(info.name())
            .unwrap_or_else(|| panic!("{} lost", info.name()));
        assert_eq!(again.signal(mapped).kind(), info.kind(), "{}", info.name());
    }
}

#[test]
fn synthesis_result_is_stable_across_round_trip() {
    use modsyn::{synthesize, Method, SynthesisOptions};
    let stg = benchmarks::vbe_ex2();
    let again = parse_g(&write_g(&stg)).unwrap();
    let a = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular)).unwrap();
    let b = synthesize(&again, &SynthesisOptions::for_method(Method::Modular)).unwrap();
    assert_eq!(a.final_signals, b.final_signals);
    assert_eq!(a.literals, b.literals);
}
