//! Integration tests for the synthesis service (`modsyn-svc`): caching,
//! admission control, protocol hardening and graceful drain, all against
//! a real listener on a loopback port.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use modsyn_obs::Tracer;
use modsyn_svc::client::{self, ClientResponse};
use modsyn_svc::{CacheConfig, Limits, Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(60);

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, Tracer::disabled()).expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

fn stop(handle: &ServerHandle, thread: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}

fn benchmark_g(name: &str) -> String {
    modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name(name).expect("known benchmark"))
}

fn post_synth(handle: &ServerHandle, body: &str) -> ClientResponse {
    client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        body.as_bytes(),
        TIMEOUT,
    )
    .expect("synth request")
}

fn metric(handle: &ServerHandle, name: &str) -> u64 {
    let response =
        client::request(handle.addr(), "GET", "/metrics", b"", TIMEOUT).expect("metrics request");
    modsyn_svc::Metrics::parse_line(&response.text(), name)
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{}", response.text()))
}

/// Sends raw bytes and reads whatever comes back (empty if the server
/// just closed the connection).
fn raw_roundtrip(handle: &ServerHandle, bytes: &[u8], close_write: bool) -> String {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    stream.write_all(bytes).expect("write");
    if close_write {
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn responses_are_certified_cached_and_byte_identical() {
    let (handle, thread) = start(ServerConfig {
        jobs: 4,
        ..ServerConfig::default()
    });
    let g = benchmark_g("vbe-ex1");

    let first = post_synth(&handle, &g);
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-modsyn-cache"), Some("miss"));
    assert!(first.text().contains("\"certified\":true"));
    assert!(first.header("x-modsyn-digest").is_some());

    let second = post_synth(&handle, &g);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-modsyn-cache"), Some("hit"));
    assert_eq!(
        second.body, first.body,
        "cached body must be byte-identical"
    );

    // A cosmetically different rendering of the same STG (extra blank
    // line) must hash to the same canonical digest and hit.
    let reformatted = format!("\n{g}");
    let third = post_synth(&handle, &reformatted);
    assert_eq!(third.status, 200);
    assert_eq!(third.header("x-modsyn-cache"), Some("hit"));
    assert_eq!(third.body, first.body);

    assert_eq!(metric(&handle, "modsynd_cache_hits_total"), 2);
    assert_eq!(metric(&handle, "modsynd_cache_misses_total"), 1);
    assert_eq!(metric(&handle, "modsynd_certified_total"), 1);
    stop(&handle, thread);
}

#[test]
fn concurrent_stress_with_eviction_churn_stays_consistent() {
    // A deliberately tiny cache (2 entries in one shard) under three
    // distinct STGs: constant eviction churn, recomputation and races.
    let (handle, thread) = start(ServerConfig {
        jobs: 4,
        cache: CacheConfig {
            shards: 1,
            max_entries: 2,
            max_bytes: 1 << 20,
        },
        ..ServerConfig::default()
    });
    let names = ["vbe-ex1", "sendr-done", "nouse"];
    let bodies: Vec<String> = names.iter().map(|n| benchmark_g(n)).collect();

    let mut per_benchmark: Vec<Vec<Vec<u8>>> = vec![Vec::new(); names.len()];
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..8 {
            let bodies = &bodies;
            let handle = &handle;
            workers.push(scope.spawn(move || {
                let mut got: Vec<(usize, Vec<u8>)> = Vec::new();
                for round in 0..6 {
                    let which = (worker + round) % bodies.len();
                    let response = post_synth(handle, &bodies[which]);
                    assert_eq!(response.status, 200, "{}", response.text());
                    got.push((which, response.body));
                }
                got
            }));
        }
        for worker in workers {
            for (which, body) in worker.join().expect("stress worker") {
                per_benchmark[which].push(body);
            }
        }
    });

    // Byte-identical responses for identical requests, hit or miss.
    for (which, bodies) in per_benchmark.iter().enumerate() {
        assert!(!bodies.is_empty());
        for body in bodies {
            assert_eq!(
                body, &bodies[0],
                "{}: response bytes diverged",
                names[which]
            );
        }
    }
    // Three working-set entries through a 2-entry cache must evict.
    assert!(metric(&handle, "modsynd_cache_evictions_total") > 0);
    let hits = metric(&handle, "modsynd_cache_hits_total");
    let misses = metric(&handle, "modsynd_cache_misses_total");
    assert_eq!(hits + misses, 48, "every request is a hit or a miss");
    assert!(misses > 0);
    stop(&handle, thread);
}

#[test]
fn cache_capacity_bounds_hold_under_concurrent_insertions() {
    use modsyn_svc::{cache_key, ShardedLru};
    use std::sync::Arc;

    let cache: ShardedLru<Arc<Vec<u8>>> = ShardedLru::new(&CacheConfig {
        shards: 4,
        max_entries: 16,
        max_bytes: 4096,
    });
    std::thread::scope(|scope| {
        for worker in 0..8u64 {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..500u64 {
                    let key = cache_key((worker * 10_007 + i).wrapping_mul(0x9e37_79b9), 0);
                    cache.insert(key, Arc::new(vec![0u8; 16]), 16);
                    cache.get(key);
                }
            });
        }
    });
    assert!(cache.len() <= cache.shard_count() * cache.entry_budget());
    assert!(cache.bytes() <= 4096);
    assert!(cache.evictions() > 0);
}

#[test]
fn malformed_requests_get_typed_errors_and_the_accept_loop_survives() {
    let (handle, thread) = start(ServerConfig {
        limits: Limits {
            max_head: 16 * 1024,
            max_body: 2048,
        },
        ..ServerConfig::default()
    });

    // Bad method on a known path → 405 with Allow.
    let got = raw_roundtrip(&handle, b"BREW /synth HTTP/1.1\r\nHost: t\r\n\r\n", false);
    assert!(got.starts_with("HTTP/1.1 405"), "{got}");
    assert!(got.contains("Allow: POST"), "{got}");

    // Garbage request line → 400.
    let got = raw_roundtrip(&handle, b"complete garbage\r\n\r\n", false);
    assert!(got.starts_with("HTTP/1.1 400"), "{got}");

    // Unsupported version → 505.
    let got = raw_roundtrip(&handle, b"GET /healthz HTTP/3\r\n\r\n", false);
    assert!(got.starts_with("HTTP/1.1 505"), "{got}");

    // Oversized body (declared > max_body) → 413.
    let got = raw_roundtrip(
        &handle,
        b"POST /synth HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
        false,
    );
    assert!(got.starts_with("HTTP/1.1 413"), "{got}");

    // POST without Content-Length → 411.
    let got = raw_roundtrip(&handle, b"POST /synth HTTP/1.1\r\nHost: t\r\n\r\n", false);
    assert!(got.starts_with("HTTP/1.1 411"), "{got}");

    // Truncated request (peer gives up mid-body) → 400.
    let got = raw_roundtrip(
        &handle,
        b"POST /synth HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        true,
    );
    assert!(got.starts_with("HTTP/1.1 400"), "{got}");

    // Invalid .g payload → 400 with the parser's message.
    let response = post_synth(&handle, ".model broken\n.graph\nnot a transition\n.end\n");
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(
        response.text().contains("\"error\":\"parse\""),
        "{}",
        response.text()
    );

    // Unknown method value → 400.
    let response = client::request(
        handle.addr(),
        "POST",
        "/synth?method=quantum",
        benchmark_g("vbe-ex1").as_bytes(),
        TIMEOUT,
    )
    .expect("request");
    assert_eq!(response.status, 400);

    // Unknown path → 404.
    let response = client::request(handle.addr(), "GET", "/nope", b"", TIMEOUT).expect("request");
    assert_eq!(response.status, 404);

    // All of the above must have left the accept loop serving.
    assert!(metric(&handle, "modsynd_http_errors_total") >= 9);
    let ok = post_synth(&handle, &benchmark_g("vbe-ex1"));
    assert_eq!(ok.status, 200, "{}", ok.text());
    assert!(ok.text().contains("\"certified\":true"));
    stop(&handle, thread);
}

#[test]
fn saturated_admission_queue_sheds_with_503() {
    // queue_capacity 0: every cache miss is shed before touching the pool.
    let (handle, thread) = start(ServerConfig {
        jobs: 1,
        queue_capacity: 0,
        ..ServerConfig::default()
    });
    let response = post_synth(&handle, &benchmark_g("vbe-ex1"));
    assert_eq!(response.status, 503, "{}", response.text());
    assert_eq!(response.header("retry-after"), Some("1"));
    assert!(response.text().contains("\"error\":\"overloaded\""));
    assert_eq!(metric(&handle, "modsynd_shed_total"), 1);
    // Sheds must not poison the gauges.
    assert_eq!(metric(&handle, "modsynd_queue_depth"), 0);
    assert_eq!(metric(&handle, "modsynd_in_flight"), 0);
    stop(&handle, thread);
}

#[test]
fn deadline_expiry_surfaces_as_504_and_counts_aborted() {
    let (handle, thread) = start(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    });
    // mr0 takes ~1s to synthesise; a 1ms budget must abort cooperatively.
    let response = client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular&timeout_ms=1",
        benchmark_g("mr0").as_bytes(),
        TIMEOUT,
    )
    .expect("request");
    assert_eq!(response.status, 504, "{}", response.text());
    assert!(response.text().contains("\"error\":\"aborted\""));
    assert_eq!(metric(&handle, "modsynd_aborted_total"), 1);
    // The failure is not cached: a retry without the deadline succeeds.
    let retry = post_synth(&handle, &benchmark_g("mr0"));
    assert_eq!(retry.status, 200, "{}", retry.text());
    assert_eq!(retry.header("x-modsyn-cache"), Some("miss"));
    stop(&handle, thread);
}

#[test]
fn unsolvable_inputs_are_422_not_500() {
    let (handle, thread) = start(ServerConfig::default());
    // alex-nonfc is not free-choice: the lavagno baseline rejects it with
    // a typed synthesis error, which the service maps to a 422.
    let response = client::request(
        handle.addr(),
        "POST",
        "/synth?method=lavagno",
        benchmark_g("alex-nonfc").as_bytes(),
        TIMEOUT,
    )
    .expect("request");
    assert_eq!(response.status, 422, "{}", response.text());
    assert!(
        response.text().contains("\"error\":\"not-free-choice\""),
        "{}",
        response.text()
    );
    assert_eq!(metric(&handle, "modsynd_synth_failures_total"), 1);
    stop(&handle, thread);
}

#[test]
fn injected_pool_panic_is_a_500_and_gauges_return_to_zero() {
    // One injected panic at pool.enqueue: the admitted job's closure is
    // dropped during unwinding without ever running, so the queue-depth
    // ticket is released by RAII, not by the (never-reached) closure body.
    let faults = modsyn_fault::FaultPlan::parse("test", "pool.enqueue*1", 7)
        .expect("fault spec")
        .arm();
    let (handle, thread) = start(ServerConfig {
        jobs: 2,
        faults,
        ..ServerConfig::default()
    });

    let response = post_synth(&handle, &benchmark_g("vbe-ex1"));
    assert_eq!(response.status, 500, "{}", response.text());
    assert!(
        response.text().contains("\"error\":\"panic\""),
        "{}",
        response.text()
    );
    assert_eq!(metric(&handle, "modsynd_panics_total"), 1);

    // The RAII guards gave every slot back…
    assert_eq!(metric(&handle, "modsynd_queue_depth"), 0);
    assert_eq!(metric(&handle, "modsynd_in_flight"), 0);
    // …and the server still synthesises (the fault budget is spent).
    let retry = post_synth(&handle, &benchmark_g("vbe-ex1"));
    assert_eq!(retry.status, 200, "{}", retry.text());

    stop(&handle, thread);
    assert_eq!(handle.metrics().queue_depth.load(Ordering::Acquire), 0);
    assert_eq!(handle.metrics().in_flight.load(Ordering::Acquire), 0);
    assert_eq!(handle.metrics().connections.load(Ordering::Acquire), 0);
}

#[test]
fn trace_id_retrieves_the_span_chain_from_the_flight_recorder() {
    // One injected solver abort: rung 1 of the retry ladder fails, the
    // portfolio rung recovers, and the whole chain — svc accept, pool
    // run, retry ladder, SAT solve — lands in the flight recorder under
    // the caller-chosen trace id.
    let faults = modsyn_fault::FaultPlan::parse("test", "sat.abort*1", 3)
        .expect("fault spec")
        .arm();
    let (handle, thread) = start(ServerConfig {
        jobs: 2,
        faults,
        ..ServerConfig::default()
    });
    let trace = "00000000deadbeef";

    let response = client::request_with_headers(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        &[("X-Modsyn-Trace", trace)],
        benchmark_g("vbe-ex1").as_bytes(),
        TIMEOUT,
    )
    .expect("synth request");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.header("x-modsyn-trace"), Some(trace));
    assert_eq!(metric(&handle, "modsynd_retry_recoveries_total"), 1);

    let flight = client::request(
        handle.addr(),
        "GET",
        &format!("/debug/flight?trace={trace}"),
        b"",
        TIMEOUT,
    )
    .expect("flight request");
    assert_eq!(flight.status, 200, "{}", flight.text());
    let dump = flight.text();
    assert!(dump.contains(&format!("\"trace\":\"{trace}\"")), "{dump}");
    for span in [
        "svc.request",
        "pool.run",
        "retry.ladder",
        "retry.attempt",
        "sat.solve",
    ] {
        assert!(
            dump.contains(&format!("\"{span}\"")),
            "missing {span}: {dump}"
        );
    }
    // The injected fault itself is on the trace too.
    assert!(dump.contains("\"sat.abort\""), "{dump}");

    // A trace nobody used comes back empty, not with someone else's spans.
    let other = client::request(
        handle.addr(),
        "GET",
        "/debug/flight?trace=0000000000000001",
        b"",
        TIMEOUT,
    )
    .expect("flight request");
    assert!(other.text().contains("\"count\":0"), "{}", other.text());

    // The same traffic fed the server-side latency histograms.
    let rendered = client::request(handle.addr(), "GET", "/metrics", b"", TIMEOUT)
        .expect("metrics request")
        .text();
    let hist = |q: &str| {
        modsyn_svc::Metrics::parse_hist(&rendered, "request_us:synth:modular", q)
            .unwrap_or_else(|| panic!("histogram {q} missing from:\n{rendered}"))
    };
    assert_eq!(hist("count"), 1);
    assert!(hist("p50") > 0, "latency p50 must be nonzero");
    assert!(hist("p99") >= hist("p50"));

    stop(&handle, thread);
}

/// The probe contract is pinned: `/healthz` is pure liveness (always
/// `200 ok`), `/readyz` is readiness (`200 ready` once serving; drain
/// and recovery flip it to 503 without touching liveness). Orchestrators
/// parse these bodies, so the exact bytes are part of the API.
#[test]
fn liveness_and_readiness_probes_are_split_and_pinned() {
    let (handle, thread) = start(ServerConfig::default());

    let live = client::request(handle.addr(), "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(live.status, 200);
    assert_eq!(live.text(), "ok\n");

    let ready = client::request(handle.addr(), "GET", "/readyz", b"", TIMEOUT).expect("readyz");
    assert_eq!(ready.status, 200);
    assert_eq!(ready.text(), "ready\n");

    // Probes are GET-only.
    let got = raw_roundtrip(
        &handle,
        b"POST /readyz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
        false,
    );
    assert!(
        got.starts_with("HTTP/1.1 405"),
        "POST /readyz must be rejected, got: {got}"
    );

    stop(&handle, thread);
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (handle, thread) = start(ServerConfig::default());
    // Healthy while serving…
    let health = client::request(handle.addr(), "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);

    let response =
        client::request(handle.addr(), "POST", "/shutdown", b"", TIMEOUT).expect("shutdown");
    assert_eq!(response.status, 202);
    // run() must return (drain), not hang: join with the test's own clock.
    thread.join().expect("server thread").expect("server run");
    // Gauges drained to zero.
    assert_eq!(handle.metrics().connections.load(Ordering::Acquire), 0);
    assert_eq!(handle.metrics().in_flight.load(Ordering::Acquire), 0);
}
