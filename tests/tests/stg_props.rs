//! Property-based tests: randomly generated STGs keep the library's
//! invariants.
//!
//! The named `regression_*` tests at the top pin cases proptest found in
//! the past (see `stg_props.proptest-regressions`); they run unguarded on
//! every `cargo test`. The generative versions are gated behind
//! `--features proptest-tests` (the dependency needs network access to
//! fetch; see `Cargo.toml`).

use modsyn_sg::{derive, DeriveOptions, EdgeLabel, StateGraph};
use modsyn_stg::{Frag, SignalId, SignalKind, Stg, StgBuilder};

/// A compact recipe for a random but well-formed cyclic STG: a sequence of
/// "phases"; each phase either pulses one signal, runs a full handshake, or
/// forks two pulses in parallel.
#[derive(Debug, Clone)]
enum Phase {
    Pulse(u8),
    #[cfg_attr(not(feature = "proptest-tests"), allow(dead_code))]
    Handshake(u8, u8),
    #[cfg_attr(not(feature = "proptest-tests"), allow(dead_code))]
    ParPulses(u8, u8),
}

fn build(phases: &[Phase], signals: u8) -> Option<Stg> {
    let mut b = StgBuilder::new("random");
    let ids: Vec<SignalId> = (0..signals)
        .map(|i| {
            let kind = if i == 0 {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            b.signal(format!("s{i}"), kind).expect("unique names")
        })
        .collect();
    let pulse = |s: u8| Frag::seq([Frag::rise(ids[s as usize]), Frag::fall(ids[s as usize])]);
    // Exercise every signal once so initial values are always inferable.
    let mut frags: Vec<Frag> = (0..signals).map(pulse).collect();
    for p in phases {
        match *p {
            Phase::Pulse(a) => frags.push(pulse(a % signals)),
            Phase::Handshake(a, b) => {
                let (a, b) = (a % signals, b % signals);
                if a == b {
                    frags.push(pulse(a));
                } else {
                    frags.push(Frag::seq([
                        Frag::rise(ids[a as usize]),
                        Frag::rise(ids[b as usize]),
                        Frag::fall(ids[a as usize]),
                        Frag::fall(ids[b as usize]),
                    ]));
                }
            }
            Phase::ParPulses(a, b) => {
                let (a, b) = (a % signals, b % signals);
                if a == b {
                    frags.push(pulse(a));
                } else {
                    frags.push(Frag::seq([
                        Frag::par([pulse(a), pulse(b)]),
                        pulse((a + 1) % signals),
                    ]));
                }
            }
        }
    }
    b.cycle(Frag::seq(frags)).ok()
}

fn assert_edges_flip_exactly_their_bit(sg: &StateGraph) {
    for e in sg.edges() {
        let EdgeLabel::Signal { signal, polarity } = e.label else {
            panic!("no dummies generated");
        };
        assert_eq!(sg.value(e.from, signal), polarity.value_before());
        assert_eq!(sg.code(e.from) ^ sg.code(e.to), 1u64 << signal);
    }
}

/// Pinned from `stg_props.proptest-regressions`: `phases = [Pulse(0)]`
/// repeats the input's pulse right after the prelude already pulsed it, so
/// the derived graph revisits codes. Deriving it must stay consistent.
#[test]
fn regression_repeated_input_pulse_derives_consistent_state_graph() {
    let stg = build(&[Phase::Pulse(0)], 4).expect("recipe is well formed");
    let sg = derive(&stg, &DeriveOptions::default()).expect("DSL output is consistent");
    assert!(sg.state_count() >= 2);
    assert_edges_flip_exactly_their_bit(&sg);
}

/// Pinned from `stg_props.proptest-regressions`: `phases = [Pulse(0)],
/// hide_mask = 0` — hiding the *empty* signal set must be a faithful
/// (if possibly ε-collapsing) quotient, not a no-op short-circuit.
#[test]
fn regression_hiding_no_signals_is_a_faithful_quotient() {
    let stg = build(&[Phase::Pulse(0)], 4).expect("recipe is well formed");
    let sg = derive(&stg, &DeriveOptions::default()).unwrap();
    let q = sg.hide_signals(&[]).unwrap();
    assert!(q.graph.state_count() <= sg.state_count());
    assert!(q.graph.edge_count() <= sg.edge_count());
    // The cover map is total and lands in range.
    assert_eq!(q.state_map.len(), sg.state_count());
    for &m in &q.state_map {
        assert!(m < q.graph.state_count());
    }
    // Codes restrict faithfully.
    for s in 0..sg.state_count() {
        for (orig, mapped) in q.signal_map.iter().enumerate() {
            if let Some(new) = mapped {
                assert_eq!(sg.value(s, orig), q.graph.value(q.state_map[s], *new));
            }
        }
    }
}

#[cfg(feature = "proptest-tests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn phase_strategy(signals: u8) -> impl Strategy<Value = Phase> {
        prop_oneof![
            (0..signals).prop_map(Phase::Pulse),
            (0..signals, 0..signals).prop_map(|(a, b)| Phase::Handshake(a, b)),
            (0..signals, 0..signals).prop_map(|(a, b)| Phase::ParPulses(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_stgs_derive_consistent_state_graphs(
            phases in proptest::collection::vec(phase_strategy(4), 1..5)
        ) {
            let Some(stg) = build(&phases, 4) else { return Ok(()) };
            let sg = derive(&stg, &DeriveOptions::default()).expect("DSL output is consistent");
            prop_assert!(sg.state_count() >= 2);
            assert_edges_flip_exactly_their_bit(&sg);
        }

        #[test]
        fn hiding_signals_never_grows_the_graph(
            phases in proptest::collection::vec(phase_strategy(4), 1..5),
            hide_mask in 0u8..16,
        ) {
            let Some(stg) = build(&phases, 4) else { return Ok(()) };
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let hidden: Vec<usize> =
                (0..4).filter(|i| hide_mask >> i & 1 == 1).collect();
            let q = sg.hide_signals(&hidden).unwrap();
            prop_assert!(q.graph.state_count() <= sg.state_count());
            prop_assert!(q.graph.edge_count() <= sg.edge_count());
            // The cover map is total and lands in range.
            prop_assert_eq!(q.state_map.len(), sg.state_count());
            for &m in &q.state_map {
                prop_assert!(m < q.graph.state_count());
            }
            // Codes restrict faithfully.
            for s in 0..sg.state_count() {
                for (orig, mapped) in q.signal_map.iter().enumerate() {
                    if let Some(new) = mapped {
                        prop_assert_eq!(
                            sg.value(s, orig),
                            q.graph.value(q.state_map[s], *new)
                        );
                    }
                }
            }
        }

        #[test]
        fn modular_synthesis_handles_random_solvable_stgs(
            phases in proptest::collection::vec(phase_strategy(3), 1..4)
        ) {
            let Some(stg) = build(&phases, 3) else { return Ok(()) };
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let analysis = sg.csc_analysis();
            // Only exercise instances the theory says are solvable.
            if !sg.unresolvable_csc_pairs(&analysis).is_empty() {
                return Ok(());
            }
            let out = modsyn::modular_resolve(&sg, &modsyn::CscSolveOptions::default());
            if let Ok(out) = out {
                prop_assert!(out.graph.csc_analysis().satisfies_csc());
                let functions = modsyn::derive_logic(&out.graph).unwrap();
                prop_assert!(modsyn::verify_logic(&out.graph, &functions));
            }
        }
    }
}
