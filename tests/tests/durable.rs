//! Crash-safety integration tests: journal truncation as a *property*
//! (any mutation sequence, any byte cut — replay yields a prefix, never a
//! panic), the pinned previous-generation fallback semantics, and the
//! daemon restarting warm from a durable directory.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use modsyn_fault::{Faults, SplitMix64};
use modsyn_obs::Tracer;
use modsyn_store::{
    encode_frame, scan_bytes, DurableConfig, DurableStore, ModuleEntry, RecoveryReport,
    StoreMutation, StoredFormula, SynthRecord, SNAP_FILE, WAL_HEADER,
};
use modsyn_svc::client;
use modsyn_svc::{Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(60);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "modsyn-itest-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One seeded, arbitrary store mutation — the hand-rolled stand-in for a
/// proptest generator (the proptest dependency is gated off for offline
/// builds).
fn arbitrary_mutation(rng: &mut SplitMix64) -> StoreMutation {
    match rng.below(3) {
        0 => StoreMutation::Module {
            key: rng.next_u64(),
            entry: ModuleEntry {
                assignments: Vec::new(),
                formulas: vec![StoredFormula {
                    state_signals: rng.below(7),
                    clauses: rng.below(1000),
                    ..Default::default()
                }],
                provenance: Vec::new(),
            },
        },
        1 => StoreMutation::Record {
            digest: rng.next_u64(),
            record: SynthRecord {
                benchmark: format!("bench-{}", rng.below(100)),
                inserted: vec![format!("csc{}", rng.below(4))],
                provenance: Vec::new(),
            },
        },
        _ => StoreMutation::Response {
            key: (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
            body: "x".repeat(rng.below(64)),
        },
    }
}

/// A journal for `mutations` plus the byte offset of every frame
/// boundary (the header boundary first).
fn journal_bytes(mutations: &[StoreMutation]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = WAL_HEADER.to_vec();
    let mut boundaries = vec![bytes.len()];
    for (i, m) in mutations.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(i as u64 + 1, m));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// The property satellite: for ANY mutation sequence and ANY
/// byte-truncation point, replay yields exactly the whole frames before
/// the cut — a strict prefix, in order, never a panic, never a frame
/// invented past the tear.
#[test]
fn any_truncation_of_any_journal_replays_a_prefix() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0xD00D ^ seed);
        let count = 2 + rng.below(12);
        let mutations: Vec<StoreMutation> =
            (0..count).map(|_| arbitrary_mutation(&mut rng)).collect();
        let (bytes, boundaries) = journal_bytes(&mutations);
        for cut in 0..=bytes.len() {
            let (frames, scan) = scan_bytes(&bytes[..cut]);
            let whole = boundaries
                .iter()
                .filter(|&&b| b <= cut)
                .count()
                .saturating_sub(1);
            assert_eq!(
                frames.len(),
                whole,
                "seed {seed}: cut at byte {cut} must keep exactly the whole frames"
            );
            for (j, (seq, mutation)) in frames.iter().enumerate() {
                assert_eq!(*seq, j as u64 + 1, "seed {seed} cut {cut}: order preserved");
                assert_eq!(mutation, &mutations[j], "seed {seed} cut {cut}: content");
            }
            // The valid prefix ends at the last whole frame (at the end
            // of the header when no frame survives; at zero when even the
            // header is torn).
            let valid = if cut < boundaries[0] {
                0
            } else {
                boundaries[whole]
            };
            assert_eq!(scan.valid_len, valid as u64, "seed {seed} cut {cut}");
        }
    }
}

/// Companion property: flipping any single byte never panics and still
/// yields an in-order prefix of the original frames — the checksum stops
/// replay at (or before) the corruption instead of inventing state.
#[test]
fn any_single_byte_corruption_still_replays_a_prefix() {
    let mut rng = SplitMix64::new(0xBAD_C0DE);
    let mutations: Vec<StoreMutation> = (0..6).map(|_| arbitrary_mutation(&mut rng)).collect();
    let (bytes, _) = journal_bytes(&mutations);
    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x40;
        let (frames, _scan) = scan_bytes(&corrupted);
        assert!(frames.len() <= mutations.len(), "flip at {pos}");
        for (j, (seq, mutation)) in frames.iter().enumerate() {
            assert_eq!(*seq, j as u64 + 1, "flip at {pos}: order");
            assert_eq!(mutation, &mutations[j], "flip at {pos}: content");
        }
    }
}

fn module(n: usize) -> StoreMutation {
    StoreMutation::Module {
        key: n as u64,
        entry: ModuleEntry {
            assignments: Vec::new(),
            formulas: vec![StoredFormula {
                state_signals: n,
                ..Default::default()
            }],
            provenance: Vec::new(),
        },
    }
}

/// Pinned regression for the previous-generation fallback. The exact
/// semantics: when `snap.json` is corrupt, recovery loads `snap.prev.json`
/// and replays the (already compacted) journal suffix on top. Entries
/// covered *only* by the corrupt generation are gone — the store is
/// content-addressed, so a hole is a future cache miss that re-derives
/// and re-certifies, never an inconsistency — and everything else
/// survives. This test pins the full [`RecoveryReport`] so any change to
/// these semantics is a loud diff.
#[test]
fn previous_generation_fallback_report_is_pinned() {
    let dir = temp_dir("fallback-pin");
    let config = DurableConfig::new(&dir);
    {
        let store = modsyn_store::SynthStore::new();
        let apply = |store: &modsyn_store::SynthStore, m: &StoreMutation| {
            if let StoreMutation::Module { key, entry } = m {
                store.put_module(*key, entry.clone());
            }
        };
        let (d, _, _) = DurableStore::open(config.clone(), Faults::none()).unwrap();
        d.record(&module(1), || apply(&store, &module(1)));
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap(); // gen 1: {1}
        d.record(&module(2), || apply(&store, &module(2)));
        d.checkpoint(|| (store.snapshot(), Vec::new())).unwrap(); // gen 2: {1,2}; gen 1 rotates to prev
        d.record(&module(3), || {});
    } // dropped without a final checkpoint: frame 3 lives in the journal
    std::fs::write(dir.join(SNAP_FILE), b"{\"version\": garbage").unwrap();

    let (_d, data, report) = DurableStore::open(config, Faults::none()).unwrap();
    assert_eq!(
        report,
        RecoveryReport {
            snapshot_loaded: true,
            snapshot_fallbacks: 1,
            frames_replayed: 1, // frame 3, the only journal survivor
            frames_skipped: 0,
            frames_truncated: 0,
            checksum_failures: 0,
            bytes_truncated: 0,
            wal_seq: 3,
        }
    );
    // The previous generation carried module 1; the journal carried 3.
    // Module 2 was covered only by the corrupt generation: a hole, not a
    // haunting.
    let keys: Vec<u64> = {
        let mut k: Vec<u64> = data.modules.iter().map(|(key, _)| *key).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(keys, vec![1, 3]);
    let _ = std::fs::remove_dir_all(&dir);
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, Tracer::disabled()).expect("bind loopback");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (handle, thread)
}

fn stop(handle: &ServerHandle, thread: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread.join().expect("server thread").expect("server run");
}

/// Polls `/readyz` until the server finishes its background recovery.
fn wait_ready(handle: &ServerHandle) {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        if let Ok(r) = client::request(
            handle.addr(),
            "GET",
            "/readyz",
            b"",
            Duration::from_millis(250),
        ) {
            if r.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric(handle: &ServerHandle, name: &str) -> u64 {
    let response =
        client::request(handle.addr(), "GET", "/metrics", b"", TIMEOUT).expect("metrics request");
    modsyn_svc::Metrics::parse_line(&response.text(), name)
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{}", response.text()))
}

/// A daemon restarted onto its durable directory answers previously
/// certified work from the recovered response cache — warm, byte-exact.
#[test]
fn server_restarts_warm_from_durable_dir() {
    let dir = temp_dir("server-warm");
    let g = modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name("vbe-ex1").expect("benchmark"));
    let durable = || ServerConfig {
        jobs: 2,
        durable: Some(DurableConfig::new(&dir)),
        ..ServerConfig::default()
    };

    let (handle, thread) = start(durable());
    wait_ready(&handle);
    let first = client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        g.as_bytes(),
        TIMEOUT,
    )
    .expect("first synth");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-modsyn-cache"), Some("miss"));
    assert!(metric(&handle, "modsynd_wal_appends_total") > 0);
    stop(&handle, thread); // graceful drain: final checkpoint

    let (handle, thread) = start(durable());
    wait_ready(&handle);
    assert_eq!(metric(&handle, "modsynd_ready"), 1);
    let again = client::request(
        handle.addr(),
        "POST",
        "/synth?method=modular",
        g.as_bytes(),
        TIMEOUT,
    )
    .expect("warm synth");
    assert_eq!(again.status, 200);
    assert_eq!(
        again.header("x-modsyn-cache"),
        Some("hit"),
        "recovered response cache must serve the restart warm"
    );
    assert_eq!(again.body, first.body, "byte-identical across the restart");
    stop(&handle, thread);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash (no final checkpoint) leaves state only in the journal; the
/// restarted daemon must replay it and surface the replay in `/metrics`.
#[test]
fn server_recovers_journal_only_state_after_a_crash() {
    let dir = temp_dir("server-crash");
    {
        let (d, _, _) =
            DurableStore::open(DurableConfig::new(&dir), Faults::none()).expect("open durable");
        for n in 1..=5 {
            d.record(&module(n), || {});
        }
    } // dropped with no checkpoint — the simulated kill -9

    let (handle, thread) = start(ServerConfig {
        durable: Some(DurableConfig::new(&dir)),
        ..ServerConfig::default()
    });
    wait_ready(&handle);
    assert_eq!(metric(&handle, "modsynd_recovery_frames_replayed"), 5);
    assert_eq!(metric(&handle, "modsynd_recovery_frames_truncated"), 0);
    stop(&handle, thread);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt legacy `--store-snapshot` file must be a logged recovery
/// event, never a bind failure.
#[test]
fn corrupt_legacy_snapshot_does_not_prevent_bind() {
    let dir = temp_dir("legacy-corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("store.json");
    std::fs::write(&snapshot, b"{\"version\":").unwrap();

    let (handle, thread) = start(ServerConfig {
        store_snapshot: Some(snapshot),
        ..ServerConfig::default()
    });
    let health = client::request(handle.addr(), "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200, "corrupt snapshot must not kill bind");
    assert_eq!(metric(&handle, "modsynd_recovery_snapshot_fallbacks"), 1);
    stop(&handle, thread);
    let _ = std::fs::remove_dir_all(&dir);
}
