//! Coverage guard for proptest regression seeds.
//!
//! The proptest dev-dependency is gated off so the workspace resolves
//! offline, which means the `.proptest-regressions` seed files are never
//! replayed by proptest itself in a default run. Instead each recorded
//! seed is promoted to a named, ungated `regression_*` unit test in the
//! sibling test file. This guard keeps that promotion honest: every `cc`
//! entry must be matched by at least as many named regression tests, and
//! every entry must carry its `# shrinks to` documentation so the
//! promoted test can reproduce the minimal case without proptest.

use std::fs;
use std::path::Path;

/// A parsed `.proptest-regressions` file next to its sibling test source.
struct SeedFile {
    name: String,
    seeds: usize,
    undocumented: Vec<String>,
    named_tests: usize,
}

fn scan() -> Vec<SeedFile> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests directory is readable")
        .map(|e| e.expect("directory entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let is_seed_file = path
            .extension()
            .is_some_and(|ext| ext == "proptest-regressions");
        if !is_seed_file {
            continue;
        }
        let text = fs::read_to_string(&path).expect("seed file is readable");
        let cc_lines: Vec<&str> = text
            .lines()
            .filter(|line| line.trim_start().starts_with("cc "))
            .collect();
        let undocumented = cc_lines
            .iter()
            .filter(|line| !line.contains("# shrinks to"))
            .map(|line| line.to_string())
            .collect();
        let sibling = path.with_extension("rs");
        let source = fs::read_to_string(&sibling).unwrap_or_else(|_| {
            panic!(
                "{} has no sibling test file {}",
                path.display(),
                sibling.display()
            )
        });
        let named_tests = source.matches("fn regression_").count();
        out.push(SeedFile {
            name: path
                .file_name()
                .expect("seed file has a name")
                .to_string_lossy()
                .into_owned(),
            seeds: cc_lines.len(),
            undocumented,
            named_tests,
        });
    }
    out
}

#[test]
fn every_regression_seed_is_promoted_to_a_named_test() {
    let files = scan();
    assert!(
        !files.is_empty(),
        "expected at least one .proptest-regressions file under tests/tests"
    );
    for file in &files {
        assert!(
            file.named_tests >= file.seeds,
            "{}: {} recorded seed(s) but only {} named regression_* test(s); \
             promote each seed to an ungated unit test in the sibling .rs file",
            file.name,
            file.seeds,
            file.named_tests,
        );
    }
}

#[test]
fn every_regression_seed_documents_its_shrunk_case() {
    for file in scan() {
        assert!(
            file.undocumented.is_empty(),
            "{}: seed entries without `# shrinks to` documentation: {:?}",
            file.name,
            file.undocumented,
        );
    }
}
