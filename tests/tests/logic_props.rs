//! Property tests (gated): enable with `--features proptest-tests` after
//! re-adding the proptest dev-dependency (needs network; see Cargo.toml).
#![cfg(feature = "proptest-tests")]
//! Property-based tests for the two-level minimiser.

use modsyn_logic::{complement, is_tautology, minimize, Cover, Cube};
use proptest::prelude::*;

/// Strategy: a random cover over `n` variables.
fn cover_strategy(n: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(proptest::collection::vec(0u8..3, n..=n), 0..8).prop_map(
        move |rows| {
            let cubes = rows.into_iter().map(|row| {
                let mut c = Cube::full(n);
                for (v, &code) in row.iter().enumerate() {
                    match code {
                        0 => c.set_literal(v, Some(false)),
                        1 => c.set_literal(v, Some(true)),
                        _ => {}
                    }
                }
                c
            });
            Cover::from_cubes(n, cubes)
        },
    )
}

fn minterms(n: usize) -> Vec<Vec<bool>> {
    (0u32..(1 << n))
        .map(|bits| (0..n).map(|v| bits >> v & 1 == 1).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minimize_preserves_semantics(on in cover_strategy(4)) {
        let dc = Cover::empty(4);
        let r = minimize(&on, &dc);
        for m in minterms(4) {
            prop_assert_eq!(
                r.cover.covers_minterm(&m),
                on.covers_minterm(&m),
                "differs on {:?}", m
            );
        }
    }

    #[test]
    fn minimize_never_increases_cost(on in cover_strategy(4)) {
        let r = minimize(&on, &Cover::empty(4));
        prop_assert!(r.cover.cube_count() <= on.cube_count().max(1));
        prop_assert!(r.cover.literal_count() <= on.literal_count());
    }

    #[test]
    fn minimize_result_is_prime_and_irredundant(on in cover_strategy(4)) {
        let dc = Cover::empty(4);
        let r = minimize(&on, &dc);
        let off = complement(&on.union(&dc));
        for (i, c) in r.cover.cubes().iter().enumerate() {
            // Prime: raising any literal hits the OFF-set.
            for (v, _) in c.literals() {
                let mut raised = c.clone();
                raised.set_literal(v, None);
                prop_assert!(
                    off.cubes().iter().any(|oc| oc.intersects(&raised)),
                    "cube {} not prime", c
                );
            }
            // Irredundant: dropping the cube loses coverage.
            let rest = Cover::from_cubes(
                4,
                r.cover
                    .cubes()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, x)| x.clone()),
            );
            prop_assert!(!rest.covers_cube(c), "cube {} redundant", c);
        }
    }

    #[test]
    fn complement_is_exact(f in cover_strategy(4)) {
        let g = complement(&f);
        for m in minterms(4) {
            prop_assert_ne!(f.covers_minterm(&m), g.covers_minterm(&m));
        }
    }

    #[test]
    fn tautology_matches_brute_force(f in cover_strategy(4)) {
        let brute = minterms(4).iter().all(|m| f.covers_minterm(m));
        prop_assert_eq!(is_tautology(&f), brute);
    }

    #[test]
    fn dont_cares_only_shrink_cost(on in cover_strategy(4), dc in cover_strategy(4)) {
        // Remove overlap so ON and DC are disjoint.
        let dc = Cover::from_cubes(
            4,
            dc.cubes()
                .iter()
                .filter(|c| !on.cubes().iter().any(|oc| oc.intersects(c)))
                .cloned(),
        );
        let plain = minimize(&on, &Cover::empty(4));
        let with_dc = minimize(&on, &dc);
        prop_assert!(with_dc.cover.literal_count() <= plain.cover.literal_count());
        // Result stays within ON ∪ DC and covers ON.
        let allowed = on.union(&dc);
        for m in minterms(4) {
            if on.covers_minterm(&m) {
                prop_assert!(with_dc.cover.covers_minterm(&m));
            }
            if with_dc.cover.covers_minterm(&m) {
                prop_assert!(allowed.covers_minterm(&m));
            }
        }
    }
}
