//! Parallel subsystem integration: the parallel drivers must be
//! bit-for-bit deterministic, and cooperative cancellation must cut a long
//! run short cleanly from the public `synthesize` entry point.

use std::time::{Duration, Instant};

use modsyn::{synthesize, Method, SynthesisError, SynthesisOptions, SynthesisReport};
use modsyn_par::CancelToken;
use modsyn_sat::SolverOptions;
use modsyn_stg::benchmarks;

/// Everything observable about a report except the wall clock.
fn canonical(report: &SynthesisReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "{} {} | {} -> {} states | {} -> {} signals | {} literals",
        report.benchmark,
        report.method,
        report.initial_states,
        report.final_states,
        report.initial_signals,
        report.final_signals,
        report.literals,
    )
    .unwrap();
    for f in &report.formulas {
        writeln!(s, "formula {f:?}").unwrap();
    }
    for m in &report.modules {
        writeln!(s, "module {m:?}").unwrap();
    }
    for f in &report.functions {
        writeln!(s, "fn {} = {} [{} lit]", f.name, f.sop, f.literals).unwrap();
    }
    s
}

fn with_jobs(method: Method, jobs: usize) -> SynthesisOptions {
    let mut options = SynthesisOptions::for_method(method);
    options.jobs = jobs;
    options
}

#[test]
fn parallel_modular_synthesis_matches_sequential_on_every_benchmark() {
    // All 23 Table-1 benchmarks: the jobs=4 run must reproduce the jobs=1
    // report exactly — formulas, module traces and logic included.
    for (name, stg) in benchmarks::all() {
        let seq = synthesize(&stg, &with_jobs(Method::Modular, 1))
            .unwrap_or_else(|e| panic!("{name} jobs=1: {e}"));
        let par = synthesize(&stg, &with_jobs(Method::Modular, 4))
            .unwrap_or_else(|e| panic!("{name} jobs=4: {e}"));
        assert_eq!(canonical(&seq), canonical(&par), "{name}");
    }
}

#[test]
fn a_tight_deadline_aborts_the_direct_method_quickly() {
    // Direct-method mr0 runs for ages at the Table-1 limit; a 50 ms
    // deadline must surface as a clean `Aborted` long before that.
    let stg = benchmarks::mr0();
    let mut options = SynthesisOptions::for_method(Method::Direct);
    options.solver = SolverOptions {
        max_backtracks: Some(20_000),
        ..SolverOptions::default()
    };
    options.cancel = CancelToken::with_deadline(Duration::from_millis(50));
    let started = Instant::now();
    let err = synthesize(&stg, &options).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, SynthesisError::Aborted { .. }),
        "expected abort, got {err:?}"
    );
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}

#[test]
fn a_pre_cancelled_token_aborts_the_parallel_modular_flow() {
    let stg = benchmarks::vbe_ex2();
    let mut options = with_jobs(Method::Modular, 4);
    options.cancel = CancelToken::new();
    options.cancel.cancel();
    assert!(matches!(
        synthesize(&stg, &options),
        Err(SynthesisError::Aborted { .. })
    ));
}
