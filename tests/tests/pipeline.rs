//! End-to-end integration: STG benchmarks through the full modular flow.

use modsyn::{
    derive_logic, modular_resolve, synthesize, total_literals, verify_logic, CscSolveOptions,
    Method, SynthesisOptions,
};
use modsyn_sg::{derive, DeriveOptions, EdgeLabel};
use modsyn_stg::benchmarks;

/// Benchmarks small enough for debug-mode end-to-end runs.
const SMALL: &[&str] = &[
    "vbe-ex1",
    "vbe-ex2",
    "sendr-done",
    "nousc-ser",
    "nouse",
    "fifo",
    "wrdata",
    "sbuf-read-ctl",
    "pa",
    "atod",
    "sbuf-send-ctl",
    "sbuf-send-pkt2",
    "alloc-outbound",
    "alex-nonfc",
];

#[test]
fn modular_flow_resolves_and_verifies_small_benchmarks() {
    for name in SMALL {
        let stg = benchmarks::by_name(name).unwrap();
        let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.inserted_signals() >= 1,
            "{name}: no state signal inserted"
        );
        assert!(report.literals > 0, "{name}");
        assert!(report.final_states >= report.initial_states, "{name}");
        // Every non-input signal of the final graph got a function (the
        // inserted state signals are all non-input).
        let inputs = stg
            .signal_ids()
            .filter(|&s| !stg.signal(s).kind().is_non_input())
            .count();
        assert_eq!(
            report.functions.len(),
            report.final_signals - inputs,
            "{name}: one function per non-input signal"
        );
    }
}

#[test]
fn final_graphs_satisfy_csc_and_consistency() {
    for name in SMALL {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let csc = out.graph.csc_analysis();
        assert!(csc.satisfies_csc(), "{name}: conflicts remain");
        // Consistency: every edge flips exactly the labelled signal's bit.
        for e in out.graph.edges() {
            let EdgeLabel::Signal { signal, polarity } = e.label else {
                panic!("{name}: unexpected epsilon edge after expansion");
            };
            assert_eq!(
                out.graph.value(e.from, signal),
                polarity.value_before(),
                "{name}"
            );
            assert_eq!(
                out.graph.code(e.from) ^ out.graph.code(e.to),
                1 << signal,
                "{name}: edge flips exactly one bit"
            );
        }
        // Semi-modularity caveat: insertion may make an existing non-input
        // signal (or an earlier state signal) *triggered by* a newer state
        // signal, which the excitation-based checker reports at the
        // insertion point; the paper defers the resulting hazards to its
        // post-processing step. Inputs, however, must never be affected —
        // the environment cannot be delayed.
        for v in out.graph.semi_modularity().violations {
            assert!(
                out.graph.signals()[v.signal].kind.is_non_input(),
                "{name}: input signal {} disabled without firing",
                out.graph.signals()[v.signal].name
            );
        }
    }
}

#[test]
fn synthesised_logic_implements_the_state_graph() {
    for name in SMALL {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        let functions = derive_logic(&out.graph).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(verify_logic(&out.graph, &functions), "{name}");
        assert!(total_literals(&functions) > 0, "{name}");
    }
}

#[test]
fn inserted_signal_count_is_at_least_the_lower_bound() {
    for name in SMALL {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let lb = sg.csc_analysis().lower_bound;
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        assert!(
            out.inserted.len() >= lb.min(1),
            "{name}: inserted {} below bound {lb}",
            out.inserted.len()
        );
    }
}

#[test]
fn state_signal_names_are_unique_and_sequential() {
    let stg = benchmarks::by_name("alloc-outbound").unwrap();
    let sg = derive(&stg, &DeriveOptions::default()).unwrap();
    let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
    for (i, name) in out.inserted.iter().enumerate() {
        assert_eq!(name, &format!("csc{i}"));
    }
    // And they appear in the final graph's signal list.
    for name in &out.inserted {
        assert!(out.graph.signal_index(name).is_some());
    }
}
