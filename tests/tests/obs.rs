//! Cross-crate observability integration: a traced modular run produces the
//! span tree the paper's complexity argument is about, and the JSON dump
//! round-trips.

use modsyn::{synthesize_traced, Method, SynthesisOptions};
use modsyn_obs::{parse_json, Tracer};
use modsyn_stg::benchmarks;

#[test]
fn modular_mmu0_trace_has_one_span_per_module() {
    let tracer = Tracer::enabled();
    let report = synthesize_traced(
        &benchmarks::mmu0(),
        &SynthesisOptions::for_method(Method::Modular),
        &tracer,
    )
    .unwrap();
    let trace = tracer.report();

    // One `module:<output>` span per module the flow solved, each carrying a
    // non-zero formula size — the per-module SAT instances of Section 3.
    let module_spans = trace.spans_with_prefix("module:");
    assert_eq!(module_spans.len(), report.modules.len());
    assert!(!module_spans.is_empty(), "mmu0 must decompose into modules");
    for span in &module_spans {
        assert!(span.gauge("clauses").unwrap() > 0.0, "{}", span.name);
        assert!(span.gauge("vars").unwrap() > 0.0, "{}", span.name);
        assert!(
            !span.spans_where(&|s| s.name == "csc.attempt").is_empty(),
            "{} solved no formula",
            span.name
        );
    }

    // The paper's E2 shape: every modular formula is far smaller than the
    // direct encoding over the complete graph would be (O(states * m) vars).
    let complete_states = report.initial_states as f64;
    for span in &module_spans {
        assert!(
            span.gauge("module_states").unwrap() < complete_states / 2.0,
            "{} is not a real decomposition",
            span.name
        );
    }

    // The stage spans all appear, nested under the root.
    assert_eq!(trace.roots.len(), 1);
    assert_eq!(trace.roots[0].name, "synthesize");
    for stage in ["sg.derive", "modular", "logic"] {
        assert_eq!(
            trace.spans_where(&|s| s.name == stage).len(),
            1,
            "missing stage span {stage}"
        );
    }
    assert!(!trace.spans_where(&|s| s.name == "espresso").is_empty());

    // Machine-readable dump round-trips through the hand-rolled parser.
    let json_text = trace.to_json().pretty();
    let parsed = parse_json(&json_text).unwrap();
    assert_eq!(parsed.get("version").unwrap().as_f64(), Some(1.0));
    let spans = parsed.get("spans").unwrap().as_arr().unwrap();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("synthesize"));
}

#[test]
fn direct_trace_contrasts_with_modular() {
    let stg = benchmarks::mmu1();
    let modular = Tracer::enabled();
    synthesize_traced(
        &stg,
        &SynthesisOptions::for_method(Method::Modular),
        &modular,
    )
    .unwrap();
    let direct = Tracer::enabled();
    synthesize_traced(&stg, &SynthesisOptions::for_method(Method::Direct), &direct).unwrap();

    // Only the per-module formulas — the residual cleanup runs on the
    // complete graph and is legitimately direct-sized.
    let modular_report = modular.report();
    let largest_modular = modular_report
        .spans_with_prefix("module:")
        .iter()
        .flat_map(|m| m.spans_where(&|s| s.name == "csc.attempt"))
        .filter_map(|s| s.gauge("clauses"))
        .fold(0.0f64, f64::max);
    let largest_direct = direct
        .report()
        .spans_with_prefix("csc.attempt")
        .iter()
        .filter_map(|s| s.gauge("clauses"))
        .fold(0.0f64, f64::max);
    assert!(
        largest_direct > 2.0 * largest_modular,
        "direct {largest_direct} vs modular {largest_modular}: decomposition should shrink formulas"
    );
}

#[test]
fn disabled_tracer_changes_nothing() {
    let stg = benchmarks::vbe_ex2();
    let options = SynthesisOptions::for_method(Method::Modular);
    let plain = modsyn::synthesize(&stg, &options).unwrap();
    let tracer = Tracer::disabled();
    let traced = synthesize_traced(&stg, &options, &tracer).unwrap();
    assert_eq!(plain.final_signals, traced.final_signals);
    assert_eq!(plain.literals, traced.literals);
    assert!(tracer.events().is_empty());
}
