//! Host package for the workspace-level integration tests in `tests/tests/`.
//!
//! Run them with `cargo test -p modsyn-tests`.
