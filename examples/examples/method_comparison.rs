//! Compare the three CSC-resolution methods on one benchmark — the
//! experiment behind each row of the paper's Table 1.
//!
//! Run with:
//! `cargo run --release -p modsyn-examples --example method_comparison [benchmark]`

use modsyn::{synthesize, Method, SynthesisError, SynthesisOptions};
use modsyn_sat::SolverOptions;
use modsyn_stg::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mmu1".to_string());
    let stg = benchmarks::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?}; see modsyn_stg::benchmarks"))?;

    println!("benchmark {name}: {stg}");
    for method in [Method::Modular, Method::Direct, Method::Lavagno] {
        let mut options = SynthesisOptions::for_method(method);
        // The backtrack limit plays the role of the paper's SIS abort.
        options.solver = SolverOptions {
            max_backtracks: Some(20_000),
            ..SolverOptions::default()
        };
        let started = std::time::Instant::now();
        match synthesize(&stg, &options) {
            Ok(report) => {
                println!(
                    "  {method:8} {:>3} final signals, {:>4} literals, {} formulas, {:.3}s",
                    report.final_signals,
                    report.literals,
                    report.formulas.len(),
                    started.elapsed().as_secs_f64(),
                );
                for f in &report.formulas {
                    println!(
                        "           formula: {} state signals, {} vars, {} clauses -> {}",
                        f.state_signals,
                        f.variables,
                        f.clauses,
                        if f.satisfiable { "sat" } else { "unsat" }
                    );
                }
            }
            Err(SynthesisError::BacktrackLimit { state_signals, elapsed }) => println!(
                "  {method:8} aborted at the SAT backtrack limit ({state_signals} signals, {elapsed:.2}s) — the paper's Table-1 abort"
            ),
            Err(e) => println!("  {method:8} failed: {e}"),
        }
    }
    Ok(())
}
