//! The complete production flow on one benchmark: minimum-area synthesis
//! (BDD-backed), static-hazard removal, and a closed-loop simulation of the
//! resulting gate network against the specification.
//!
//! Run with: `cargo run --release -p modsyn-examples --example full_flow [benchmark]`

use modsyn::{
    closed_loop_check, derive_logic, hazard_report, modular_resolve, remove_static_hazards,
    Circuit, CscSolveOptions,
};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nak-pa".to_string());
    let stg = benchmarks::by_name(&name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    println!("specification: {stg}");

    // 1. Resolve CSC with the BDD-backed minimum-excitation extraction.
    let sg = derive(&stg, &DeriveOptions::default())?;
    let options = CscSolveOptions {
        min_area: true,
        ..Default::default()
    };
    let resolved = modular_resolve(&sg, &options)?;
    println!(
        "resolved: {} state signal(s) inserted, {} -> {} states",
        resolved.inserted.len(),
        sg.state_count(),
        resolved.graph.state_count()
    );

    // 2. Derive and minimise the logic.
    let functions = derive_logic(&resolved.graph)?;
    let area: usize = functions.iter().map(|f| f.literals).sum();
    println!("logic: {} functions, {area} literals", functions.len());

    // 3. Hazard post-processing (the paper's Section 3.5 step).
    let hazards = hazard_report(&resolved.graph, &functions);
    println!(
        "static-1 hazards on specification transitions: {}",
        hazards.total_hazards()
    );
    let repaired = remove_static_hazards(&resolved.graph, &functions);
    let after = hazard_report(&resolved.graph, &repaired);
    let area_after: usize = repaired.iter().map(|f| f.literals).sum();
    println!(
        "after consensus insertion: {} hazards, {area_after} literals",
        after.total_hazards()
    );

    // 4. Execute the gate network in lock-step with the specification.
    let circuit = Circuit::new(&resolved.graph, &repaired)?;
    let sim = closed_loop_check(&resolved.graph, &circuit);
    println!(
        "closed-loop simulation: {} states, {} transitions, conforming: {}",
        sim.states_visited,
        sim.transitions,
        sim.is_conforming()
    );

    println!("\nhazard-free implementation:");
    for f in &repaired {
        println!("  {:8} = {}", f.name, f.sop);
    }
    Ok(())
}
