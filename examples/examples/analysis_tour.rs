//! A tour of the analysis substrates on one benchmark: Petri-net
//! invariants, state-graph conflicts, FSM minimisation, shared-PLA logic
//! and Verilog output.
//!
//! Run with: `cargo run --release -p modsyn-examples --example analysis_tour [benchmark]`

use modsyn::{
    derive_logic, derive_logic_shared, minimise_states, modular_resolve, to_verilog,
    CscSolveOptions,
};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wrdata".to_string());
    let stg = benchmarks::by_name(&name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    println!("== {name} ==\n{stg}");

    // Structural layer: classification and invariants.
    let report = stg.net().structural_report();
    println!(
        "\nstructure: {} ({} choice places, {} synchronisations)",
        report.class, report.choice_places, report.merge_transitions
    );
    let s_inv = stg.net().place_invariants();
    let t_inv = stg.net().transition_invariants();
    println!(
        "invariants: {} place (S), {} transition (T); unit-covered: {}",
        s_inv.len(),
        t_inv.len(),
        stg.net().covered_by_unit_invariants()
    );

    // Behavioural layer: state graph and conflicts.
    let sg = derive(&stg, &DeriveOptions::default())?;
    let csc = sg.csc_analysis();
    println!(
        "\nstate graph: {} states / {} edges; {} CSC conflicts (lower bound {})",
        sg.state_count(),
        sg.edge_count(),
        csc.csc_pairs.len(),
        csc.lower_bound
    );
    let cover = minimise_states(&sg, 50_000);
    println!(
        "flow-table minimisation: {} -> {} rows",
        sg.state_count(),
        cover.reduced_states()
    );

    // Synthesis layer.
    let out = modular_resolve(&sg, &CscSolveOptions::default())?;
    let functions = derive_logic(&out.graph)?;
    let so_literals: usize = functions.iter().map(|f| f.literals).sum();
    let (shared, _names) = derive_logic_shared(&out.graph)?;
    println!(
        "\nsynthesis: {} state signals; per-output {} literals / {} terms; shared PLA {} literals / {} terms",
        out.inserted.len(),
        so_literals,
        functions.iter().map(|f| f.sop.cover().cube_count()).sum::<usize>(),
        shared.input_literal_count(),
        shared.term_count(),
    );

    println!("\n{}", to_verilog(&name, &out.graph, &functions));
    Ok(())
}
