//! Read an STG from the `.g` (astg) interchange format, synthesise it, and
//! write the specification back out — the workflow for STGs coming from
//! SIS or petrify.
//!
//! Run with: `cargo run -p modsyn-examples --example gformat_io`

use modsyn::{synthesize, Method, SynthesisOptions};
use modsyn_stg::{parse_g, write_g};

const SPEC: &str = "
.model converter
.inputs req
.outputs gate out
# A two-phase converter: the output gate pulses twice per request cycle.
.graph
req+ gate+
gate+ gate-
gate- out+
out+ req-
req- gate+/2
gate+/2 gate-/2
gate-/2 out-
out- req+
.marking { <out-,req+> }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stg = parse_g(SPEC)?;
    println!("parsed {}: {} signals", stg.name(), stg.signal_count());
    stg.validate()?;

    let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))?;
    println!(
        "synthesised: {} -> {} signals, {} literals",
        report.initial_signals, report.final_signals, report.literals
    );
    for f in &report.functions {
        println!("  {:6} = {}", f.name, f.sop);
    }

    println!("\nround-tripped specification:\n{}", write_g(&stg));
    Ok(())
}
