//! Build a custom asynchronous controller from scratch with the STG DSL
//! and synthesise it.
//!
//! The controller is a small DMA-style engine: a request starts two
//! concurrent activities (address latch and data strobe); when both finish
//! the engine acknowledges, then performs a cleanup strobe before becoming
//! idle again — the cleanup reuses the same strobe wire, which creates the
//! CSC conflict the synthesiser must fix with a state signal.
//!
//! Run with: `cargo run -p modsyn-examples --example custom_controller`

use modsyn::{synthesize, verify_logic, Method, SynthesisOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::{Frag, SignalKind, StgBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = StgBuilder::new("dma-engine");
    let req = b.signal("req", SignalKind::Input)?;
    let latch = b.signal("latch", SignalKind::Output)?;
    let strobe = b.signal("strobe", SignalKind::Output)?;
    let ack = b.signal("ack", SignalKind::Output)?;

    let stg = b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::par([
            Frag::seq([Frag::rise(latch), Frag::fall(latch)]),
            Frag::seq([Frag::rise(strobe), Frag::fall(strobe)]),
        ]),
        Frag::rise(ack),
        Frag::fall(req),
        // Cleanup strobe: same wire, second pulse per cycle.
        Frag::rise(strobe),
        Frag::fall(strobe),
        Frag::fall(ack),
    ]))?;
    println!("built: {stg}");

    let sg = derive(&stg, &DeriveOptions::default())?;
    println!(
        "state graph has {} states; CSC conflicts: {}",
        sg.state_count(),
        sg.csc_analysis().csc_pairs.len()
    );

    let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))?;
    println!(
        "inserted {} state signal(s); area {} literals",
        report.inserted_signals(),
        report.literals
    );
    for f in &report.functions {
        println!("  {:8} = {}", f.name, f.sop);
    }

    // The library verifies internally, but the check is publicly available:
    let final_graph = {
        let sg = derive(&stg, &DeriveOptions::default())?;
        let out = modsyn::modular_resolve(&sg, &modsyn::CscSolveOptions::default())?;
        out.graph
    };
    let functions = modsyn::derive_logic(&final_graph)?;
    assert!(verify_logic(&final_graph, &functions));
    println!("verification: every function matches its implied value in every state");
    Ok(())
}
