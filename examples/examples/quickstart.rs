//! Quickstart: synthesise one benchmark STG and print everything the
//! library produces — the state graph statistics, the CSC conflicts, the
//! inserted state signals and the minimised logic.
//!
//! Run with: `cargo run -p modsyn-examples --example quickstart`

use modsyn::{synthesize, Method, SynthesisOptions};
use modsyn_sg::{derive, DeriveOptions};
use modsyn_stg::benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any STG works; `vbe-ex1` is the smallest benchmark with a genuine
    // complete-state-coding conflict.
    let stg = benchmarks::vbe_ex1();
    println!("input: {stg}");

    // Inspect the state graph before synthesis.
    let sg = derive(&stg, &DeriveOptions::default())?;
    let csc = sg.csc_analysis();
    println!(
        "state graph: {} states, {} edges; {} CSC conflict pair(s), lower bound {} state signal(s)",
        sg.state_count(),
        sg.edge_count(),
        csc.csc_pairs.len(),
        csc.lower_bound,
    );
    for &(a, b) in &csc.csc_pairs {
        println!(
            "  conflict: state {a} [{}] vs state {b} [{}]",
            sg.code_string(a),
            sg.code_string(b)
        );
    }

    // Run the paper's modular partitioning flow end to end.
    let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))?;
    println!(
        "\nsynthesised with {} inserted state signal(s) in {:.3}s",
        report.inserted_signals(),
        report.cpu_seconds,
    );
    println!(
        "final graph: {} states, {} signals; two-level area {} literals",
        report.final_states, report.final_signals, report.literals,
    );
    println!("\nlogic functions (prime-irredundant SOP):");
    for f in &report.functions {
        println!("  {:8} = {}", f.name, f.sop);
    }
    Ok(())
}
