//! Host package for the runnable examples in `examples/examples/`.
//!
//! Run one with e.g. `cargo run -p modsyn-examples --example quickstart`.
