//! Input-set derivation (paper Figure 2, `determine_input_set`).
//!
//! The *input signal set* of an output is the smallest set of signals its
//! logic function needs. It seeds with the immediate (causal) inputs and
//! then greedily hides every other signal whose removal does not increase
//! the number of CSC conflicts or the state-signal lower bound in the
//! resulting modular (quotient) state graph.

use std::collections::BTreeSet;

use modsyn_sg::{EdgeLabel, SgError, StateGraph};

/// The outcome of input-set derivation for one output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSet {
    /// Indices (in the state graph's signal list) of the signals kept.
    pub kept: Vec<usize>,
    /// Indices of the hidden signals.
    pub hidden: Vec<usize>,
}

/// Signals whose transitions *trigger* a transition of `output`: firing `s`
/// newly enables an edge of `output`. This is the state-graph lift of the
/// STG's "direct causal relationship" — unlike raw edge adjacency it does
/// not pick up merely-concurrent signals.
pub fn immediate_inputs(graph: &StateGraph, output: usize) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    for e in graph.edges() {
        let EdgeLabel::Signal { signal, .. } = e.label else {
            continue;
        };
        if signal == output {
            continue;
        }
        if graph.excited(e.from, output).is_none() && graph.excited(e.to, output).is_some() {
            set.insert(signal);
        }
    }
    set
}

/// Derives the input signal set of `output` (paper Figure 2).
///
/// Starting from the immediate input set, every other signal is tentatively
/// hidden; the removal is kept iff the modular graph's CSC conflict count
/// and state-signal lower bound both do not increase. Previously inserted
/// state signals (internal signals) take part in the same greedy loop.
///
/// # Errors
///
/// Propagates [`SgError`] from quotient construction.
pub fn determine_input_set(graph: &StateGraph, output: usize) -> Result<InputSet, SgError> {
    determine_input_set_traced(graph, output, &modsyn_obs::Tracer::disabled())
}

/// [`determine_input_set`] with observability counters: the greedy loop's
/// hiding trials are tallied as `input_set.kept_trials` /
/// `input_set.rejected_trials` (counters only, no span — this runs once per
/// output per modular iteration and the tree would drown in it).
///
/// # Errors
///
/// As [`determine_input_set`].
pub fn determine_input_set_traced(
    graph: &StateGraph,
    output: usize,
    tracer: &modsyn_obs::Tracer,
) -> Result<InputSet, SgError> {
    let immediate = immediate_inputs(graph, output);
    let mut hidden: Vec<usize> = Vec::new();

    // The paper's two criteria: the CSC conflict count and the state-signal
    // lower bound must not grow. Conflicts that become structurally
    // unresolvable inside the module (their non-input room was hidden) are
    // not counted — the module defers them to other outputs.
    let analyse = |hidden: &[usize]| -> Result<(usize, usize), SgError> {
        let q = graph.hide_signals_traced(hidden, tracer)?;
        let a = q.graph.csc_analysis();
        let resolvable = a.csc_pairs.len() - q.graph.unresolvable_csc_pairs(&a).len();
        Ok((resolvable, a.lower_bound))
    };

    let (mut n_csc, mut lower_bound) = analyse(&hidden)?;

    for s in 0..graph.signals().len() {
        if s == output || immediate.contains(&s) {
            continue;
        }
        let mut trial = hidden.clone();
        trial.push(s);
        let (csc_new, lb_new) = analyse(&trial)?;
        if csc_new <= n_csc && lb_new <= lower_bound {
            // The signal is not required for this output's logic.
            hidden = trial;
            n_csc = csc_new;
            lower_bound = lb_new;
            tracer.counter("input_set.kept_trials", 1);
        } else {
            tracer.counter("input_set.rejected_trials", 1);
        }
    }

    let kept = (0..graph.signals().len())
        .filter(|s| !hidden.contains(s))
        .collect();
    Ok(InputSet { kept, hidden })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::{benchmarks, parse_g};

    #[test]
    fn immediate_inputs_follow_state_graph_causality() {
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let b = sg.signal_index("b").unwrap();
        let a = sg.signal_index("a").unwrap();
        assert_eq!(immediate_inputs(&sg, b), BTreeSet::from([a]));
    }

    #[test]
    fn output_is_always_kept() {
        let sg = derive(&benchmarks::nouse(), &DeriveOptions::default()).unwrap();
        for output in 0..sg.signals().len() {
            if !sg.signals()[output].kind.is_non_input() {
                continue;
            }
            let set = determine_input_set(&sg, output).unwrap();
            assert!(set.kept.contains(&output));
        }
    }

    #[test]
    fn kept_and_hidden_partition_the_signals() {
        let sg = derive(&benchmarks::mmu1(), &DeriveOptions::default()).unwrap();
        let output = sg.signal_index("ack").unwrap();
        let set = determine_input_set(&sg, output).unwrap();
        let mut all: Vec<usize> = set.kept.iter().chain(&set.hidden).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..sg.signals().len()).collect::<Vec<_>>());
    }

    #[test]
    fn hiding_reduces_the_module_for_large_benchmarks() {
        // The whole point of the method: the module for one output is much
        // smaller than the complete graph.
        let sg = derive(&benchmarks::mmu0(), &DeriveOptions::default()).unwrap();
        let output = sg.signal_index("p1").unwrap();
        let set = determine_input_set(&sg, output).unwrap();
        assert!(!set.hidden.is_empty(), "expected some signal to be hidden");
        let q = sg.hide_signals(&set.hidden).unwrap();
        assert!(
            q.graph.state_count() < sg.state_count() / 2,
            "module has {} of {} states",
            q.graph.state_count(),
            sg.state_count()
        );
    }

    #[test]
    fn hiding_never_increases_conflicts() {
        let sg = derive(&benchmarks::pa(), &DeriveOptions::default()).unwrap();
        let baseline = sg.csc_analysis().csc_pairs.len();
        for output in 0..sg.signals().len() {
            if !sg.signals()[output].kind.is_non_input() {
                continue;
            }
            let set = determine_input_set(&sg, output).unwrap();
            let q = sg.hide_signals(&set.hidden).unwrap();
            assert!(
                q.graph.csc_analysis().csc_pairs.len() <= baseline,
                "output {output}"
            );
        }
    }
}
