//! End-to-end synthesis: STG in, logic functions and report out.

use std::time::Instant;

use modsyn_cnc::Engine;
use modsyn_fault::Faults;
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;
use modsyn_sat::SolverOptions;
use modsyn_sg::{derive_traced, DeriveOptions, StateGraph};
use modsyn_stg::Stg;
use modsyn_store::{Provenance, StoreLink};

use crate::direct::direct_resolve_traced;
use crate::lavagno::{lavagno_resolve, LavagnoOptions};
use crate::logic_fn::{
    derive_logic_jobs_traced, total_literals, verify_logic, MinimizeMode, SignalFunction,
};
use crate::modular::{modular_resolve_jobs_traced, ModuleReport};
use crate::solve::{CscSolveOptions, FormulaStat};
use crate::SynthesisError;

/// Which CSC-resolution method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's modular partitioning flow.
    Modular,
    /// The modular flow with BDD-based minimum-excitation assignment
    /// extraction (the area refinement of the paper's conclusion).
    ModularMinArea,
    /// Vanbekbergen et al.'s direct (no decomposition) SAT flow.
    Direct,
    /// The Lavagno/Moon-style state-table flow.
    Lavagno,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Modular => "modular",
            Method::ModularMinArea => "modular-min-area",
            Method::Direct => "direct",
            Method::Lavagno => "lavagno",
        })
    }
}

/// Configuration of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// The method to run.
    pub method: Method,
    /// SAT solver options (heuristic, backtrack limit). The backtrack
    /// limit is what makes the direct method abort on Table 1's large rows.
    pub solver: SolverOptions,
    /// Which SAT core decides the CSC formulas ([`Engine::Cdcl`] by
    /// default; `dpll` is the paper-faithful classic engine, `cnc` the
    /// cube-and-conquer decomposition for the hardest direct formulas).
    pub engine: Engine,
    /// State-graph derivation limits.
    pub derive: DeriveOptions,
    /// Extra state signals to try beyond the lower bound.
    pub extra_signals: usize,
    /// Two-level minimisation mode for the area numbers.
    pub minimize: MinimizeMode,
    /// Worker threads for the parallel stages (modular candidate
    /// derivation, per-signal logic minimisation). `1` (the default) runs
    /// everything inline; any value produces an identical
    /// [`SynthesisReport`] apart from `cpu_seconds`.
    pub jobs: usize,
    /// Cooperative cancellation for the whole run (the CLI's
    /// `--timeout-ms`). Surfaces as [`SynthesisError::Aborted`]. Inert by
    /// default.
    pub cancel: CancelToken,
    /// Fault-injection handle threaded into the SAT stage (the `sat.*`
    /// sites). Inert by default.
    pub faults: Faults,
    /// Race the standard SAT portfolio over each CSC formula instead of
    /// one tuned solver — the retry ladder's escape hatch from
    /// single-solver faults and pathological heuristic choices. See
    /// [`crate::CscSolveOptions::portfolio`].
    pub portfolio: bool,
    /// Optional synthesis-store session for the modular methods: cached
    /// module solves are replayed instead of re-run, and fresh solves are
    /// recorded with provenance. Inert by default and ignored by the
    /// non-modular comparators. See [`crate::CscSolveOptions::store`].
    pub store: StoreLink,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            method: Method::Modular,
            solver: SolverOptions::default(),
            engine: Engine::default(),
            derive: DeriveOptions::default(),
            extra_signals: 6,
            minimize: MinimizeMode::Heuristic,
            jobs: 1,
            cancel: CancelToken::never(),
            faults: Faults::none(),
            portfolio: false,
            store: StoreLink::none(),
        }
    }
}

impl SynthesisOptions {
    /// Convenience constructor for a method with default limits.
    pub fn for_method(method: Method) -> Self {
        SynthesisOptions {
            method,
            ..Default::default()
        }
    }
}

/// Everything a Table-1 row needs about one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Benchmark (STG model) name.
    pub benchmark: String,
    /// The method that produced this report.
    pub method: Method,
    /// States of the state graph derived from the input STG.
    pub initial_states: usize,
    /// Signals of the input STG.
    pub initial_signals: usize,
    /// States of the final expanded state graph.
    pub final_states: usize,
    /// Signals of the final graph (initial + inserted state signals).
    pub final_signals: usize,
    /// Total two-level literal count (the paper's area metric).
    pub literals: usize,
    /// Wall-clock seconds for resolution + logic derivation.
    pub cpu_seconds: f64,
    /// Statistics of every SAT formula attempted.
    pub formulas: Vec<FormulaStat>,
    /// Per-output module traces (modular method only).
    pub modules: Vec<ModuleReport>,
    /// The synthesised logic functions.
    pub functions: Vec<SignalFunction>,
    /// Names of the inserted state signals, in insertion order.
    pub inserted: Vec<String>,
    /// The final expanded, CSC-satisfying state graph the functions were
    /// derived from — returned so an *independent* checker (`modsyn-check`)
    /// can certify the result without re-running any pipeline stage.
    pub graph: StateGraph,
    /// Why each inserted state signal exists (modular methods only): the
    /// module that forced it, the conflict pairs it resolves, the winning
    /// formula's clause families. Feeds `GET /explain` and `--explain`.
    pub provenance: Vec<Provenance>,
    /// Module solves answered from the synthesis store (0 without one).
    pub store_hits: u64,
    /// Module solves run for real — the dirty count of an incremental run.
    pub store_misses: u64,
}

impl SynthesisReport {
    /// Number of state signals inserted.
    pub fn inserted_signals(&self) -> usize {
        self.final_signals - self.initial_signals
    }
}

/// Runs one method end-to-end on an STG: derive the state graph, resolve
/// CSC, expand, derive and minimise the logic.
///
/// # Errors
///
/// Propagates every [`SynthesisError`] of the stages; see [`Method`] for
/// the failures characteristic of each comparator.
pub fn synthesize(
    stg: &Stg,
    options: &SynthesisOptions,
) -> Result<SynthesisReport, SynthesisError> {
    synthesize_traced(stg, options, &Tracer::disabled())
}

/// [`synthesize`] with observability: the whole run is wrapped in a
/// `synthesize` span with the benchmark and method as notes, and every stage
/// (state-graph derivation, CSC resolution, logic derivation) nests its own
/// spans under it.
///
/// # Errors
///
/// As [`synthesize`].
pub fn synthesize_traced(
    stg: &Stg,
    options: &SynthesisOptions,
    tracer: &Tracer,
) -> Result<SynthesisReport, SynthesisError> {
    let start = Instant::now();
    let _span = tracer.span("synthesize");
    let _flight = tracer.flight_span("synthesize");
    tracer.note("benchmark", stg.name());
    tracer.note("method", &options.method.to_string());
    let initial = derive_traced(stg, &options.derive, tracer)?;
    struct Resolved {
        graph: StateGraph,
        inserted: Vec<String>,
        formulas: Vec<FormulaStat>,
        modules: Vec<ModuleReport>,
        provenance: Vec<Provenance>,
        store_hits: u64,
        store_misses: u64,
    }
    let resolved = match options.method {
        Method::Modular | Method::ModularMinArea => {
            let solve = CscSolveOptions {
                solver: options.solver,
                engine: options.engine,
                extra_signals: options.extra_signals,
                name_prefix: "csc",
                min_area: options.method == Method::ModularMinArea,
                cancel: options.cancel.clone(),
                faults: options.faults.clone(),
                portfolio: options.portfolio,
                store: options.store.clone(),
            };
            let out = modular_resolve_jobs_traced(&initial, &solve, options.jobs, tracer)?;
            Resolved {
                graph: out.graph,
                inserted: out.inserted,
                formulas: out.formulas,
                modules: out.modules,
                provenance: out.provenance,
                store_hits: out.store_hits,
                store_misses: out.store_misses,
            }
        }
        Method::Direct => {
            let solve = CscSolveOptions {
                solver: options.solver,
                engine: options.engine,
                extra_signals: options.extra_signals,
                name_prefix: "csc",
                min_area: false,
                cancel: options.cancel.clone(),
                faults: options.faults.clone(),
                portfolio: options.portfolio,
                store: StoreLink::none(),
            };
            let out = direct_resolve_traced(&initial, &solve, tracer)?;
            Resolved {
                graph: out.graph,
                inserted: out.inserted,
                formulas: out.formulas,
                modules: Vec::new(),
                provenance: Vec::new(),
                store_hits: 0,
                store_misses: 0,
            }
        }
        Method::Lavagno => {
            let out = lavagno_resolve(
                stg,
                &initial,
                &LavagnoOptions {
                    max_backtracks: options.solver.max_backtracks,
                    extra_signals: options.extra_signals.min(3),
                    cancel: options.cancel.clone(),
                },
            )?;
            Resolved {
                graph: out.graph,
                inserted: out.inserted,
                formulas: out.formulas,
                modules: Vec::new(),
                provenance: Vec::new(),
                store_hits: 0,
                store_misses: 0,
            }
        }
    };
    let Resolved {
        graph,
        inserted,
        formulas,
        modules,
        provenance,
        store_hits,
        store_misses,
    } = resolved;

    let functions = derive_logic_jobs_traced(&graph, options.minimize, options.jobs, tracer)?;
    debug_assert!(verify_logic(&graph, &functions));
    Ok(SynthesisReport {
        benchmark: stg.name().to_string(),
        method: options.method,
        initial_states: initial.state_count(),
        initial_signals: initial.signals().len(),
        final_states: graph.state_count(),
        final_signals: graph.signals().len(),
        literals: total_literals(&functions),
        cpu_seconds: start.elapsed().as_secs_f64(),
        formulas,
        modules,
        functions,
        inserted,
        graph,
        provenance,
        store_hits,
        store_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_stg::benchmarks;

    #[test]
    fn modular_end_to_end_on_vbe_ex1() {
        let stg = benchmarks::vbe_ex1();
        let report = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        assert_eq!(report.benchmark, "vbe-ex1");
        assert_eq!(report.initial_signals, 2);
        assert_eq!(report.final_signals, 3);
        assert!(report.final_states > report.initial_states);
        assert!(report.literals > 0);
        assert_eq!(report.inserted_signals(), 1);
    }

    #[test]
    fn methods_agree_on_resolvability() {
        let stg = benchmarks::vbe_ex2();
        for method in [Method::Modular, Method::Direct, Method::Lavagno] {
            let report = synthesize(&stg, &SynthesisOptions::for_method(method))
                .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(report.literals > 0, "{method}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Method::Modular.to_string(), "modular");
        assert_eq!(Method::Direct.to_string(), "direct");
        assert_eq!(Method::Lavagno.to_string(), "lavagno");
    }
}
