//! Incompletely-specified FSM state minimisation — minimal closed covers.
//!
//! The paper's reference [17] (Puri & Gu, *An Efficient Algorithm to Search
//! for Minimal Closed Covers in Sequential Machines*, IEEE TCAD 1993) is
//! the state-minimisation engine behind the Lavagno-style flow ("state
//! minimization [17] and critical race-free state assignment"). This module
//! implements the classical pipeline on the state graphs appearing in this
//! crate:
//!
//! 1. **Compatibility**: two states are compatible when no input word
//!    distinguishes their (partial) outputs — computed here as the greatest
//!    fixpoint over the pair graph.
//! 2. **Maximal compatibles** by recursive expansion.
//! 3. **Minimal closed cover**: a minimum set of compatibles that covers
//!    all states and is closed under the implied-pair relation, found by
//!    branch and bound.
//!
//! For the synthesis flow the interesting instance is the *quotient-like*
//! reduction of a state graph: states with equal codes and equal non-input
//! excitation (USC-equivalent states) are behaviourally compatible and can
//! merge, shrinking the flow table the Lavagno comparator works on.

use std::collections::HashSet;

use modsyn_sg::{EdgeLabel, StateGraph};

/// One compatible: a set of original states merged into one reduced state.
pub type Compatible = Vec<usize>;

/// Result of [`minimise_states`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedCover {
    /// The chosen compatibles (each sorted ascending), covering all states.
    pub cover: Vec<Compatible>,
    /// Number of states of the original machine.
    pub original_states: usize,
}

impl ClosedCover {
    /// Number of reduced states.
    pub fn reduced_states(&self) -> usize {
        self.cover.len()
    }
}

/// Pairwise compatibility of state-graph states as sequential-machine
/// states: outputs = the implied values of the non-input signals; inputs =
/// the signal edges. Two states are compatible iff they agree on every
/// non-input implied value (where both are defined — here always) and every
/// common transition leads to a compatible pair (greatest fixpoint).
pub fn compatible_pairs(graph: &StateGraph) -> Vec<Vec<bool>> {
    let n = graph.state_count();
    let non_inputs: Vec<usize> = (0..graph.signals().len())
        .filter(|&s| graph.signals()[s].kind.is_non_input())
        .collect();

    let mut compatible = vec![vec![true; n]; n];
    // Base: output disagreement.
    #[allow(clippy::needless_range_loop)] // symmetric pair table: indexes [a][b] and [b][a]
    for a in 0..n {
        for b in a + 1..n {
            let clash = non_inputs
                .iter()
                .any(|&s| graph.implied_value(a, s) != graph.implied_value(b, s));
            if clash {
                compatible[a][b] = false;
                compatible[b][a] = false;
            }
        }
    }
    // Fixpoint: propagate incompatibility backwards over common labels.
    let succ = |s: usize| -> Vec<(EdgeLabel, usize)> {
        graph.out_edges(s).map(|e| (e.label, e.to)).collect()
    };
    let succs: Vec<Vec<(EdgeLabel, usize)>> = (0..n).map(succ).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..n {
            for b in a + 1..n {
                if !compatible[a][b] {
                    continue;
                }
                let bad = succs[a].iter().any(|&(la, ta)| {
                    succs[b]
                        .iter()
                        .any(|&(lb, tb)| la == lb && !compatible[ta.min(tb)][ta.max(tb)])
                });
                if bad {
                    compatible[a][b] = false;
                    compatible[b][a] = false;
                    changed = true;
                }
            }
        }
    }
    compatible
}

/// All maximal compatibles (maximal cliques of the compatibility relation),
/// via Bron–Kerbosch with pivoting.
pub fn maximal_compatibles(compatible: &[Vec<bool>]) -> Vec<Compatible> {
    let n = compatible.len();
    // Bron–Kerbosch expects an irreflexive adjacency relation.
    let mut adj = compatible.to_vec();
    for (v, row) in adj.iter_mut().enumerate() {
        row[v] = false;
    }
    let mut result: Vec<Compatible> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x: Vec<usize> = Vec::new();
    bron_kerbosch(&adj, &mut r, p, x, &mut result);
    for c in &mut result {
        c.sort_unstable();
    }
    result.sort();
    result
}

fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Compatible>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // Pivot: vertex with most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| adj[u][v]).count())
        .expect("P ∪ X nonempty");
    let candidates: Vec<usize> = p.iter().copied().filter(|&v| !adj[pivot][v]).collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        let np: Vec<usize> = p.iter().copied().filter(|&u| adj[v][u]).collect();
        let nx: Vec<usize> = x.iter().copied().filter(|&u| adj[v][u]).collect();
        r.push(v);
        bron_kerbosch(adj, r, np, nx, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// The implied pairs of a compatible: merging the states of `c` forces, for
/// each common edge label, the set of successors to be merged too.
fn implied_sets(graph: &StateGraph, c: &[usize]) -> Vec<Vec<usize>> {
    let mut by_label: std::collections::HashMap<EdgeLabel, HashSet<usize>> =
        std::collections::HashMap::new();
    for &s in c {
        for e in graph.out_edges(s) {
            by_label.entry(e.label).or_default().insert(e.to);
        }
    }
    by_label
        .into_values()
        .filter(|set| set.len() > 1)
        .map(|set| {
            let mut v: Vec<usize> = set.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Finds a minimal closed cover of the graph's states by compatibles,
/// branch and bound over the maximal compatibles (reference \[17\]'s
/// problem). `max_nodes` bounds the search; on exhaustion the best cover
/// found so far is returned (still a valid closed cover).
pub fn minimise_states(graph: &StateGraph, max_nodes: usize) -> ClosedCover {
    let n = graph.state_count();
    let compatible = compatible_pairs(graph);
    let maximals = maximal_compatibles(&compatible);

    // Quick exit: everything pairwise incompatible.
    if maximals.iter().all(|c| c.len() == 1) {
        return ClosedCover {
            cover: (0..n).map(|s| vec![s]).collect(),
            original_states: n,
        };
    }

    // Greedy initial solution: repeatedly take the maximal compatible
    // covering the most uncovered states, then close under implication.
    let mut greedy: Vec<Compatible> = Vec::new();
    let mut covered: HashSet<usize> = HashSet::new();
    while covered.len() < n {
        let best = maximals
            .iter()
            .max_by_key(|c| c.iter().filter(|s| !covered.contains(s)).count())
            .expect("maximals cover all states");
        greedy.push(best.clone());
        covered.extend(best.iter().copied());
    }
    close_cover(graph, &maximals, &mut greedy);

    // Branch and bound for a smaller closed cover.
    let mut best = greedy.clone();
    let mut nodes = 0usize;
    let mut partial: Vec<Compatible> = Vec::new();
    search_cover(
        graph,
        &maximals,
        n,
        &mut partial,
        &mut best,
        &mut nodes,
        max_nodes,
    );

    best.sort();
    best.dedup();
    ClosedCover {
        cover: best,
        original_states: n,
    }
}

/// Ensures the cover is closed: every implied set of a member is contained
/// in some member, adding maximal compatibles as needed.
fn close_cover(graph: &StateGraph, maximals: &[Compatible], cover: &mut Vec<Compatible>) {
    loop {
        let mut missing: Option<Vec<usize>> = None;
        'outer: for c in cover.iter() {
            for implied in implied_sets(graph, c) {
                let contained = cover.iter().any(|m| implied.iter().all(|s| m.contains(s)));
                if !contained {
                    missing = Some(implied);
                    break 'outer;
                }
            }
        }
        match missing {
            None => return,
            Some(set) => {
                let host = maximals
                    .iter()
                    .find(|m| set.iter().all(|s| m.contains(s)))
                    .cloned()
                    .unwrap_or(set);
                cover.push(host);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search_cover(
    graph: &StateGraph,
    maximals: &[Compatible],
    n: usize,
    partial: &mut Vec<Compatible>,
    best: &mut Vec<Compatible>,
    nodes: &mut usize,
    max_nodes: usize,
) {
    *nodes += 1;
    if *nodes > max_nodes || partial.len() + 1 >= best.len() {
        return;
    }
    let covered: HashSet<usize> = partial.iter().flatten().copied().collect();
    let Some(uncovered) = (0..n).find(|s| !covered.contains(s)) else {
        // Complete cover: close it and compare.
        let mut candidate = partial.clone();
        close_cover(graph, maximals, &mut candidate);
        if candidate.len() < best.len() {
            *best = candidate;
        }
        return;
    };
    for m in maximals.iter().filter(|m| m.contains(&uncovered)) {
        partial.push(m.clone());
        search_cover(graph, maximals, n, partial, best, nodes, max_nodes);
        partial.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::{benchmarks, parse_g};

    #[test]
    fn combinational_behaviour_collapses_to_two_rows() {
        // The plain handshake is the combinational wire b = a; with
        // unspecified input columns as don't-cares the flow table reduces
        // to the two rows {b implied 0} and {b implied 1}.
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let cover = minimise_states(&sg, 10_000);
        assert_eq!(cover.reduced_states(), 2);
    }

    #[test]
    fn repeated_wire_cycles_merge() {
        // z follows a through two pulses per cycle: behaviourally the same
        // wire, so the 8-state graph reduces to 2 rows.
        let stg = parse_g(
            ".model u\n.inputs a\n.outputs z\n.graph\na+ z+\nz+ a-\na- z-\nz- a+/2\na+/2 z+/2\nz+/2 a-/2\na-/2 z-/2\nz-/2 a+\n.marking { <z-/2,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        assert_eq!(sg.state_count(), 8);
        let cover = minimise_states(&sg, 10_000);
        assert_eq!(cover.reduced_states(), 2, "{:?}", cover.cover);
    }

    #[test]
    fn reduction_respects_the_output_class_lower_bound() {
        // States with different implied-output vectors can never merge, so
        // the distinct implied vectors bound the reduced size from below.
        for name in ["vbe-ex1", "nouse", "sendr-done"] {
            let sg = derive(
                &benchmarks::by_name(name).unwrap(),
                &DeriveOptions::default(),
            )
            .unwrap();
            let non_inputs: Vec<usize> = (0..sg.signals().len())
                .filter(|&s| sg.signals()[s].kind.is_non_input())
                .collect();
            let mut vectors: Vec<Vec<bool>> = (0..sg.state_count())
                .map(|s| non_inputs.iter().map(|&k| sg.implied_value(s, k)).collect())
                .collect();
            vectors.sort();
            vectors.dedup();
            let cover = minimise_states(&sg, 10_000);
            assert!(
                cover.reduced_states() >= vectors.len(),
                "{name}: {} rows < {} output classes",
                cover.reduced_states(),
                vectors.len()
            );
            assert!(cover.reduced_states() <= sg.state_count(), "{name}");
        }
    }

    #[test]
    fn cover_is_total_and_closed() {
        for name in ["vbe-ex1", "nouse", "sendr-done"] {
            let stg = benchmarks::by_name(name).unwrap();
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let cover = minimise_states(&sg, 10_000);
            // Total.
            let covered: HashSet<usize> = cover.cover.iter().flatten().copied().collect();
            assert_eq!(covered.len(), sg.state_count(), "{name}");
            // Closed.
            for c in &cover.cover {
                for implied in implied_sets(&sg, c) {
                    assert!(
                        cover
                            .cover
                            .iter()
                            .any(|m| implied.iter().all(|s| m.contains(s))),
                        "{name}: implied set {implied:?} uncovered"
                    );
                }
            }
            // Compatibility inside each member.
            let pairs = compatible_pairs(&sg);
            for c in &cover.cover {
                for (i, &a) in c.iter().enumerate() {
                    for &b in &c[i + 1..] {
                        assert!(pairs[a][b], "{name}: {a},{b} merged but incompatible");
                    }
                }
            }
        }
    }

    #[test]
    fn maximal_compatibles_are_maximal_cliques() {
        // A 4-vertex path graph: maximal cliques are the 3 edges... as
        // compatibility: 0-1, 1-2, 2-3.
        let mut adj = vec![vec![false; 4]; 4];
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            adj[a][b] = true;
            adj[b][a] = true;
        }
        let cliques = maximal_compatibles(&adj);
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }
}
