//! `modsyn` — command-line front end for the synthesis library.
//!
//! ```text
//! modsyn <file.g | benchmark:NAME> [--method modular|modular-min-area|direct|lavagno]
//!        [--engine dpll|cdcl|cnc] [--cube-depth N] [--cube-cutoff N]
//!        [--limit N] [--jobs N] [--timeout-ms T] [--pla] [--dot] [--verilog]
//!        [--exact] [--hazards] [--check] [--quiet] [--explain SIGNAL]
//! ```
//!
//! `--engine` selects the SAT core deciding the CSC formulas: `cdcl`
//! (default) is the modern conflict-driven core, `dpll` the classic
//! paper-faithful engine, `cnc` lookahead cube-and-conquer over the CDCL
//! core (shaped by `--cube-depth`/`--cube-cutoff`; cubes are conquered on
//! the `--jobs` worker pool). With `cnc`, `--limit` is a *per-cube*
//! conflict budget — cubes partition the search space.
//!
//! Reads an STG (a `.g` file, `-` for stdin, or `benchmark:<name>` for one
//! of the built-in Table-1 stand-ins), resolves CSC with the chosen method
//! and prints the synthesised logic. `--pla` additionally prints each
//! function as a single-output PLA; `--dot` prints the final state graph in
//! Graphviz format; `--verilog` emits a structural netlist; `--exact` uses
//! exact two-level minimisation; `--hazards` runs the static-hazard
//! post-process plus a closed-loop conformance check; `--check` certifies
//! the result against the independent `modsyn-check` oracle (consistency,
//! CSC, speed independence, observable equivalence to the specification)
//! and exits non-zero on any violation.
//!
//! Observability: `--stats` prints a per-phase span tree (timings, SAT
//! counters, per-module formula sizes) to **stderr**; `--trace-json FILE`
//! writes the same trace as JSON. Neither touches stdout, so piping `--pla`
//! or `--verilog` output stays clean. `--explain SIGNAL` (repeatable,
//! modular methods only) prints the provenance chain of an inserted state
//! signal to stderr — the module that forced it, the CSC conflict pairs it
//! resolves, and the winning formula's clause families — and composes with
//! `--stats`/`--trace-json` without touching stdout.
//!
//! Supervision: `--retry` wraps the run in the deterministic escalation
//! ladder — on a backtrack-limit or timeout abort, the limit doubles (up
//! to a cap), then the SAT portfolio races, then the modular flow falls
//! back to lavagno. Exit code 4 always prints the attempt trace (method,
//! backtrack limit, elapsed per rung) on stderr, so aborted runs are
//! diagnosable without `--trace-json`.
//!
//! Parallelism: `--jobs N` (default: the machine's available parallelism)
//! fans the modular candidate derivation and the per-signal logic
//! minimisation over N threads; the output is identical for every N.
//! `--timeout-ms T` aborts the run cooperatively after T milliseconds with
//! a clean message on stderr and a non-zero exit (stdout stays empty).
//!
//! Exit codes (also printed by `--help`): `0` success; `1` usage error;
//! `2` input error (unreadable file, unknown benchmark, `.g` parse
//! failure); `3` synthesis failure (no solution, backtrack limit,
//! unsupported STG class); `4` aborted by `--timeout-ms` or cancellation;
//! `5` the `--check` oracle rejected the result. `--version` prints the
//! crate version and exits 0.

use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

use modsyn::{
    closed_loop_check, hazard_report, remove_static_hazards, synthesize_traced,
    synthesize_with_retry_traced, Attempt, Circuit, Engine, Method, MinimizeMode, RetryPolicy,
    SynthesisError, SynthesisOptions,
};
use modsyn_obs::Tracer;
use modsyn_par::{available_jobs, CancelToken};
use modsyn_sat::SolverOptions;

struct Args {
    source: String,
    method: Method,
    engine: Engine,
    cube_depth: Option<u32>,
    cube_cutoff: Option<u32>,
    limit: Option<u64>,
    jobs: usize,
    timeout_ms: Option<u64>,
    pla: bool,
    dot: bool,
    verilog: bool,
    exact: bool,
    hazards: bool,
    check: bool,
    quiet: bool,
    stats: bool,
    trace_json: Option<String>,
    retry: bool,
    explain: Vec<String>,
}

/// Exit codes, kept distinct so scripts can tell failure classes apart.
/// Documented in `--help` and the README.
mod exit {
    /// Bad command line.
    pub const USAGE: u8 = 1;
    /// Unreadable input, unknown benchmark, or `.g` parse failure.
    pub const INPUT: u8 = 2;
    /// Synthesis failed (no solution, backtrack limit, unsupported STG).
    pub const SYNTH: u8 = 3;
    /// Aborted by `--timeout-ms` or cancellation.
    pub const ABORTED: u8 = 4;
    /// The `--check` oracle rejected the synthesised result.
    pub const CHECK: u8 = 5;
}

fn usage() -> &'static str {
    "usage: modsyn <file.g | - | benchmark:NAME> [--method modular|modular-min-area|direct|lavagno] \
     [--engine dpll|cdcl|cnc] [--cube-depth N] [--cube-cutoff N] \
     [--limit N] [--jobs N] [--timeout-ms T] [--retry] [--pla] [--dot] [--verilog] [--exact] \
     [--hazards] [--check] [--quiet] [--stats] [--trace-json FILE] [--explain SIGNAL] [--version]\n\
     \n\
     --engine picks the SAT core: cdcl (default), dpll (classic, paper-faithful), or \
     cnc (lookahead cube-and-conquer on the worker pool; --cube-depth/--cube-cutoff \
     shape the cubes and --limit becomes a per-cube conflict budget).\n\
     \n\
     --explain SIGNAL (repeatable; modular methods) prints why the inserted state \
     signal exists: the module that forced it, the CSC conflict pairs it resolves, \
     the winning formula's clause families. Stderr only.\n\
     \n\
     --retry climbs the supervised escalation ladder on capacity failures: \
     double the backtrack limit, race the SAT portfolio, fall back to lavagno.\n\
     \n\
     exit codes: 0 success; 1 usage error; 2 input error (file/parse); \
     3 synthesis failure; 4 aborted (--timeout-ms / cancellation / ladder exhausted); \
     5 --check oracle rejection"
}

/// What the command line asked for: a run, or an informational exit.
enum Parsed {
    Run(Box<Args>),
    Help,
    Version,
}

fn parse_args() -> Result<Parsed, String> {
    let mut args = Args {
        source: String::new(),
        method: Method::Modular,
        engine: Engine::default(),
        cube_depth: None,
        cube_cutoff: None,
        limit: None,
        jobs: available_jobs(),
        timeout_ms: None,
        pla: false,
        dot: false,
        verilog: false,
        exact: false,
        hazards: false,
        check: false,
        quiet: false,
        stats: false,
        trace_json: None,
        retry: false,
        explain: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--method" => {
                let v = it.next().ok_or("--method needs a value")?;
                args.method = match v.as_str() {
                    "modular" => Method::Modular,
                    "modular-min-area" => Method::ModularMinArea,
                    "direct" => Method::Direct,
                    "lavagno" => Method::Lavagno,
                    other => return Err(format!("unknown method {other:?}")),
                };
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                args.engine = Engine::parse(&v)?;
            }
            "--cube-depth" => {
                let v = it.next().ok_or("--cube-depth needs a value")?;
                args.cube_depth = Some(v.parse().map_err(|_| "bad --cube-depth value")?);
            }
            "--cube-cutoff" => {
                let v = it.next().ok_or("--cube-cutoff needs a value")?;
                args.cube_cutoff = Some(v.parse().map_err(|_| "bad --cube-cutoff value")?);
            }
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                args.limit = Some(v.parse().map_err(|_| "bad --limit value")?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| "bad --jobs value")?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                args.timeout_ms = Some(v.parse().map_err(|_| "bad --timeout-ms value")?);
            }
            "--pla" => args.pla = true,
            "--dot" => args.dot = true,
            "--verilog" => args.verilog = true,
            "--exact" => args.exact = true,
            "--hazards" => args.hazards = true,
            "--check" => args.check = true,
            "--quiet" => args.quiet = true,
            "--stats" => args.stats = true,
            "--retry" => args.retry = true,
            "--trace-json" => {
                args.trace_json = Some(it.next().ok_or("--trace-json needs a file")?);
            }
            "--explain" => {
                args.explain
                    .push(it.next().ok_or("--explain needs a signal name")?);
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            "--version" | "-V" => return Ok(Parsed::Version),
            other if args.source.is_empty() => args.source = other.to_string(),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.source.is_empty() {
        return Err(usage().to_string());
    }
    if !args.explain.is_empty() && !matches!(args.method, Method::Modular | Method::ModularMinArea)
    {
        return Err("--explain needs a modular method (provenance is per-module)".to_string());
    }
    if let Engine::Cnc { depth, cutoff, .. } = &mut args.engine {
        if let Some(d) = args.cube_depth {
            *depth = d;
        }
        if let Some(c) = args.cube_cutoff {
            *cutoff = c;
        }
    } else if args.cube_depth.is_some() || args.cube_cutoff.is_some() {
        return Err("--cube-depth/--cube-cutoff require --engine cnc".to_string());
    }
    Ok(Parsed::Run(Box::new(args)))
}

fn load_stg(source: &str, tracer: &Tracer) -> Result<modsyn_stg::Stg, String> {
    if let Some(name) = source.strip_prefix("benchmark:") {
        return modsyn_stg::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name:?}"));
    }
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?
    };
    modsyn_stg::parse_g_traced(&text, tracer).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Run(a)) => a,
        Ok(Parsed::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Ok(Parsed::Version) => {
            println!("modsyn {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(exit::USAGE);
        }
    };
    let tracer = if args.stats || args.trace_json.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let stg = match load_stg(&args.source, &tracer) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(exit::INPUT);
        }
    };

    let mut options = SynthesisOptions::for_method(args.method);
    options.engine = args.engine;
    if let Engine::Cnc { jobs, .. } = &mut options.engine {
        // The conquer pool follows the synthesis-wide --jobs knob.
        *jobs = args.jobs as u32;
    }
    options.jobs = args.jobs;
    if let Some(ms) = args.timeout_ms {
        options.cancel = CancelToken::with_deadline(Duration::from_millis(ms));
    }
    if args.exact {
        options.minimize = MinimizeMode::Exact;
    }
    if let Some(limit) = args.limit {
        options.solver = SolverOptions {
            max_backtracks: Some(limit),
            ..SolverOptions::default()
        };
    }
    let result = if args.retry {
        synthesize_with_retry_traced(&stg, &options, &RetryPolicy::default(), &tracer).map(|out| {
            if !out.attempts.is_empty() && !args.quiet {
                eprintln!(
                    "retry: succeeded after {} failed attempt(s):",
                    out.attempts.len()
                );
                eprint_attempts(&out.attempts);
            }
            out.report
        })
    } else {
        synthesize_traced(&stg, &options, &tracer)
    };
    let report = match result {
        Ok(r) => r,
        Err(e @ SynthesisError::Aborted { .. }) => {
            eprintln!("synthesis aborted: {e}");
            // Exit code 4 always carries a diagnosable attempt trace, even
            // for single-attempt runs without --trace-json.
            if let SynthesisError::Aborted { elapsed } = &e {
                eprint_attempts(&[Attempt {
                    method: options.method,
                    backtrack_limit: options.solver.max_backtracks,
                    portfolio: options.portfolio,
                    elapsed: *elapsed,
                    error: e.clone(),
                }]);
            }
            let _ = emit_observability(&args, &tracer);
            return ExitCode::from(exit::ABORTED);
        }
        Err(SynthesisError::Exhausted { attempts }) => {
            eprintln!(
                "synthesis aborted: retry ladder exhausted after {} attempt(s)",
                attempts.len()
            );
            eprint_attempts(&attempts);
            let _ = emit_observability(&args, &tracer);
            return ExitCode::from(exit::ABORTED);
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            let _ = emit_observability(&args, &tracer);
            return ExitCode::from(exit::SYNTH);
        }
    };

    if !args.quiet {
        println!(
            "# {}: {} -> {} signals, {} -> {} states, {} literals, {:.3}s ({})",
            report.benchmark,
            report.initial_signals,
            report.final_signals,
            report.initial_states,
            report.final_states,
            report.literals,
            report.cpu_seconds,
            report.method,
        );
    }

    for signal in &args.explain {
        if !eprint_explanation(&report, signal) {
            let _ = emit_observability(&args, &tracer);
            return ExitCode::from(exit::INPUT);
        }
    }

    // The report carries the solved graph; no re-derivation needed.
    let graph = &report.graph;

    if args.check {
        let spec = modsyn_sg::derive(&stg, &options.derive).expect("already derived once");
        let netlist = modsyn::gate_netlist(graph, &report.functions);
        match modsyn_check::verify_solution(Some(&spec), graph, &netlist) {
            Ok(()) => {
                if !args.quiet {
                    println!(
                        "# check: ok (consistency, CSC, speed independence, equivalence over {} states)",
                        graph.state_count()
                    );
                }
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                return ExitCode::from(exit::CHECK);
            }
        }
    }

    let mut functions = report.functions.clone();
    if args.hazards {
        let before = hazard_report(graph, &functions);
        functions = remove_static_hazards(graph, &functions);
        let after = hazard_report(graph, &functions);
        if !args.quiet {
            println!(
                "# hazards: {} static-1 hazards removed, {} remain; area now {} literals",
                before.total_hazards(),
                after.total_hazards(),
                functions.iter().map(|f| f.literals).sum::<usize>(),
            );
            let circuit = Circuit::new(graph, &functions).expect("functions cover outputs");
            let sim = closed_loop_check(graph, &circuit);
            println!(
                "# closed-loop check: {} states, {} transitions, conforming: {}",
                sim.states_visited,
                sim.transitions,
                sim.is_conforming()
            );
        }
    }

    for f in &functions {
        println!("{} = {}", f.name, f.sop);
        if args.pla {
            print!("{}", modsyn_logic::write_pla(f.sop.cover()));
        }
    }
    if args.dot {
        println!("{}", modsyn_sg::to_dot(graph));
    }
    if args.verilog {
        println!(
            "{}",
            modsyn::to_verilog(&report.benchmark, graph, &functions)
        );
    }
    emit_observability(&args, &tracer)
}

/// Prints one inserted signal's provenance chain to stderr. Returns false
/// (after naming the signals that *do* have provenance) when the signal is
/// unknown, so the caller can exit with an input error.
fn eprint_explanation(report: &modsyn::SynthesisReport, signal: &str) -> bool {
    let chain: Vec<_> = report
        .provenance
        .iter()
        .filter(|p| p.signal == signal)
        .collect();
    if chain.is_empty() {
        let known = report.inserted.join(", ");
        eprintln!("error: no provenance for signal {signal:?}; inserted signals: [{known}]");
        return false;
    }
    eprintln!(
        "explain {signal} ({}, {}):",
        report.benchmark, report.method
    );
    for p in chain {
        let pairs = p
            .resolved_pairs
            .iter()
            .map(|&(i, j)| format!("({i},{j})"))
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!(
            "  forced by module {:?} (key {:016x}), resolving {} CSC conflict pair(s): {pairs}",
            p.module_output,
            p.module_key,
            p.resolved_pairs.len(),
        );
        eprintln!(
            "  winning formula: {} state signal(s), {} variables, {} clauses",
            p.state_signals, p.variables, p.clauses,
        );
        eprintln!(
            "  clause families: consistency {}, persistence {}, usc {}, resolution {}",
            p.families.consistency, p.families.persistence, p.families.usc, p.families.resolution,
        );
    }
    true
}

/// Prints the retry-ladder attempt trace (method, backtrack limit,
/// elapsed, failure) to stderr, one indented line per attempt.
fn eprint_attempts(attempts: &[Attempt]) {
    for (i, attempt) in attempts.iter().enumerate() {
        eprintln!("  attempt {}: {attempt}", i + 1);
    }
}

/// Renders the trace after the run: `--stats` to stderr (stdout carries the
/// synthesised logic and must stay machine-consumable), `--trace-json` to
/// the named file. Returns `FAILURE` if the trace file cannot be written.
#[must_use]
fn emit_observability(args: &Args, tracer: &Tracer) -> ExitCode {
    if !tracer.is_enabled() {
        return ExitCode::SUCCESS;
    }
    let report = tracer.report();
    if args.stats {
        eprint!("{}", report.render());
    }
    if let Some(path) = &args.trace_json {
        if let Err(e) = std::fs::write(path, report.to_json().pretty()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
