//! Bridge from synthesis results to the independent oracle in
//! [`modsyn_check`].
//!
//! The oracle deliberately has no dependency on this crate or on
//! `modsyn-logic`; this module does the one-way translation (covers →
//! literal lists) so drivers — the CLI's `--check` flag, the `differ`
//! binary, integration tests — can hand a finished [`SynthesisReport`] to
//! the checkers. Nothing in the synthesis pipeline itself calls the
//! oracle.

use modsyn_check::{verify_solution, CheckError, GateNetlist, SopFn};
use modsyn_sg::StateGraph;

use crate::logic_fn::SignalFunction;
use crate::synth::SynthesisReport;

/// Converts synthesised SOP functions into the oracle's netlist form,
/// mapping each function's variable universe onto `graph`'s signal order
/// by name.
///
/// Functions naming signals absent from `graph` are skipped (the checker
/// reports any non-input signal left undriven).
pub fn gate_netlist(graph: &StateGraph, functions: &[SignalFunction]) -> GateNetlist {
    let mut netlist = GateNetlist::new(graph.signals().len());
    for f in functions {
        let Some(slot) = graph.signal_index(&f.name) else {
            continue;
        };
        let names = f.sop.names();
        let var_map: Vec<Option<usize>> = names.iter().map(|n| graph.signal_index(n)).collect();
        let cubes = f
            .sop
            .cover()
            .cubes()
            .iter()
            .map(|cube| {
                (0..names.len())
                    .filter_map(|v| cube.literal(v).and_then(|pol| var_map[v].map(|g| (g, pol))))
                    .collect()
            })
            .collect();
        netlist.set(
            slot,
            SopFn {
                name: f.name.clone(),
                cubes,
            },
        );
    }
    netlist
}

/// Certifies a finished synthesis run against the independent oracle: the
/// solved graph must be consistent and CSC-clean, the gates must be
/// speed-independent against it, and — given the unsolved specification
/// graph — the result must be observation-equivalent to the
/// specification.
///
/// # Errors
///
/// The first failing judgement's [`CheckError`].
pub fn certify_report(
    specification: Option<&StateGraph>,
    report: &SynthesisReport,
) -> Result<(), CheckError> {
    let netlist = gate_netlist(&report.graph, &report.functions);
    verify_solution(specification, &report.graph, &netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, Method, SynthesisOptions};
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    #[test]
    fn modular_results_pass_the_oracle() {
        for name in ["vbe-ex1", "nouse", "fifo"] {
            let stg = benchmarks::by_name(name).unwrap();
            let spec = derive(&stg, &DeriveOptions::default()).unwrap();
            let report = synthesize(&stg, &SynthesisOptions::default()).unwrap();
            certify_report(Some(&spec), &report).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn all_methods_pass_on_a_small_benchmark() {
        let stg = benchmarks::vbe_ex2();
        let spec = derive(&stg, &DeriveOptions::default()).unwrap();
        for method in [Method::Modular, Method::Direct, Method::Lavagno] {
            let report = synthesize(&stg, &SynthesisOptions::for_method(method)).unwrap();
            certify_report(Some(&spec), &report).unwrap_or_else(|e| panic!("{method}: {e}"));
        }
    }

    #[test]
    fn a_corrupted_code_is_caught() {
        // Mutation check: flipping one state code in the solved graph must
        // trip the oracle (consistency, USC/CSC, or conformance).
        let stg = benchmarks::vbe_ex1();
        let report = synthesize(&stg, &SynthesisOptions::default()).unwrap();
        let mut bad = StateGraph::new(report.graph.signals().to_vec()).unwrap();
        for s in 0..report.graph.state_count() {
            let code = report.graph.code(s);
            bad.add_state(if s == 1 { code ^ 1 } else { code });
        }
        for e in report.graph.edges() {
            bad.add_edge(e.from, e.to, e.label);
        }
        bad.set_initial(report.graph.initial());
        let netlist = gate_netlist(&report.graph, &report.functions);
        assert!(verify_solution(None, &bad, &netlist).is_err());
    }
}
