//! The supervised retry/escalation ladder.
//!
//! The paper's headline failure is capacity, not correctness: the direct
//! method aborts on `mr1` at the SAT backtrack limit. Kondratiev et al.
//! (PAPERS.md) re-attack hard CircuitSAT instances under escalated
//! budgets; this module does the same for the whole synthesis run. On a
//! *retryable* failure — [`SynthesisError::BacktrackLimit`], or
//! [`SynthesisError::Aborted`] when the overall token has not fired — the
//! ladder escalates deterministically:
//!
//! 1. double the backtrack limit, up to [`RetryPolicy::backtrack_cap`];
//! 2. switch to the racing SAT portfolio (verdict-deterministic, and
//!    immune to single-solver fault plans by design);
//! 3. fall back modular → lavagno (a different algorithm entirely).
//!
//! The schedule is a pure function of the base options and the policy
//! ([`escalation_ladder`]) — given the same inputs, every run climbs the
//! same rungs in the same order, so a failure trace from CI reproduces
//! locally. Non-retryable errors (`NoSolution`, `NotFreeChoice`, …) are
//! returned unchanged on first occurrence: retrying a proof of
//! unsatisfiability is wasted work.

use std::time::{Duration, Instant};

use modsyn_obs::Tracer;
use modsyn_stg::Stg;

use crate::synth::{synthesize_traced, Method, SynthesisOptions, SynthesisReport};
use crate::SynthesisError;

/// How far the ladder escalates before giving up with
/// [`SynthesisError::Exhausted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backtrack-limit doubling stops once the limit reaches this cap.
    pub backtrack_cap: u64,
    /// Per-attempt deadline, enforced through a child [`CancelToken`]
    /// of the base options' token — an attempt that stalls is cut off
    /// without killing the whole ladder.
    ///
    /// [`CancelToken`]: modsyn_par::CancelToken
    pub attempt_timeout: Option<Duration>,
    /// Allow the final modular → lavagno rung (a different algorithm,
    /// different literal counts — only sound when the caller accepts any
    /// method's result).
    pub fallback: bool,
    /// Hard cap on total attempts, truncating the ladder from the top.
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backtrack_cap: 1_000_000,
            attempt_timeout: None,
            fallback: true,
            max_attempts: 8,
        }
    }
}

/// One failed rung of the ladder, as carried by
/// [`SynthesisError::Exhausted`] and printed by the CLI on exit code 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// The method this rung ran.
    pub method: Method,
    /// The backtrack limit in force.
    pub backtrack_limit: Option<u64>,
    /// Whether the rung raced the SAT portfolio.
    pub portfolio: bool,
    /// Wall-clock seconds the rung spent before failing.
    pub elapsed: f64,
    /// How the rung failed.
    pub error: SynthesisError,
}

impl std::fmt::Display for Attempt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.method)?;
        match self.backtrack_limit {
            Some(limit) => write!(f, " backtracks<={limit}")?,
            None => write!(f, " backtracks=unlimited")?,
        }
        if self.portfolio {
            write!(f, " portfolio")?;
        }
        write!(f, " {:.2}s: {}", self.elapsed, self.error)
    }
}

/// A successful supervised run: the report plus the failed rungs that
/// preceded it (empty when the first attempt succeeded).
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// The successful attempt's report.
    pub report: SynthesisReport,
    /// The failed attempts climbed through first, in order.
    pub attempts: Vec<Attempt>,
}

/// The deterministic escalation schedule: every options value the ladder
/// will try, in order, truncated to [`RetryPolicy::max_attempts`]. A pure
/// function of `(base, policy)` — this is the determinism guarantee
/// DESIGN.md §11 documents, and what makes chaos runs replayable.
pub fn escalation_ladder(base: &SynthesisOptions, policy: &RetryPolicy) -> Vec<SynthesisOptions> {
    let mut rungs = vec![base.clone()];
    // Rung family 1: double the backtrack limit up to the cap. An
    // unlimited base has nothing to bump.
    let mut limit = base.solver.max_backtracks;
    while let Some(l) = limit {
        if l >= policy.backtrack_cap {
            break;
        }
        let bumped = (l.saturating_mul(2)).min(policy.backtrack_cap);
        let mut next = base.clone();
        next.solver.max_backtracks = Some(bumped);
        rungs.push(next);
        limit = Some(bumped);
    }
    // Rung 2: race the portfolio at the highest budget reached.
    if !base.portfolio {
        let mut next = base.clone();
        next.solver.max_backtracks = limit;
        next.portfolio = true;
        rungs.push(next);
    }
    // Rung 3: a different algorithm entirely.
    if policy.fallback && base.method != Method::Lavagno {
        let mut next = base.clone();
        next.solver.max_backtracks = limit;
        next.method = Method::Lavagno;
        rungs.push(next);
    }
    rungs.truncate(policy.max_attempts.max(1));
    rungs
}

/// Whether the ladder retries after `error`. Capacity failures are
/// retryable; `overall_cancelled` vetoes retrying an abort that the
/// caller's own token caused.
fn is_retryable(error: &SynthesisError, overall_cancelled: bool) -> bool {
    match error {
        SynthesisError::BacktrackLimit { .. } => true,
        SynthesisError::Aborted { .. } => !overall_cancelled,
        _ => false,
    }
}

/// [`synthesize_with_retry`] with observability: the ladder runs under a
/// `retry.ladder` span, each rung under a `retry.attempt` span with the
/// rung's method/limit/portfolio as notes and its outcome as a note, and
/// failed rungs count into a `retry_escalations` counter.
///
/// # Errors
///
/// * a non-retryable [`SynthesisError`], unchanged, from whichever rung
///   first hit it;
/// * [`SynthesisError::Aborted`] when the *overall* token fired;
/// * [`SynthesisError::Exhausted`] with the full attempt trace when every
///   rung failed retryably.
pub fn synthesize_with_retry_traced(
    stg: &Stg,
    base: &SynthesisOptions,
    policy: &RetryPolicy,
    tracer: &Tracer,
) -> Result<RetryOutcome, SynthesisError> {
    let _span = tracer.span("retry.ladder");
    let _flight = tracer.flight_span("retry.ladder");
    let rungs = escalation_ladder(base, policy);
    tracer.gauge("rungs", rungs.len() as f64);
    let mut attempts = Vec::new();
    for rung in &rungs {
        let mut options = rung.clone();
        options.cancel = match policy.attempt_timeout {
            Some(timeout) => base.cancel.child_with_deadline(timeout),
            None => base.cancel.clone(),
        };
        let attempt_span = tracer.span("retry.attempt");
        let attempt_flight = tracer.flight_span("retry.attempt");
        tracer.note("method", &options.method.to_string());
        tracer.note(
            "backtrack_limit",
            &options
                .solver
                .max_backtracks
                .map_or_else(|| "unlimited".to_string(), |l| l.to_string()),
        );
        tracer.note("portfolio", if options.portfolio { "yes" } else { "no" });
        let started = Instant::now();
        let result = synthesize_traced(stg, &options, tracer);
        match result {
            Ok(report) => {
                tracer.note("outcome", "ok");
                drop(attempt_span);
                drop(attempt_flight);
                return Ok(RetryOutcome { report, attempts });
            }
            Err(error) => {
                tracer.note("outcome", &error.to_string());
                drop(attempt_span);
                drop(attempt_flight);
                let overall_cancelled = base.cancel.is_cancelled();
                let retryable = is_retryable(&error, overall_cancelled);
                attempts.push(Attempt {
                    method: options.method,
                    backtrack_limit: options.solver.max_backtracks,
                    portfolio: options.portfolio,
                    elapsed: started.elapsed().as_secs_f64(),
                    error: error.clone(),
                });
                if !retryable {
                    return Err(error);
                }
                tracer.counter("retry_escalations", 1);
            }
        }
    }
    Err(SynthesisError::Exhausted { attempts })
}

/// Runs the supervised ladder without observability.
///
/// # Errors
///
/// As [`synthesize_with_retry_traced`].
pub fn synthesize_with_retry(
    stg: &Stg,
    base: &SynthesisOptions,
    policy: &RetryPolicy,
) -> Result<RetryOutcome, SynthesisError> {
    synthesize_with_retry_traced(stg, base, policy, &Tracer::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_fault::{site, FaultPlan, FaultRule};
    use modsyn_sat::SolverOptions;
    use modsyn_stg::benchmarks;

    fn limited(limit: u64) -> SynthesisOptions {
        SynthesisOptions {
            solver: SolverOptions {
                max_backtracks: Some(limit),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn the_ladder_is_a_pure_function_of_its_inputs() {
        let base = limited(100);
        let policy = RetryPolicy {
            backtrack_cap: 400,
            ..Default::default()
        };
        let a = escalation_ladder(&base, &policy);
        let b = escalation_ladder(&base, &policy);
        assert_eq!(a, b);
        let limits: Vec<_> = a.iter().map(|o| o.solver.max_backtracks).collect();
        assert_eq!(
            limits,
            vec![Some(100), Some(200), Some(400), Some(400), Some(400)]
        );
        assert!(a[3].portfolio, "portfolio rung follows the doublings");
        assert_eq!(a[4].method, Method::Lavagno, "fallback rung is last");
        assert!(a[..4].iter().all(|o| o.method == Method::Modular));
    }

    #[test]
    fn unlimited_base_skips_the_doubling_rungs() {
        let ladder = escalation_ladder(&SynthesisOptions::default(), &RetryPolicy::default());
        assert_eq!(ladder.len(), 3); // base, portfolio, lavagno
        assert!(ladder[1].portfolio);
        assert_eq!(ladder[2].method, Method::Lavagno);
    }

    #[test]
    fn max_attempts_truncates_from_the_top() {
        let policy = RetryPolicy {
            max_attempts: 2,
            backtrack_cap: 1 << 20,
            ..Default::default()
        };
        let ladder = escalation_ladder(&limited(100), &policy);
        assert_eq!(ladder.len(), 2);
        assert_eq!(ladder[1].solver.max_backtracks, Some(200));
    }

    #[test]
    fn first_attempt_success_reports_no_escalations() {
        let out = synthesize_with_retry(
            &benchmarks::vbe_ex1(),
            &SynthesisOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(out.attempts.is_empty());
        assert_eq!(out.report.benchmark, "vbe-ex1");
    }

    #[test]
    fn a_single_shot_abort_fault_is_retried_away() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT).times(1))
            .arm();
        let base = SynthesisOptions {
            faults: faults.clone(),
            ..Default::default()
        };
        let out =
            synthesize_with_retry(&benchmarks::vbe_ex1(), &base, &RetryPolicy::default()).unwrap();
        assert_eq!(out.attempts.len(), 1, "one failed rung before success");
        assert!(matches!(
            out.attempts[0].error,
            SynthesisError::Aborted { .. }
        ));
        assert_eq!(faults.total_injected(), 1);
    }

    #[test]
    fn the_portfolio_rung_escapes_a_persistent_solver_fault() {
        // An unlimited sat.abort plan kills every single-solver rung; the
        // portfolio rung does not probe sat.* sites and must decide.
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT))
            .arm();
        let base = SynthesisOptions {
            faults,
            ..Default::default()
        };
        let out =
            synthesize_with_retry(&benchmarks::vbe_ex1(), &base, &RetryPolicy::default()).unwrap();
        let winner_index = out.attempts.len();
        let ladder = escalation_ladder(&base, &RetryPolicy::default());
        assert!(ladder[winner_index].portfolio, "portfolio rung won");
        assert_eq!(out.report.method, Method::Modular);
    }

    #[test]
    fn exhaustion_carries_the_full_attempt_trace() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_CONFLICT_STORM))
            .arm();
        let base = SynthesisOptions {
            faults,
            solver: SolverOptions {
                max_backtracks: Some(100),
                ..Default::default()
            },
            ..Default::default()
        };
        let policy = RetryPolicy {
            backtrack_cap: 200,
            max_attempts: 2, // base + one doubling; no portfolio escape
            ..Default::default()
        };
        let err = synthesize_with_retry(&benchmarks::vbe_ex1(), &base, &policy).unwrap_err();
        let SynthesisError::Exhausted { attempts } = &err else {
            panic!("expected Exhausted, got {err:?}");
        };
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0].backtrack_limit, Some(100));
        assert_eq!(attempts[1].backtrack_limit, Some(200));
        assert!(attempts
            .iter()
            .all(|a| matches!(a.error, SynthesisError::BacktrackLimit { .. })));
        let display = err.to_string();
        assert!(display.contains("2 attempts"), "{display}");
    }

    #[test]
    fn non_retryable_errors_return_unchanged_immediately() {
        // vbe-ex1 with zero extra signals still solves; use an STG the
        // lavagno baseline rejects to get a deterministic non-retryable
        // error on the first rung.
        let stg = benchmarks::by_name("master-read").unwrap_or_else(benchmarks::vbe_ex1);
        let base = SynthesisOptions {
            method: Method::Lavagno,
            ..Default::default()
        };
        match crate::synthesize(&stg, &base) {
            Err(expected) => {
                let err = synthesize_with_retry(&stg, &base, &RetryPolicy::default()).unwrap_err();
                assert_eq!(err, expected, "error must pass through unwrapped");
            }
            Ok(_) => {
                // The instance is lavagno-solvable on this seed corpus;
                // nothing to assert.
            }
        }
    }

    #[test]
    fn an_overall_cancellation_propagates_as_aborted() {
        let cancel = modsyn_par::CancelToken::new();
        cancel.cancel();
        let base = SynthesisOptions {
            cancel,
            ..Default::default()
        };
        let err = synthesize_with_retry(&benchmarks::vbe_ex1(), &base, &RetryPolicy::default())
            .unwrap_err();
        assert!(
            matches!(err, SynthesisError::Aborted { .. }),
            "caller cancellation is not a retry trigger: {err:?}"
        );
    }

    #[test]
    fn the_traced_ladder_records_rung_spans() {
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT).times(1))
            .arm();
        let base = SynthesisOptions {
            faults,
            ..Default::default()
        };
        let tracer = Tracer::enabled();
        let out = synthesize_with_retry_traced(
            &benchmarks::vbe_ex1(),
            &base,
            &RetryPolicy::default(),
            &tracer,
        )
        .unwrap();
        let report = tracer.report();
        let attempts = report.spans_with_prefix("retry.attempt");
        assert_eq!(attempts.len(), out.attempts.len() + 1);
        assert_eq!(report.total_counter("retry_escalations"), 1);
        assert_eq!(attempts.last().unwrap().note("outcome"), Some("ok"));
    }
}
