//! Logic function derivation (paper Section 3.5).
//!
//! Once the expanded state graph satisfies CSC, every non-input signal gets
//! a next-state function: in each state its required output is the *implied
//! value* (flipped when excited). Unreachable codes are don't-cares; the
//! prime-irredundant cover comes from the espresso loop and its literal
//! count is the paper's area metric.

use modsyn_logic::{complement, minimize_exact, minimize_traced, Cover, ExactLimits, Sop};
use modsyn_obs::Tracer;
use modsyn_par::{par_map, unwrap_or_resume};
use modsyn_sg::StateGraph;

use crate::SynthesisError;

/// Minimisation mode for [`derive_logic_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinimizeMode {
    /// Heuristic espresso loop (prime and irredundant, not provably
    /// minimum). Fast at any size.
    #[default]
    Heuristic,
    /// Exact minimum covers where the instance fits
    /// [`ExactLimits::default`] — the `espresso -Dso -S1` fidelity of the
    /// paper's area numbers — falling back to the heuristic loop beyond.
    Exact,
}

/// The synthesised two-level function of one non-input signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalFunction {
    /// Signal name.
    pub name: String,
    /// Prime-irredundant sum-of-products over all graph signals.
    pub sop: Sop,
    /// Literal count of the unfactored cover.
    pub literals: usize,
}

/// Derives minimised logic for every non-input signal of a CSC-satisfying
/// state graph.
///
/// # Errors
///
/// Returns [`SynthesisError::CscUnresolved`] if the graph still violates
/// CSC (the functions would be ill-defined).
pub fn derive_logic(graph: &StateGraph) -> Result<Vec<SignalFunction>, SynthesisError> {
    derive_logic_with(graph, MinimizeMode::Heuristic)
}

/// [`derive_logic`] with an explicit [`MinimizeMode`].
///
/// # Errors
///
/// As [`derive_logic`].
pub fn derive_logic_with(
    graph: &StateGraph,
    mode: MinimizeMode,
) -> Result<Vec<SignalFunction>, SynthesisError> {
    derive_logic_traced(graph, mode, &Tracer::disabled())
}

/// [`derive_logic_with`] under a `logic` observability span: one
/// `logic:<signal>` child per derived function (nesting the `espresso` span
/// in heuristic mode) plus a `literals` gauge with the total area metric.
///
/// # Errors
///
/// As [`derive_logic`].
pub fn derive_logic_traced(
    graph: &StateGraph,
    mode: MinimizeMode,
    tracer: &Tracer,
) -> Result<Vec<SignalFunction>, SynthesisError> {
    derive_logic_jobs_traced(graph, mode, 1, tracer)
}

/// [`derive_logic_traced`] minimising up to `jobs` signals concurrently.
///
/// The per-signal minimisations are independent; the ordered parallel map
/// keeps the returned functions identical (content and order) to the
/// sequential ones for every `jobs` value. With `jobs > 1` the
/// `logic:<signal>` spans root on their worker threads.
///
/// # Errors
///
/// As [`derive_logic`].
pub fn derive_logic_jobs_traced(
    graph: &StateGraph,
    mode: MinimizeMode,
    jobs: usize,
    tracer: &Tracer,
) -> Result<Vec<SignalFunction>, SynthesisError> {
    let _span = tracer.span("logic");
    let analysis = graph.csc_analysis();
    if !analysis.satisfies_csc() {
        return Err(SynthesisError::CscUnresolved {
            remaining_conflicts: analysis.csc_pairs.len(),
        });
    }
    let n = graph.signals().len();
    let names: Vec<String> = graph.signals().iter().map(|s| s.name.clone()).collect();

    // Reachable codes, deduplicated (USC pairs share minterms).
    let mut reachable: Vec<u64> = (0..graph.state_count()).map(|s| graph.code(s)).collect();
    reachable.sort_unstable();
    reachable.dedup();
    let code_to_values = |code: u64| -> Vec<bool> { (0..n).map(|k| code >> k & 1 == 1).collect() };
    let reachable_cover = Cover::from_minterms(
        n,
        reachable
            .iter()
            .map(|&c| code_to_values(c))
            .collect::<Vec<_>>()
            .iter()
            .map(Vec::as_slice),
    );
    let dc = complement(&reachable_cover);

    let targets: Vec<usize> = (0..n)
        .filter(|&k| graph.signals()[k].kind.is_non_input())
        .collect();
    let names_ref = &names;
    let dc_ref = &dc;
    let functions: Vec<SignalFunction> = par_map(jobs, &targets, |_, &k| {
        let mut on_codes: Vec<u64> = Vec::new();
        for s in 0..graph.state_count() {
            if graph.implied_value(s, k) {
                on_codes.push(graph.code(s));
            }
        }
        on_codes.sort_unstable();
        on_codes.dedup();
        let on_minterms: Vec<Vec<bool>> = on_codes.iter().map(|&c| code_to_values(c)).collect();
        let on = Cover::from_minterms(n, on_minterms.iter().map(Vec::as_slice));
        let signal_span = tracer.span(&format!("logic:{}", names_ref[k]));
        let result = match mode {
            MinimizeMode::Heuristic => minimize_traced(&on, dc_ref, tracer),
            MinimizeMode::Exact => minimize_exact(&on, dc_ref, &ExactLimits::default()),
        };
        let literals = result.cover.literal_count();
        tracer.gauge("literals", literals as f64);
        drop(signal_span);
        let sop =
            Sop::new(names_ref.clone(), result.cover).expect("names match the cover universe");
        SignalFunction {
            name: names_ref[k].clone(),
            sop,
            literals,
        }
    })
    .into_iter()
    .map(unwrap_or_resume)
    .collect();
    tracer.gauge("total_literals", total_literals(&functions) as f64);
    Ok(functions)
}

/// Total literal count over all functions — Table 1's "2level Area
/// literals" column.
pub fn total_literals(functions: &[SignalFunction]) -> usize {
    functions.iter().map(|f| f.literals).sum()
}

/// The shared-PLA implementation of the whole controller: one
/// multi-output cover with product terms shared between the non-input
/// signals (beyond the paper's per-output `-Dso` metric). Returns the
/// cover plus the output names in mask-bit order.
///
/// # Errors
///
/// Returns [`SynthesisError::CscUnresolved`] if the graph still violates
/// CSC.
pub fn derive_logic_shared(
    graph: &StateGraph,
) -> Result<(modsyn_logic::MultiCover, Vec<String>), SynthesisError> {
    let analysis = graph.csc_analysis();
    if !analysis.satisfies_csc() {
        return Err(SynthesisError::CscUnresolved {
            remaining_conflicts: analysis.csc_pairs.len(),
        });
    }
    let n = graph.signals().len();
    let code_to_values = |code: u64| -> Vec<bool> { (0..n).map(|k| code >> k & 1 == 1).collect() };
    let mut reachable: Vec<u64> = (0..graph.state_count()).map(|s| graph.code(s)).collect();
    reachable.sort_unstable();
    reachable.dedup();
    let rows: Vec<Vec<bool>> = reachable.iter().map(|&c| code_to_values(c)).collect();
    let dc_shared = complement(&Cover::from_minterms(n, rows.iter().map(Vec::as_slice)));

    let mut ons: Vec<Cover> = Vec::new();
    let mut dcs: Vec<Cover> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for k in 0..n {
        if !graph.signals()[k].kind.is_non_input() {
            continue;
        }
        let mut on_codes: Vec<u64> = (0..graph.state_count())
            .filter(|&s| graph.implied_value(s, k))
            .map(|s| graph.code(s))
            .collect();
        on_codes.sort_unstable();
        on_codes.dedup();
        let on_rows: Vec<Vec<bool>> = on_codes.iter().map(|&c| code_to_values(c)).collect();
        ons.push(Cover::from_minterms(n, on_rows.iter().map(Vec::as_slice)));
        dcs.push(dc_shared.clone());
        names.push(graph.signals()[k].name.clone());
    }
    Ok((modsyn_logic::minimize_multi(&ons, &dcs), names))
}

/// Checks that each function reproduces the implied value in every state —
/// the correctness condition of the derived circuit.
pub fn verify_logic(graph: &StateGraph, functions: &[SignalFunction]) -> bool {
    let n = graph.signals().len();
    for f in functions {
        let Some(k) = graph.signal_index(&f.name) else {
            return false;
        };
        for s in 0..graph.state_count() {
            let values: Vec<bool> = (0..n).map(|i| graph.value(s, i)).collect();
            if f.sop.cover().covers_minterm(&values) != graph.implied_value(s, k) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::modular_resolve;
    use crate::solve::CscSolveOptions;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::{benchmarks, parse_g};

    #[test]
    fn handshake_logic_is_a_wire() {
        // b follows a: f_b = a.
        let stg = parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let functions = derive_logic(&sg).unwrap();
        assert_eq!(functions.len(), 1);
        assert_eq!(functions[0].literals, 1);
        assert_eq!(functions[0].sop.to_string(), "a");
        assert!(verify_logic(&sg, &functions));
    }

    #[test]
    fn celement_logic_has_majority_shape() {
        let stg = parse_g(
            ".model c\n.inputs a b\n.outputs c\n.graph\na+ c+\nb+ c+\nc+ a- b-\na- c-\nb- c-\nc- a+ b+\n.marking { <c-,a+> <c-,b+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let functions = derive_logic(&sg).unwrap();
        // Majority gate: ab + ac + bc (6 literals) on full care set; the
        // unreachable codes allow espresso to do no better than 5.
        assert!(functions[0].literals <= 6, "got {}", functions[0].literals);
        assert!(verify_logic(&sg, &functions));
    }

    #[test]
    fn conflicting_graph_is_rejected() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        assert!(matches!(
            derive_logic(&sg),
            Err(SynthesisError::CscUnresolved { .. })
        ));
    }

    #[test]
    fn parallel_logic_derivation_matches_sequential() {
        let stg = benchmarks::nouse();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        let tracer = Tracer::disabled();
        let seq =
            derive_logic_jobs_traced(&out.graph, MinimizeMode::Heuristic, 1, &tracer).unwrap();
        let par =
            derive_logic_jobs_traced(&out.graph, MinimizeMode::Heuristic, 4, &tracer).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn resolved_benchmark_logic_verifies() {
        for name in ["vbe-ex1", "nouse", "fifo", "wrdata"] {
            let stg = benchmarks::by_name(name).unwrap();
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
            let functions = derive_logic(&out.graph).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(verify_logic(&out.graph, &functions), "{name}");
            assert!(total_literals(&functions) > 0, "{name}");
            // Every non-input signal (including inserted ones) has logic.
            let non_inputs = out
                .graph
                .signals()
                .iter()
                .filter(|s| s.kind.is_non_input())
                .count();
            assert_eq!(functions.len(), non_inputs, "{name}");
        }
    }
}
