//! The synthesised circuit as an executable object: closed-loop simulation
//! against the specification and hazard analysis/removal (the paper's
//! Section 3.5 post-processing).

use std::collections::{HashMap, HashSet, VecDeque};

use modsyn_logic::{complement, expand, Cover, Cube};
use modsyn_sg::{EdgeLabel, StateGraph};

use crate::logic_fn::SignalFunction;
use crate::SynthesisError;

/// A gate-level view of the synthesised controller: one SOP next-state
/// function per non-input signal, evaluated over all signal values.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Signal names in code-bit order (inputs included).
    names: Vec<String>,
    /// Whether each signal is driven by the circuit.
    driven: Vec<bool>,
    /// Function per signal index (`None` for inputs).
    functions: Vec<Option<Cover>>,
}

impl Circuit {
    /// Assembles a circuit from a synthesis result.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::CscUnresolved`] if some non-input signal
    /// has no function (mismatched inputs).
    pub fn new(graph: &StateGraph, functions: &[SignalFunction]) -> Result<Self, SynthesisError> {
        let n = graph.signals().len();
        let mut slots: Vec<Option<Cover>> = vec![None; n];
        for f in functions {
            if let Some(i) = graph.signal_index(&f.name) {
                slots[i] = Some(f.sop.cover().clone());
            }
        }
        let driven: Vec<bool> = graph
            .signals()
            .iter()
            .map(|s| s.kind.is_non_input())
            .collect();
        if driven.iter().zip(&slots).any(|(&d, s)| d && s.is_none()) {
            return Err(SynthesisError::CscUnresolved {
                remaining_conflicts: 0,
            });
        }
        Ok(Circuit {
            names: graph.signals().iter().map(|s| s.name.clone()).collect(),
            driven,
            functions: slots,
        })
    }

    /// Signal names, in code order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Evaluates every driven signal's next value for the given current
    /// values; undriven (input) signals keep their value.
    pub fn next_values(&self, values: &[bool]) -> Vec<bool> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| match f {
                Some(cover) => cover.covers_minterm(values),
                None => values[i],
            })
            .collect()
    }

    /// The set of driven signals currently commanded to change.
    pub fn excited_outputs(&self, values: &[bool]) -> Vec<usize> {
        let next = self.next_values(values);
        (0..values.len())
            .filter(|&i| self.driven[i] && next[i] != values[i])
            .collect()
    }
}

/// Result of [`closed_loop_check`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimulationReport {
    /// Distinct specification states visited.
    pub states_visited: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Mismatches: `(state, signal, expected_excited)` — the circuit
    /// commanded (or failed to command) a change the specification does
    /// not (or does) prescribe.
    pub violations: Vec<(usize, usize, bool)>,
}

impl SimulationReport {
    /// Whether the circuit tracked the specification exactly.
    pub fn is_conforming(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Executes the circuit in lock-step with the specification state graph:
/// from every reachable state, the set of outputs the gates command to
/// change must equal the set the specification excites, and every fired
/// transition must lead to a state where the codes still agree.
///
/// This complements [`crate::verify_logic`]: instead of comparing implied
/// values per state, it *runs* the SOP network along every specification
/// edge.
pub fn closed_loop_check(graph: &StateGraph, circuit: &Circuit) -> SimulationReport {
    let n = graph.signals().len();
    let mut report = SimulationReport::default();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    seen.insert(graph.initial());
    queue.push_back(graph.initial());

    while let Some(state) = queue.pop_front() {
        report.states_visited += 1;
        let values: Vec<bool> = (0..n).map(|i| graph.value(state, i)).collect();
        let commanded: HashSet<usize> = circuit.excited_outputs(&values).into_iter().collect();
        let specified: HashSet<usize> = (0..n)
            .filter(|&i| {
                graph.signals()[i].kind.is_non_input() && graph.excited(state, i).is_some()
            })
            .collect();
        for &i in commanded.difference(&specified) {
            report.violations.push((state, i, false));
        }
        for &i in specified.difference(&commanded) {
            report.violations.push((state, i, true));
        }
        for e in graph.out_edges(state) {
            report.transitions += 1;
            if seen.insert(e.to) {
                queue.push_back(e.to);
            }
        }
    }
    report
}

/// Result of [`hazard_report`].
#[derive(Debug, Clone, Default)]
pub struct HazardSummary {
    /// Per function: `(name, hazardous transition count, transitions
    /// examined)`.
    pub per_function: Vec<(String, usize, usize)>,
}

impl HazardSummary {
    /// Total static-1 hazards across all functions.
    pub fn total_hazards(&self) -> usize {
        self.per_function.iter().map(|&(_, h, _)| h).sum()
    }
}

/// Collects, per synthesised function, the single-input-change transitions
/// of the final state graph on which the SOP cover has a static-1 hazard
/// (no single product term covers both endpoints).
pub fn hazard_report(graph: &StateGraph, functions: &[SignalFunction]) -> HazardSummary {
    let transitions = graph_transitions(graph);
    let mut summary = HazardSummary::default();
    for f in functions {
        let report = modsyn_logic::static_hazards(f.sop.cover(), &transitions);
        summary
            .per_function
            .push((f.name.clone(), report.hazardous.len(), report.examined));
    }
    summary
}

/// The state-graph edges as value-vector pairs (each a single-signal
/// change, by construction).
fn graph_transitions(graph: &StateGraph) -> Vec<(Vec<bool>, Vec<bool>)> {
    let n = graph.signals().len();
    let vals = |s: usize| (0..n).map(|i| graph.value(s, i)).collect::<Vec<bool>>();
    graph
        .edges()
        .iter()
        .filter(|e| matches!(e.label, EdgeLabel::Signal { .. }))
        .map(|e| (vals(e.from), vals(e.to)))
        .collect()
}

/// Removes every static-1 hazard of `functions` on the graph's transitions
/// by adding prime consensus cubes (the classic hazard-removal transform:
/// two adjacent ON-minterms with no joint cover get the expanded supercube
/// of the pair added to the cover).
///
/// Returns the repaired functions; covers without hazards are returned
/// unchanged. The repaired cover is functionally identical — added cubes
/// are implicants of the ON∪DC set.
pub fn remove_static_hazards(
    graph: &StateGraph,
    functions: &[SignalFunction],
) -> Vec<SignalFunction> {
    let transitions = graph_transitions(graph);
    let n = graph.signals().len();

    // Reachable-code don't-care complement is shared across functions.
    let mut reach_codes: Vec<u64> = (0..graph.state_count()).map(|s| graph.code(s)).collect();
    reach_codes.sort_unstable();
    reach_codes.dedup();
    let rows: Vec<Vec<bool>> = reach_codes
        .iter()
        .map(|&c| (0..n).map(|k| c >> k & 1 == 1).collect())
        .collect();
    let reachable = Cover::from_minterms(n, rows.iter().map(Vec::as_slice));
    let dc = complement(&reachable);

    functions
        .iter()
        .map(|f| {
            let mut cover = f.sop.cover().clone();
            let report = modsyn_logic::static_hazards(&cover, &transitions);
            if report.hazardous.is_empty() {
                return f.clone();
            }
            let off = complement(&cover.union(&dc));
            let mut added: HashMap<Cube, ()> = HashMap::new();
            for (a, b) in &report.hazardous {
                let joint = Cube::from_minterm(a).supercube(&Cube::from_minterm(b));
                added.entry(joint).or_insert(());
            }
            let mut extra = Cover::from_cubes(n, added.into_keys());
            // Raise the consensus cubes to primes for a tighter result.
            extra = expand(&extra, &off);
            for cube in extra.cubes() {
                cover.push(cube.clone());
            }
            cover.drop_contained();
            let literals = cover.literal_count();
            SignalFunction {
                name: f.name.clone(),
                sop: modsyn_logic::Sop::new(f.sop.names().to_vec(), cover).expect("same universe"),
                literals,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic_fn::{derive_logic, verify_logic};
    use crate::modular::modular_resolve;
    use crate::solve::CscSolveOptions;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    fn synthesised(name: &str) -> (StateGraph, Vec<SignalFunction>) {
        let stg = benchmarks::by_name(name).unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();
        let functions = derive_logic(&out.graph).unwrap();
        (out.graph, functions)
    }

    #[test]
    fn circuit_conforms_in_closed_loop() {
        for name in ["vbe-ex1", "nouse", "fifo", "sbuf-read-ctl"] {
            let (graph, functions) = synthesised(name);
            let circuit = Circuit::new(&graph, &functions).unwrap();
            let report = closed_loop_check(&graph, &circuit);
            assert!(report.is_conforming(), "{name}: {:?}", report.violations);
            assert_eq!(report.states_visited, graph.state_count(), "{name}");
            assert_eq!(report.transitions, graph.edge_count(), "{name}");
        }
    }

    #[test]
    fn a_wrong_circuit_is_caught() {
        let (graph, mut functions) = synthesised("vbe-ex1");
        // Sabotage: constant-0 for the first output.
        let n = graph.signals().len();
        functions[0] = SignalFunction {
            name: functions[0].name.clone(),
            sop: modsyn_logic::Sop::new(functions[0].sop.names().to_vec(), Cover::empty(n))
                .unwrap(),
            literals: 0,
        };
        let circuit = Circuit::new(&graph, &functions).unwrap();
        let report = closed_loop_check(&graph, &circuit);
        assert!(!report.is_conforming());
    }

    #[test]
    fn hazard_removal_eliminates_static_one_hazards() {
        for name in ["vbe-ex1", "wrdata", "nouse", "pa"] {
            let (graph, functions) = synthesised(name);
            let before = hazard_report(&graph, &functions);
            let repaired = remove_static_hazards(&graph, &functions);
            let after = hazard_report(&graph, &repaired);
            assert_eq!(after.total_hazards(), 0, "{name}: {:?}", after.per_function);
            // Repair never removes hazard-free coverage and stays verified.
            assert!(verify_logic(&graph, &repaired), "{name}");
            if before.total_hazards() == 0 {
                let unchanged: usize = functions.iter().map(|f| f.literals).sum();
                let now: usize = repaired.iter().map(|f| f.literals).sum();
                assert_eq!(unchanged, now, "{name}: hazard-free cover was altered");
            }
        }
    }

    #[test]
    fn hazard_removal_only_adds_implicants() {
        let (graph, functions) = synthesised("wrdata");
        let repaired = remove_static_hazards(&graph, &functions);
        for (orig, fixed) in functions.iter().zip(&repaired) {
            // Identical on every reachable state (verified), and the cover
            // only grew or stayed equal in cube count.
            assert!(fixed.sop.cover().cube_count() >= orig.sop.cover().cube_count());
        }
    }

    #[test]
    fn excited_outputs_follow_the_spec() {
        let (graph, functions) = synthesised("vbe-ex1");
        let circuit = Circuit::new(&graph, &functions).unwrap();
        let n = graph.signals().len();
        let values: Vec<bool> = (0..n).map(|i| graph.value(graph.initial(), i)).collect();
        let excited = circuit.excited_outputs(&values);
        for i in excited {
            assert!(graph.excited(graph.initial(), i).is_some());
        }
    }
}
