//! Modular partitioning for asynchronous circuit synthesis.
//!
//! A from-scratch reproduction of **Puri & Gu, "A Modular Partitioning
//! Approach for Asynchronous Circuit Synthesis" (DAC 1994)**. Given a
//! signal transition graph, the library resolves Complete State Coding by
//! partitioning the state graph into small per-output *modules* (paper
//! Section 3), solving a tiny SAT-CSC instance per module, propagating the
//! state-signal assignments back, expanding the graph, and finally deriving
//! prime-irredundant two-level logic.
//!
//! Two comparators are included for the Table-1 reproduction: the direct
//! (no decomposition) flow of Vanbekbergen et al. and a Lavagno/Moon-style
//! state-table flow.
//!
//! # Quickstart
//!
//! ```
//! use modsyn::{synthesize, Method, SynthesisOptions};
//! use modsyn_stg::benchmarks;
//!
//! # fn main() -> Result<(), modsyn::SynthesisError> {
//! let stg = benchmarks::vbe_ex1();
//! let report = synthesize(&stg, &SynthesisOptions::for_method(Method::Modular))?;
//! println!(
//!     "{}: {} -> {} signals, {} literals in {:.3}s",
//!     report.benchmark,
//!     report.initial_signals,
//!     report.final_signals,
//!     report.literals,
//!     report.cpu_seconds,
//! );
//! # Ok(())
//! # }
//! ```

mod checker;
mod circuit;
mod direct;
mod encode;
mod error;
mod fsm;
mod input_set;
mod lavagno;
mod logic_fn;
mod modular;
mod netlist;
mod retry;
mod solve;
mod synth;

pub use checker::{certify_report, gate_netlist};
pub use circuit::{
    closed_loop_check, hazard_report, remove_static_hazards, Circuit, HazardSummary,
    SimulationReport,
};
pub use direct::{direct_resolve, direct_resolve_traced, DirectOutcome};
pub use encode::{encode_csc, encode_csc_partial, Encoding};
pub use error::SynthesisError;
pub use fsm::{compatible_pairs, maximal_compatibles, minimise_states, ClosedCover, Compatible};
pub use input_set::{determine_input_set, determine_input_set_traced, immediate_inputs, InputSet};
pub use lavagno::{lavagno_resolve, LavagnoOptions, LavagnoOutcome};
pub use logic_fn::{
    derive_logic, derive_logic_jobs_traced, derive_logic_shared, derive_logic_traced,
    derive_logic_with, total_literals, verify_logic, MinimizeMode, SignalFunction,
};
pub use modular::{
    modular_resolve, modular_resolve_jobs, modular_resolve_jobs_traced, modular_resolve_traced,
    ModularOutcome, ModuleReport,
};
pub use netlist::to_verilog;
pub use retry::{
    escalation_ladder, synthesize_with_retry, synthesize_with_retry_traced, Attempt, RetryOutcome,
    RetryPolicy,
};
pub use solve::{
    solve_csc, solve_csc_scoped, solve_csc_scoped_traced, CscSolution, CscSolveOptions,
    FormulaStat, ResolveScope,
};
pub use synth::{synthesize, synthesize_traced, Method, SynthesisOptions, SynthesisReport};

/// Re-exported so callers selecting a SAT engine (`modsyn --engine`,
/// `modsat --engine`) need not depend on `modsyn-cnc` directly.
pub use modsyn_cnc::Engine;

// Store types surfaced through the options/report API, re-exported so
// callers need not depend on modsyn-store directly.
pub use modsyn_store::{ClauseFamilies, Provenance, StoreLink, StoreSession, SynthStore};
