//! The modular partitioning flow (paper Section 3, Figures 4–6).

use std::time::Instant;

use modsyn_obs::Tracer;
use modsyn_par::{par_map, unwrap_or_resume};
use modsyn_sg::{insert_state_signals, Quat, Quotient, StateGraph, StateSignalAssignment};
use modsyn_store::{module_key, ModuleEntry, Provenance, StoredFormula};

use crate::input_set::{determine_input_set_traced, InputSet};
use crate::solve::{
    solve_csc_scoped_traced, CscSolution, CscSolveOptions, FormulaStat, ResolveScope,
};
use crate::SynthesisError;

/// Per-output trace of the modular flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleReport {
    /// The output signal this module was built for.
    pub output: String,
    /// Number of signals kept in the input set.
    pub kept_signals: usize,
    /// States of the modular (quotient) state graph.
    pub module_states: usize,
    /// CSC conflicts inside the module before solving.
    pub module_conflicts: usize,
    /// State signals inserted by this module.
    pub inserted: usize,
}

/// Result of [`modular_resolve`]: the conflict-free expanded graph plus a
/// full trace.
#[derive(Debug, Clone)]
pub struct ModularOutcome {
    /// The expanded, CSC-satisfying state graph.
    pub graph: StateGraph,
    /// Names of all inserted state signals.
    pub inserted: Vec<String>,
    /// Statistics of every SAT formula solved (one small formula per
    /// module attempt — the paper's headline complexity win).
    pub formulas: Vec<FormulaStat>,
    /// Per-output module traces.
    pub modules: Vec<ModuleReport>,
    /// Why each inserted state signal exists: the module that forced it,
    /// the conflict pairs it resolves, the winning formula's shape.
    pub provenance: Vec<Provenance>,
    /// Module solves answered from the synthesis store (always 0 without
    /// an attached store).
    pub store_hits: u64,
    /// Module solves that ran the SAT layer for real — the *dirty* module
    /// count of an incremental run (0 without a store).
    pub store_misses: u64,
}

/// Runs the paper's `modular_synthesis` loop over every output signal:
/// derive the input set (Figure 2), build and solve the modular state graph
/// (Figure 4), propagate the assignment back to the complete graph
/// (Figure 5) and expand it. Any conflicts left after all outputs are
/// processed (covers of both conflict states can coincide in every module)
/// are cleaned up by one final solve on the complete graph.
///
/// # Errors
///
/// * [`SynthesisError::BacktrackLimit`] / [`SynthesisError::NoSolution`]
///   from the SAT layer,
/// * [`SynthesisError::Sg`] from quotient construction or expansion.
pub fn modular_resolve(
    initial: &StateGraph,
    options: &CscSolveOptions,
) -> Result<ModularOutcome, SynthesisError> {
    modular_resolve_traced(initial, options, &Tracer::disabled())
}

/// [`modular_resolve`] deriving each iteration's per-output candidate
/// modules on up to `jobs` worker threads.
///
/// The candidate derivations (input-set computation, signal hiding,
/// quotient CSC analysis) are independent per output, so they run as an
/// ordered [`par_map`]; the ranking, the single best-module SAT solve and
/// the propagation stay sequential and identical to [`modular_resolve`].
/// The outcome is therefore **byte-for-byte the same** for every `jobs`
/// value — parallelism changes wall-clock only. `jobs <= 1` runs inline.
///
/// # Errors
///
/// As [`modular_resolve`], plus [`SynthesisError::Aborted`] when
/// `options.cancel` fires between iterations or inside a solve.
pub fn modular_resolve_jobs(
    initial: &StateGraph,
    options: &CscSolveOptions,
    jobs: usize,
) -> Result<ModularOutcome, SynthesisError> {
    modular_resolve_jobs_traced(initial, options, jobs, &Tracer::disabled())
}

/// One output's candidate module: input set, quotient graph, and its
/// locally-resolvable conflict count (`None` when nothing is locally
/// resolvable, so the module need not be solved).
type Candidate = Option<(InputSet, Quotient, usize)>;

fn derive_candidate(
    graph: &StateGraph,
    output: usize,
    tracer: &Tracer,
) -> Result<Candidate, SynthesisError> {
    let set = determine_input_set_traced(graph, output, tracer)?;
    let quotient = graph.hide_signals(&set.hidden)?;
    let analysis = quotient.graph.csc_analysis();
    let conflicts =
        analysis.csc_pairs.len() - quotient.graph.unresolvable_csc_pairs(&analysis).len();
    Ok((conflicts > 0).then_some((set, quotient, conflicts)))
}

fn stat_to_stored(f: &FormulaStat) -> StoredFormula {
    StoredFormula {
        state_signals: f.state_signals,
        clauses: f.clauses,
        variables: f.variables,
        satisfiable: f.satisfiable,
        solver: f.solver,
    }
}

fn stat_from_stored(f: &StoredFormula) -> FormulaStat {
    FormulaStat {
        state_signals: f.state_signals,
        clauses: f.clauses,
        variables: f.variables,
        satisfiable: f.satisfiable,
        solver: f.solver,
    }
}

/// Provenance of every signal a fresh solve inserted: which of the
/// targeted conflict pairs each one actually resolves (stable with
/// opposite values on both states), plus the winning formula's shape.
fn provenance_of(solution: &CscSolution, module_output: &str, key: u64) -> Vec<Provenance> {
    let Some(winning) = solution.formulas.last() else {
        return Vec::new();
    };
    solution
        .assignments
        .iter()
        .map(|a| Provenance {
            signal: a.name.clone(),
            module_output: module_output.to_string(),
            module_key: key,
            resolved_pairs: solution
                .resolved_pairs
                .iter()
                .copied()
                .filter(|&(i, j)| {
                    matches!(
                        (a.values[i], a.values[j]),
                        (Quat::Zero, Quat::One) | (Quat::One, Quat::Zero)
                    )
                })
                .collect(),
            state_signals: winning.state_signals,
            variables: winning.variables,
            clauses: winning.clauses,
            families: solution.families,
        })
        .collect()
}

/// One module (or residual) solve, answered by the store when possible.
struct ModuleSolve {
    assignments: Vec<StateSignalAssignment>,
    formulas: Vec<FormulaStat>,
    provenance: Vec<Provenance>,
    /// `Some(true)` = store hit, `Some(false)` = solved and recorded,
    /// `None` = no store attached.
    hit: Option<bool>,
}

/// Consults `options.store` before running the SAT layer on `graph`.
///
/// The content key covers the **exact** graph rendering plus every
/// solver-relevant parameter (scope, name offset, solver options), so a hit
/// replays assignments the solver would have reproduced bit-for-bit — the
/// store can only change *where* the answer comes from, never what it is.
/// Misses solve for real, derive provenance, and record the entry.
fn solve_module_via_store(
    graph: &StateGraph,
    options: &CscSolveOptions,
    name_offset: usize,
    scope: ResolveScope,
    module_output: &str,
    tracer: &Tracer,
) -> Result<ModuleSolve, SynthesisError> {
    let session = options.store.session();
    let key = session.map(|_| {
        let scope_tag = match scope {
            ResolveScope::All => "all",
            ResolveScope::ResolvableOnly => "resolvable",
        };
        // `cancel` and `faults` are deliberately absent: they alter solver
        // *liveness*, not the solution a completed solve produces.
        module_key(
            graph,
            &format!(
                "scope={scope_tag} offset={name_offset} solver={:?} engine={} extra={} \
                 prefix={} min_area={} portfolio={}",
                options.solver,
                options.engine,
                options.extra_signals,
                options.name_prefix,
                options.min_area,
                options.portfolio
            ),
        )
    });
    if let (Some(session), Some(key)) = (session, key) {
        if let Some(entry) = session.get_module(key) {
            tracer.note("store", "hit");
            return Ok(ModuleSolve {
                assignments: entry.assignments.clone(),
                formulas: entry.formulas.iter().map(stat_from_stored).collect(),
                provenance: entry.provenance.clone(),
                hit: Some(true),
            });
        }
        tracer.note("store", "miss");
    }
    let solution = solve_csc_scoped_traced(graph, options, name_offset, scope, tracer)?;
    let provenance = provenance_of(&solution, module_output, key.unwrap_or(0));
    if let (Some(session), Some(key)) = (session, key) {
        session.put_module(
            key,
            ModuleEntry {
                assignments: solution.assignments.clone(),
                formulas: solution.formulas.iter().map(stat_to_stored).collect(),
                provenance: provenance.clone(),
            },
        );
    }
    Ok(ModuleSolve {
        assignments: solution.assignments,
        formulas: solution.formulas,
        provenance,
        hit: key.map(|_| false),
    })
}

/// [`modular_resolve`] with observability: the whole flow runs under a
/// `modular` span; every iteration gets a `select` span (module derivation
/// and ranking), every solved module a `module:<output>` span carrying the
/// paper's headline metrics (kept signals, module states, conflicts, peak
/// formula vars/clauses, inserted signals), and the final cleanup a
/// `residual` span.
///
/// # Errors
///
/// As [`modular_resolve`].
pub fn modular_resolve_traced(
    initial: &StateGraph,
    options: &CscSolveOptions,
    tracer: &Tracer,
) -> Result<ModularOutcome, SynthesisError> {
    modular_resolve_jobs_traced(initial, options, 1, tracer)
}

/// [`modular_resolve_jobs`] with observability (see
/// [`modular_resolve_traced`] for the span structure; with `jobs > 1` the
/// per-output derivation spans root on their worker threads instead of
/// nesting under `select`).
///
/// # Errors
///
/// As [`modular_resolve_jobs`].
pub fn modular_resolve_jobs_traced(
    initial: &StateGraph,
    options: &CscSolveOptions,
    jobs: usize,
    tracer: &Tracer,
) -> Result<ModularOutcome, SynthesisError> {
    let _span = tracer.span("modular");
    let start = Instant::now();
    let mut graph = initial.clone();
    let mut outcome = ModularOutcome {
        graph: initial.clone(),
        inserted: Vec::new(),
        formulas: Vec::new(),
        modules: Vec::new(),
        provenance: Vec::new(),
        store_hits: 0,
        store_misses: 0,
    };

    // The paper iterates over the output signals of the original STG;
    // state signals inserted along the way join later modules as ordinary
    // internal signals.
    let outputs: Vec<usize> = (0..initial.signals().len())
        .filter(|&s| initial.signals()[s].kind.is_non_input())
        .collect();

    // Each iteration derives every output's module and solves the one with
    // the fewest conflicts first: cheap modules' state signals usually
    // resolve the harder modules' conflicts as a side effect, so the
    // near-complete-graph modules (outputs triggered by everything, where
    // nothing can be hidden) are rarely solved at full size.
    for _iteration in 0..4 * outputs.len().max(1) {
        if options.cancel.is_cancelled() {
            return Err(SynthesisError::Aborted {
                elapsed: start.elapsed().as_secs_f64(),
            });
        }
        if graph.csc_analysis().satisfies_csc() {
            break;
        }
        // Pick the unsolved module with the fewest locally-resolvable
        // conflicts. The per-output derivations are independent, so they
        // fan out over `jobs` threads; the ordered reduction below makes
        // the chosen module identical for every `jobs` value.
        let select = tracer.span("select");
        let graph_ref = &graph;
        let derived = par_map(jobs, &outputs, |_, &output| {
            derive_candidate(graph_ref, output, tracer)
        });
        let mut best: Option<(usize, InputSet, Quotient, usize)> = None;
        let mut candidates = 0u64;
        for (&output, result) in outputs.iter().zip(derived) {
            let Some((set, quotient, conflicts)) = unwrap_or_resume(result)? else {
                continue;
            };
            candidates += 1;
            if best.as_ref().is_none_or(|&(_, _, _, c)| conflicts < c) {
                best = Some((output, set, quotient, conflicts));
            }
        }
        tracer.counter("candidates", candidates);
        drop(select);
        let Some((output, set, quotient, conflicts)) = best else {
            break; // residual conflicts are invisible to every module
        };

        let output_name = graph.signals()[output].name.clone();
        let module_span = tracer.span(&format!("module:{output_name}"));
        tracer.note("output", &output_name);
        tracer.gauge("kept_signals", set.kept.len() as f64);
        tracer.gauge("module_states", quotient.graph.state_count() as f64);
        tracer.gauge("conflicts", conflicts as f64);
        let solution = solve_module_via_store(
            &quotient.graph,
            options,
            outcome.inserted.len(),
            ResolveScope::ResolvableOnly,
            &output_name,
            tracer,
        )?;
        tracer.gauge(
            "vars",
            solution
                .formulas
                .iter()
                .map(|f| f.variables)
                .max()
                .unwrap_or(0) as f64,
        );
        tracer.gauge(
            "clauses",
            solution
                .formulas
                .iter()
                .map(|f| f.clauses)
                .max()
                .unwrap_or(0) as f64,
        );
        tracer.counter("inserted", solution.assignments.len() as u64);
        drop(module_span);
        match solution.hit {
            Some(true) => outcome.store_hits += 1,
            Some(false) => outcome.store_misses += 1,
            None => {}
        }
        outcome
            .provenance
            .extend(solution.provenance.iter().cloned());
        outcome.formulas.extend(solution.formulas.iter().copied());
        outcome.modules.push(ModuleReport {
            output: output_name,
            kept_signals: set.kept.len(),
            module_states: quotient.graph.state_count(),
            module_conflicts: conflicts,
            inserted: solution.assignments.len(),
        });
        if solution.assignments.is_empty() {
            break; // cannot progress; leave the rest to the residual solve
        }

        // Figure 5: every complete-graph state inherits the assignment of
        // the modular state that covers it.
        let propagated: Vec<StateSignalAssignment> = solution
            .assignments
            .iter()
            .map(|a| StateSignalAssignment {
                name: a.name.clone(),
                values: (0..graph.state_count())
                    .map(|s| a.values[quotient.state_map[s]])
                    .collect(),
            })
            .collect();
        for a in &propagated {
            outcome.inserted.push(a.name.clone());
        }
        graph = insert_state_signals(&graph, &propagated)?;
    }

    // Residual cleanup: conflicts whose states were covered by the same
    // modular state in every module survive the loop; one final (small)
    // solve on the complete graph removes them.
    if !graph.csc_analysis().satisfies_csc() {
        let residual = tracer.span("residual");
        let solution = solve_module_via_store(
            &graph,
            options,
            outcome.inserted.len(),
            ResolveScope::All,
            "<residual>",
            tracer,
        )?;
        tracer.counter("inserted", solution.assignments.len() as u64);
        drop(residual);
        match solution.hit {
            Some(true) => outcome.store_hits += 1,
            Some(false) => outcome.store_misses += 1,
            None => {}
        }
        outcome
            .provenance
            .extend(solution.provenance.iter().cloned());
        outcome.formulas.extend(solution.formulas.iter().copied());
        for a in &solution.assignments {
            outcome.inserted.push(a.name.clone());
        }
        graph = insert_state_signals(&graph, &solution.assignments)?;
    }

    debug_assert!(graph.csc_analysis().satisfies_csc());
    outcome.graph = graph;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    fn resolve(name: &str) -> ModularOutcome {
        let stg = benchmarks::by_name(name).expect("known benchmark");
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        modular_resolve(&sg, &CscSolveOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    #[test]
    fn vbe_ex1_resolves_with_one_signal() {
        let out = resolve("vbe-ex1");
        assert_eq!(out.inserted.len(), 1);
        assert!(out.graph.csc_analysis().satisfies_csc());
    }

    #[test]
    fn vbe_ex2_needs_two_signals() {
        let out = resolve("vbe-ex2");
        assert!(out.graph.csc_analysis().satisfies_csc());
        assert_eq!(out.inserted.len(), 2);
    }

    #[test]
    fn module_formulas_are_small() {
        // The headline claim: modular formulas are tiny compared to the
        // state space.
        let out = resolve("mmu1");
        assert!(out.graph.csc_analysis().satisfies_csc());
        assert!(!out.formulas.is_empty());
        for f in &out.formulas {
            assert!(
                f.variables <= 2 * 80 * f.state_signals + 200,
                "module formula unexpectedly large: {f:?}"
            );
        }
    }

    #[test]
    fn final_graph_is_consistent() {
        let out = resolve("nouse");
        for e in out.graph.edges() {
            let modsyn_sg::EdgeLabel::Signal { signal, polarity } = e.label else {
                panic!("unexpected epsilon edge");
            };
            assert_eq!(out.graph.value(e.from, signal), polarity.value_before());
            assert_eq!(out.graph.value(e.to, signal), polarity.value_after());
        }
    }

    #[test]
    fn parallel_driver_matches_sequential_exactly() {
        for name in ["vbe-ex2", "nouse", "sbuf-read-ctl"] {
            let stg = benchmarks::by_name(name).expect("known benchmark");
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let seq = modular_resolve_jobs(&sg, &CscSolveOptions::default(), 1).unwrap();
            let par = modular_resolve_jobs(&sg, &CscSolveOptions::default(), 4).unwrap();
            assert_eq!(seq.inserted, par.inserted, "{name}: inserted diverged");
            assert_eq!(seq.modules, par.modules, "{name}: module reports diverged");
            assert_eq!(seq.formulas, par.formulas, "{name}: formula stats diverged");
            assert_eq!(seq.graph.state_count(), par.graph.state_count());
        }
    }

    #[test]
    fn store_replays_modules_byte_identically() {
        use modsyn_store::{StoreLink, StoreSession, SynthStore};
        use std::sync::Arc;

        let sg = derive(&benchmarks::vbe_ex2(), &DeriveOptions::default()).unwrap();
        let plain = modular_resolve(&sg, &CscSolveOptions::default()).unwrap();

        let store = Arc::new(SynthStore::new());
        let cold_session = StoreSession::new(store.clone());
        let cold = modular_resolve(
            &sg,
            &CscSolveOptions {
                store: StoreLink::to(cold_session),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(cold.store_hits, 0, "first run must miss everywhere");
        assert!(cold.store_misses > 0);
        assert!(!cold.provenance.is_empty());
        for p in &cold.provenance {
            assert_ne!(p.module_key, 0);
            assert!(p.clauses > 0);
            assert_eq!(p.families.total(), p.clauses);
        }

        let warm_session = StoreSession::new(store);
        let warm = modular_resolve(
            &sg,
            &CscSolveOptions {
                store: StoreLink::to(warm_session),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(warm.store_misses, 0, "identical input must be all hits");
        assert_eq!(warm.store_hits, cold.store_misses);

        // The store may only change where answers come from, never what
        // they are: with and without a store, cold and warm, everything an
        // outcome exposes is identical.
        for other in [&cold, &warm] {
            assert_eq!(plain.inserted, other.inserted);
            assert_eq!(plain.graph, other.graph);
            assert_eq!(plain.formulas, other.formulas);
            assert_eq!(plain.modules, other.modules);
        }
        assert_eq!(cold.provenance, warm.provenance);
    }

    #[test]
    fn cancelled_token_aborts_the_flow() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let options = CscSolveOptions {
            cancel: modsyn_par::CancelToken::new(),
            ..Default::default()
        };
        options.cancel.cancel();
        match modular_resolve(&sg, &options) {
            Err(SynthesisError::Aborted { .. }) => {}
            other => panic!("expected Aborted, got {other:?}"),
        }
    }

    #[test]
    fn small_benchmarks_all_resolve() {
        for name in [
            "vbe-ex1",
            "vbe-ex2",
            "sendr-done",
            "nousc-ser",
            "nouse",
            "fifo",
            "wrdata",
            "pa",
            "sbuf-read-ctl",
        ] {
            let out = resolve(name);
            assert!(
                out.graph.csc_analysis().satisfies_csc(),
                "{name} left conflicts"
            );
            assert!(!out.inserted.is_empty(), "{name} inserted nothing");
        }
    }
}
