//! Error type for the synthesis flows.

use std::error::Error;
use std::fmt;

/// Errors raised by the synthesis flows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// State-graph derivation or transformation failed.
    Sg(modsyn_sg::SgError),
    /// The SAT solver hit its backtrack limit before a verdict — the
    /// paper's "SAT Backtrack Limit" abort of the direct method.
    BacktrackLimit {
        /// Number of state signals being attempted when the limit hit.
        state_signals: usize,
        /// Seconds spent before aborting.
        elapsed: f64,
    },
    /// No satisfying state-signal assignment exists up to the configured
    /// signal cap.
    NoSolution {
        /// Largest number of state signals tried.
        max_signals: usize,
    },
    /// The Lavagno-style baseline only accepts live safe free-choice STGs.
    NotFreeChoice,
    /// The Lavagno-style baseline found no race-free assignment without
    /// state splitting — the analogue of the SIS "internal state error".
    StateSplittingRequired,
    /// Logic derivation failed (the final graph still violates CSC).
    CscUnresolved {
        /// Number of conflicting pairs remaining.
        remaining_conflicts: usize,
    },
    /// The run was cancelled (explicitly or by a `--timeout-ms` deadline)
    /// before a verdict.
    Aborted {
        /// Seconds spent before the cancellation was observed.
        elapsed: f64,
    },
    /// Every rung of the supervised retry ladder failed retryably
    /// (capacity, not correctness). Carries the full attempt trace so the
    /// escalation history is diagnosable from the error alone.
    Exhausted {
        /// The failed attempts, in escalation order.
        attempts: Vec<crate::retry::Attempt>,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Sg(e) => write!(f, "state graph error: {e}"),
            SynthesisError::BacktrackLimit {
                state_signals,
                elapsed,
            } => write!(
                f,
                "sat backtrack limit reached with {state_signals} state signals after {elapsed:.1}s"
            ),
            SynthesisError::NoSolution { max_signals } => {
                write!(f, "no csc solution with up to {max_signals} state signals")
            }
            SynthesisError::NotFreeChoice => {
                write!(f, "method is restricted to live safe free-choice STGs")
            }
            SynthesisError::StateSplittingRequired => {
                write!(f, "no race-free assignment without state splitting")
            }
            SynthesisError::CscUnresolved {
                remaining_conflicts,
            } => {
                write!(
                    f,
                    "csc still violated: {remaining_conflicts} conflicting pairs remain"
                )
            }
            SynthesisError::Aborted { elapsed } => {
                write!(f, "aborted by cancellation after {elapsed:.1}s")
            }
            SynthesisError::Exhausted { attempts } => {
                write!(
                    f,
                    "retry ladder exhausted after {} attempts",
                    attempts.len()
                )?;
                if let Some(last) = attempts.last() {
                    write!(f, "; last: {last}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Sg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<modsyn_sg::SgError> for SynthesisError {
    fn from(e: modsyn_sg::SgError) -> Self {
        SynthesisError::Sg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SynthesisError::NoSolution { max_signals: 5 };
        assert!(e.to_string().contains('5'));
        assert!(SynthesisError::NotFreeChoice
            .to_string()
            .contains("free-choice"));
    }

    #[test]
    fn sg_errors_chain() {
        let e: SynthesisError = modsyn_sg::SgError::TooManySignals { requested: 70 }.into();
        assert!(Error::source(&e).is_some());
    }
}
