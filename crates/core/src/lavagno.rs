//! The Lavagno/Moon et al. [13]-style comparator.
//!
//! The original solves state assignment at the state-graph level via an FSM
//! flow table, state minimisation and a **critical-race-free** assignment,
//! and is restricted to live safe free-choice STGs. This stand-in keeps
//! those observable characteristics:
//!
//! * it rejects non-free-choice STGs ([`SynthesisError::NotFreeChoice`]),
//!   like `astg_syn` on `alex-nonfc`;
//! * it solves the **global** problem (no decomposition), with an added
//!   race-freedom restriction — at most one state signal may be in
//!   transition in any state — so some instances have no solution without
//!   state splitting and fail with
//!   [`SynthesisError::StateSplittingRequired`], the analogue of the SIS
//!   "internal state error" on `mmu0`/`pa`;
//! * it searches with the naive first-unassigned branching rule, modelling
//!   the older, less informed search.

use modsyn_par::CancelToken;
use modsyn_petri::NetClass;
use modsyn_sat::{Heuristic, Lit, Outcome, Solver, SolverOptions};
use modsyn_sg::{insert_state_signals, StateGraph};
use modsyn_stg::Stg;

use crate::solve::FormulaStat;
use crate::{encode_csc, SynthesisError};

/// Result of [`lavagno_resolve`].
#[derive(Debug, Clone)]
pub struct LavagnoOutcome {
    /// The expanded, CSC-satisfying state graph.
    pub graph: StateGraph,
    /// Names of the inserted state signals.
    pub inserted: Vec<String>,
    /// Per-attempt formula statistics.
    pub formulas: Vec<FormulaStat>,
}

/// Options for the Lavagno-style flow.
#[derive(Debug, Clone, PartialEq)]
pub struct LavagnoOptions {
    /// Backtrack limit for the underlying search.
    pub max_backtracks: Option<u64>,
    /// How many state signals beyond the lower bound to try before
    /// declaring that state splitting would be required.
    pub extra_signals: usize,
    /// Cooperative cancellation, polled inside the search. Inert by
    /// default.
    pub cancel: CancelToken,
}

impl Default for LavagnoOptions {
    fn default() -> Self {
        LavagnoOptions {
            max_backtracks: None,
            extra_signals: 3,
            cancel: CancelToken::never(),
        }
    }
}

/// Runs the Lavagno-style global state-assignment flow.
///
/// # Errors
///
/// * [`SynthesisError::NotFreeChoice`] for non-free-choice STGs,
/// * [`SynthesisError::StateSplittingRequired`] when no race-free
///   assignment exists within the signal cap,
/// * [`SynthesisError::BacktrackLimit`] if the search aborts.
pub fn lavagno_resolve(
    stg: &Stg,
    initial: &StateGraph,
    options: &LavagnoOptions,
) -> Result<LavagnoOutcome, SynthesisError> {
    // The theory stops at free choice: asymmetric-choice and general nets
    // are both outside it (`alex-nonfc` sits in the asymmetric tier).
    if stg.net().classify() > NetClass::FreeChoice {
        return Err(SynthesisError::NotFreeChoice);
    }
    let analysis = initial.csc_analysis();
    if analysis.satisfies_csc() {
        return Ok(LavagnoOutcome {
            graph: initial.clone(),
            inserted: Vec::new(),
            formulas: Vec::new(),
        });
    }

    let start = std::time::Instant::now();
    // Naive fixed branching order, modelling the older, less informed
    // search; learning stays on so UNSAT verdicts terminate.
    let solver_options = SolverOptions {
        heuristic: Heuristic::FirstUnassigned,
        max_backtracks: options.max_backtracks,
        max_decisions: None,
        learning: true,
    };
    let mut formulas = Vec::new();
    let mut m = analysis.lower_bound.max(1);
    let cap = analysis.lower_bound.max(1) + options.extra_signals;

    while m <= cap {
        let mut encoding = encode_csc(initial, &analysis, m);
        // Race freedom: at most one state signal in transition per state.
        for s in 0..initial.state_count() {
            for k in 0..m {
                for l in k + 1..m {
                    encoding.formula.add_clause([
                        Lit::negative(encoding.a(s, k)),
                        Lit::negative(encoding.a(s, l)),
                    ]);
                }
            }
        }
        let mut solver =
            Solver::new(&encoding.formula, solver_options).with_cancel(options.cancel.clone());
        let outcome = solver.solve();
        formulas.push(FormulaStat {
            state_signals: m,
            clauses: encoding.formula.clause_count(),
            variables: encoding.formula.num_vars(),
            satisfiable: outcome.is_sat(),
            solver: solver.stats(),
        });
        match outcome {
            Outcome::Satisfiable(model) => {
                let assignments = encoding.decode(&model, "st", 0);
                let graph = insert_state_signals(initial, &assignments)?;
                debug_assert!(graph.csc_analysis().satisfies_csc());
                return Ok(LavagnoOutcome {
                    graph,
                    inserted: assignments.iter().map(|a| a.name.clone()).collect(),
                    formulas,
                });
            }
            Outcome::Unsatisfiable => m += 1,
            Outcome::BacktrackLimit | Outcome::DecisionLimit => {
                return Err(SynthesisError::BacktrackLimit {
                    state_signals: m,
                    elapsed: start.elapsed().as_secs_f64(),
                });
            }
            Outcome::Aborted => {
                return Err(SynthesisError::Aborted {
                    elapsed: start.elapsed().as_secs_f64(),
                });
            }
        }
    }
    Err(SynthesisError::StateSplittingRequired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    #[test]
    fn non_free_choice_is_rejected() {
        let stg = benchmarks::alex_nonfc();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        assert_eq!(
            lavagno_resolve(&stg, &sg, &LavagnoOptions::default()).map(|_| ()),
            Err(SynthesisError::NotFreeChoice)
        );
    }

    #[test]
    fn solves_small_free_choice_benchmarks() {
        for name in ["vbe-ex1", "vbe-ex2", "sendr-done"] {
            let stg = benchmarks::by_name(name).unwrap();
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let out = lavagno_resolve(&stg, &sg, &LavagnoOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.graph.csc_analysis().satisfies_csc(), "{name}");
        }
    }

    #[test]
    fn race_freedom_limits_concurrent_insertion() {
        // nouse needs two signals; with the race-free restriction they may
        // not be excited simultaneously — the flow must still find some
        // solution or report the splitting error, never panic.
        let stg = benchmarks::nouse();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        match lavagno_resolve(&stg, &sg, &LavagnoOptions::default()) {
            Ok(out) => assert!(out.graph.csc_analysis().satisfies_csc()),
            Err(SynthesisError::StateSplittingRequired) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }
}
