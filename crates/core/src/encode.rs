//! The SAT-CSC encoding (paper Section 2.1).
//!
//! Every state `M` of the state graph gets, per new state signal `n_k`, a
//! four-valued variable `v_k(M) ∈ {0, 1, Up, Down}` encoded by two boolean
//! variables (footnote 2 of the paper): `a` = "excited" and `b` = the
//! current binary value, so `(a,b)` maps `(0,0)=0`, `(0,1)=1`, `(1,0)=Up`,
//! `(1,1)=Down`.
//!
//! Four clause families are emitted:
//!
//! 1. **Consistency**, one clause per (edge, signal, forbidden value pair).
//!    The allowed pairs follow the cyclic progression
//!    `0 → Up → 1 → Down → 0`; `(Up,1)`/`(Down,0)` — the state signal fires
//!    across the edge — are additionally forbidden on **input** edges, since
//!    an insertion may not delay the environment.
//!
//! 1.5. **Persistence**: on every concurrency diamond, the expansion must
//!    not produce a state copy that an edge enters while the concurrent
//!    pending non-input transition's edge is absent from it — the inserted
//!    signal would *withdraw* an excitation, breaking semi-modularity of
//!    the expanded graph (and so speed independence of any conforming
//!    circuit).
//!
//! 2. **CSC resolution**: each conflicting pair must be distinguished by at
//!    least one state signal that is *stable with opposite values* on the
//!    two states (an excited region overlapping a conflict state cannot
//!    resolve it — the state signal's own logic function would inherit the
//!    conflict).
//! 3. **No new conflicts**: USC pairs (equal code, equal excitation) may
//!    not end up with copies that share an extended code but disagree on
//!    the new signal's excitation.

use modsyn_sat::{CnfFormula, Lit, Var};
use modsyn_sg::{CscAnalysis, EdgeLabel, Quat, StateGraph, StateSignalAssignment};

/// A CNF encoding of the CSC-satisfaction problem for `m` new state
/// signals, with the variable layout needed to decode models.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The formula to hand to the solver.
    pub formula: CnfFormula,
    /// Number of state signals (`m`).
    pub state_signals: usize,
    /// Number of graph states.
    pub states: usize,
    /// Clause counts per family, in emission order: consistency (1),
    /// persistence (1.5), no-new-conflict (3), resolution (2). Feeds the
    /// provenance records of the synthesis store.
    pub families: [usize; 4],
}

impl Encoding {
    /// Variable "excited" for (state, signal).
    pub fn a(&self, state: usize, k: usize) -> Var {
        Var::new(2 * (state * self.state_signals + k))
    }

    /// Variable "value bit" for (state, signal).
    pub fn b(&self, state: usize, k: usize) -> Var {
        Var::new(2 * (state * self.state_signals + k) + 1)
    }

    /// Decodes a satisfying model into per-signal assignments. Names are
    /// `prefix0`, `prefix1`, … offset by `name_offset`.
    pub fn decode(
        &self,
        model: &modsyn_sat::Model,
        prefix: &str,
        name_offset: usize,
    ) -> Vec<StateSignalAssignment> {
        (0..self.state_signals)
            .map(|k| {
                let values = (0..self.states)
                    .map(
                        |s| match (model.value(self.a(s, k)), model.value(self.b(s, k))) {
                            (false, false) => Quat::Zero,
                            (false, true) => Quat::One,
                            (true, false) => Quat::Up,
                            (true, true) => Quat::Down,
                        },
                    )
                    .collect();
                StateSignalAssignment {
                    name: format!("{prefix}{}", name_offset + k),
                    values,
                }
            })
            .collect()
    }
}

/// The 16 ordered value pairs, as (a_from, b_from, a_to, b_to) tuples,
/// keyed by `(Quat, Quat)`.
fn quat_bits(q: Quat) -> (bool, bool) {
    match q {
        Quat::Zero => (false, false),
        Quat::One => (false, true),
        Quat::Up => (true, false),
        Quat::Down => (true, true),
    }
}

const ALL_QUATS: [Quat; 4] = [Quat::Zero, Quat::One, Quat::Up, Quat::Down];

/// Whether `(from, to)` is a consistent progression along a non-firing edge
/// (the state signal does not fire on this edge unless `allow_fire`).
fn edge_pair_allowed(from: Quat, to: Quat, allow_fire: bool) -> bool {
    use Quat::{Down, One, Up, Zero};
    matches!(
        (from, to),
        (Zero, Zero) | (One, One) | (Up, Up) | (Down, Down) | (Zero, Up) | (One, Down)
    ) || (allow_fire && matches!((from, to), (Up, One) | (Down, Zero)))
}

/// Whether the expansion places a copy of an edge with values `(from, to)`
/// in the low (signal = 0) copy of its endpoints. Mirrors
/// `modsyn_sg::insert_state_signals` exactly.
fn edge_in_lo(from: Quat, to: Quat) -> bool {
    use Quat::{Down, Up, Zero};
    matches!(
        (from, to),
        (Zero, Zero) | (Zero, Up) | (Up, Up) | (Down, Down) | (Down, Zero)
    )
}

/// Whether the expansion places a copy of an edge with values `(from, to)`
/// in the high (signal = 1) copy of its endpoints.
fn edge_in_hi(from: Quat, to: Quat) -> bool {
    use Quat::{Down, One, Up};
    matches!(
        (from, to),
        (One, One) | (One, Down) | (Up, Up) | (Down, Down) | (Up, One)
    )
}

/// Whether a USC (equal code, equal excitation) pair may take values
/// `(vi, vj)` without creating a new conflict between split copies.
fn usc_pair_allowed(vi: Quat, vj: Quat) -> bool {
    use Quat::{Down, One, Up, Zero};
    vi == vj
        || matches!(
            (vi, vj),
            (Zero, One) | (One, Zero) | (Zero, Down) | (Down, Zero) | (One, Up) | (Up, One)
        )
}

/// Builds the SAT-CSC formula for inserting `m` state signals into `graph`,
/// resolving every conflict in `analysis`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn encode_csc(graph: &StateGraph, analysis: &CscAnalysis, m: usize) -> Encoding {
    encode_csc_partial(graph, analysis, &analysis.csc_pairs, m)
}

/// Like [`encode_csc`], but only the pairs in `resolve` get resolution
/// clauses. Pairs left out stay in conflict (a later module resolves them);
/// they need no constraints of their own because additional state signals
/// can neither fix nor worsen an unresolved pair.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn encode_csc_partial(
    graph: &StateGraph,
    analysis: &CscAnalysis,
    resolve: &[(usize, usize)],
    m: usize,
) -> Encoding {
    assert!(m > 0, "at least one state signal is required");
    let states = graph.state_count();
    let mut formula = CnfFormula::new(2 * states * m);
    let enc = Encoding {
        formula: CnfFormula::new(0),
        state_signals: m,
        states,
        families: [0; 4],
    };
    let mut families = [0usize; 4];

    // Family 1: edge consistency / semi-modularity.
    for e in graph.edges() {
        let allow_fire = match e.label {
            EdgeLabel::Epsilon => false,
            EdgeLabel::Signal { signal, .. } => graph.signals()[signal].kind.is_non_input(),
        };
        // ε edges additionally forbid excitation changes: the two states
        // are behaviourally identical, so values must be equal.
        let equality_only = e.label == EdgeLabel::Epsilon;
        for k in 0..m {
            for &vf in &ALL_QUATS {
                for &vt in &ALL_QUATS {
                    let allowed = if equality_only {
                        vf == vt
                    } else {
                        edge_pair_allowed(vf, vt, allow_fire)
                    };
                    if allowed {
                        continue;
                    }
                    let (af, bf) = quat_bits(vf);
                    let (at, bt) = quat_bits(vt);
                    formula.add_clause([
                        Lit::with_polarity(enc.a(e.from, k), !af),
                        Lit::with_polarity(enc.b(e.from, k), !bf),
                        Lit::with_polarity(enc.a(e.to, k), !at),
                        Lit::with_polarity(enc.b(e.to, k), !bt),
                    ]);
                }
            }
        }
    }

    families[0] = formula.clause_count();

    // Family 1.5: persistence across concurrency diamonds. Expansion keeps
    // an edge only in the copies its value pair selects (`edge_in_lo` /
    // `edge_in_hi`); entering a state copy through one leg of a diamond
    // where the other leg's edge is absent would *withdraw* a pending
    // non-input excitation — the expanded graph would not be semi-modular
    // and the victim's gate could emit a runt pulse. For every diamond
    // (t: p -> s fired while u: p -> b stays pending, with u re-enabled as
    // s -> c), forbid each otherwise-consistent value combination in which
    // some entered copy of `s` has lost `u`.
    let mut diamonds = std::collections::BTreeSet::new();
    for p in 0..states {
        for t in graph.out_edges(p) {
            let (t_equality, t_fire, t_signal) = match t.label {
                EdgeLabel::Epsilon => (true, false, None),
                EdgeLabel::Signal { signal, .. } => (
                    false,
                    graph.signals()[signal].kind.is_non_input(),
                    Some(signal),
                ),
            };
            for u in graph.out_edges(p) {
                let EdgeLabel::Signal { signal, .. } = u.label else {
                    continue;
                };
                if !graph.signals()[signal].kind.is_non_input() || Some(signal) == t_signal {
                    continue;
                }
                for c in graph.out_edges(t.to).filter(|e| e.label == u.label) {
                    diamonds.insert((p, t.to, u.to, c.to, t_equality, t_fire));
                }
            }
        }
    }
    for &(p, s, b, c, t_equality, t_fire) in &diamonds {
        for k in 0..m {
            for &vp in &ALL_QUATS {
                for &vs in &ALL_QUATS {
                    let t_ok = if t_equality {
                        vp == vs
                    } else {
                        edge_pair_allowed(vp, vs, t_fire)
                    };
                    if !t_ok {
                        continue; // family 1 already forbids this pair
                    }
                    for &vb in &ALL_QUATS {
                        if !edge_pair_allowed(vp, vb, true) {
                            continue;
                        }
                        for &vc in &ALL_QUATS {
                            if !edge_pair_allowed(vs, vc, true) {
                                continue;
                            }
                            let withdrawn =
                                (edge_in_lo(vp, vs) && edge_in_lo(vp, vb) && !edge_in_lo(vs, vc))
                                    || (edge_in_hi(vp, vs)
                                        && edge_in_hi(vp, vb)
                                        && !edge_in_hi(vs, vc));
                            if !withdrawn {
                                continue;
                            }
                            let lits = [(p, vp), (s, vs), (b, vb), (c, vc)].map(|(st, v)| {
                                let (av, bv) = quat_bits(v);
                                [
                                    Lit::with_polarity(enc.a(st, k), !av),
                                    Lit::with_polarity(enc.b(st, k), !bv),
                                ]
                            });
                            formula.add_clause(lits.into_iter().flatten());
                        }
                    }
                }
            }
        }
    }

    families[1] = formula.clause_count() - families[0];

    // Family 3: no new conflicts on USC pairs. A pair is safe when either
    // (a) some signal holds stable opposite values on it — the split copies
    // then never share an extended code, so every per-signal combination is
    // harmless — or (b) every signal individually avoids the combinations
    // whose copies would share a code with differing excitation. One
    // "escape" variable per pair selects branch (a).
    for &(i, j) in &analysis.usc_pairs {
        let escape = formula.new_var();
        let ds: Vec<Var> = (0..m).map(|_| formula.new_var()).collect();
        for (k, &d) in ds.iter().enumerate() {
            let d_neg = Lit::negative(d);
            formula.add_clause([d_neg, Lit::negative(enc.a(i, k))]);
            formula.add_clause([d_neg, Lit::negative(enc.a(j, k))]);
            formula.add_clause([
                d_neg,
                Lit::positive(enc.b(i, k)),
                Lit::positive(enc.b(j, k)),
            ]);
            formula.add_clause([
                d_neg,
                Lit::negative(enc.b(i, k)),
                Lit::negative(enc.b(j, k)),
            ]);
        }
        // escape -> some signal is stable-disjoint on the pair.
        let mut clause: Vec<Lit> = vec![Lit::negative(escape)];
        clause.extend(ds.iter().map(|&d| Lit::positive(d)));
        formula.add_clause(clause);
        // !escape -> per-signal safety.
        for k in 0..m {
            for &vi in &ALL_QUATS {
                for &vj in &ALL_QUATS {
                    if usc_pair_allowed(vi, vj) {
                        continue;
                    }
                    let (ai, bi) = quat_bits(vi);
                    let (aj, bj) = quat_bits(vj);
                    formula.add_clause([
                        Lit::positive(escape),
                        Lit::with_polarity(enc.a(i, k), !ai),
                        Lit::with_polarity(enc.b(i, k), !bi),
                        Lit::with_polarity(enc.a(j, k), !aj),
                        Lit::with_polarity(enc.b(j, k), !bj),
                    ]);
                }
            }
        }
    }

    families[2] = formula.clause_count() - families[0] - families[1];

    // Family 2: every selected CSC conflict is resolved by some signal that
    // is stable-opposite on the pair. One auxiliary variable per (pair, k).
    //
    // Note on existing outputs: an insertion may *delay* an already-excited
    // output behind the new signal (the `(Up, 1)` pattern on its edge),
    // making the new signal one of its triggers. The state-graph excitation
    // of that output then starts later than in the original specification —
    // behaviourally safe for non-inputs, though the interim cover can carry
    // hazards; the paper defers those to its hazard-removal post-process
    // (see `modsyn_logic::static_hazards`).
    for &(i, j) in resolve {
        let ds: Vec<Var> = (0..m).map(|_| formula.new_var()).collect();
        for (k, &d) in ds.iter().enumerate() {
            let d_neg = Lit::negative(d);
            formula.add_clause([d_neg, Lit::negative(enc.a(i, k))]);
            formula.add_clause([d_neg, Lit::negative(enc.a(j, k))]);
            formula.add_clause([
                d_neg,
                Lit::positive(enc.b(i, k)),
                Lit::positive(enc.b(j, k)),
            ]);
            formula.add_clause([
                d_neg,
                Lit::negative(enc.b(i, k)),
                Lit::negative(enc.b(j, k)),
            ]);
        }
        formula.add_clause(ds.iter().map(|&d| Lit::positive(d)));
    }

    families[3] = formula.clause_count() - families[0] - families[1] - families[2];

    Encoding {
        formula,
        families,
        ..enc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::{solve, Outcome, SolverOptions};
    use modsyn_sg::{derive, insert_state_signals, DeriveOptions};
    use modsyn_stg::parse_g;

    fn double_pulse_graph() -> StateGraph {
        let stg = parse_g(
            ".model dp\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ b-\nb- a-\na- b+/2\nb+/2 b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end\n",
        )
        .unwrap();
        derive(&stg, &DeriveOptions::default()).unwrap()
    }

    #[test]
    fn edge_pair_table_matches_figure_3() {
        use Quat::{Down, One, Up, Zero};
        // Allowed without firing.
        for (f, t) in [
            (Zero, Zero),
            (One, One),
            (Up, Up),
            (Down, Down),
            (Zero, Up),
            (One, Down),
        ] {
            assert!(edge_pair_allowed(f, t, false), "{f}->{t}");
        }
        // Firing allowed only on non-input edges.
        assert!(edge_pair_allowed(Up, One, true));
        assert!(!edge_pair_allowed(Up, One, false));
        assert!(edge_pair_allowed(Down, Zero, true));
        assert!(!edge_pair_allowed(Down, Zero, false));
        // Figure 3(j) inconsistencies are always forbidden.
        for (f, t) in [
            (Zero, One),
            (One, Zero),
            (Zero, Down),
            (One, Up),
            (Up, Down),
            (Down, Up),
            (Up, Zero),
            (Down, One),
        ] {
            assert!(!edge_pair_allowed(f, t, true), "{f}->{t}");
        }
    }

    #[test]
    fn double_pulse_is_satisfiable_with_one_signal() {
        let sg = double_pulse_graph();
        let analysis = sg.csc_analysis();
        assert_eq!(analysis.lower_bound, 1);
        let enc = encode_csc(&sg, &analysis, 1);
        let out = solve(&enc.formula, SolverOptions::default());
        assert!(out.is_sat(), "expected satisfiable");
    }

    #[test]
    fn decoded_assignment_expands_and_resolves() {
        let sg = double_pulse_graph();
        let analysis = sg.csc_analysis();
        let enc = encode_csc(&sg, &analysis, 1);
        let Outcome::Satisfiable(model) = solve(&enc.formula, SolverOptions::default()) else {
            panic!("satisfiable");
        };
        let assignments = enc.decode(&model, "csc", 0);
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].name, "csc0");
        let expanded = insert_state_signals(&sg, &assignments).unwrap();
        let after = expanded.csc_analysis();
        assert!(after.satisfies_csc(), "remaining: {:?}", after.csc_pairs);
    }

    #[test]
    fn formula_size_scales_with_m() {
        let sg = double_pulse_graph();
        let analysis = sg.csc_analysis();
        let e1 = encode_csc(&sg, &analysis, 1);
        let e2 = encode_csc(&sg, &analysis, 2);
        assert!(e2.formula.clause_count() > e1.formula.clause_count());
        // Base layout plus one aux per (csc pair, signal) and per-USC-pair
        // escape machinery.
        assert!(e2.formula.num_vars() >= 2 * sg.state_count() * 2 + 2 * analysis.csc_pairs.len());
    }

    #[test]
    fn clause_families_partition_the_formula() {
        let sg = double_pulse_graph();
        let analysis = sg.csc_analysis();
        let enc = encode_csc(&sg, &analysis, 1);
        assert_eq!(
            enc.families.iter().sum::<usize>(),
            enc.formula.clause_count(),
            "families must partition the clause count"
        );
        assert!(enc.families[0] > 0, "consistency clauses always exist");
        assert!(
            enc.families[3] > 0,
            "a conflicted graph gets resolution clauses"
        );
    }

    #[test]
    fn persistence_family_forbids_withdrawing_diamonds() {
        // Regression for the encoding bug the oracle caught on `fifo` and
        // five other Table-1 benchmarks: without clause family 1.5 the
        // solver could assign the diamond values (1, ↓, ↓, 0) — the fired
        // leg (1, ↓) and the pending leg (1, ↓) both land in the *hi* copy
        // of the expansion, but the re-enabled pending edge (↓, 0) lands
        // only in the *lo* copy, so entering the hi copy withdraws the
        // pending excitation (a glitch under unbounded gate delay). Pin a
        // concurrency diamond to exactly those values and the formula must
        // be unsatisfiable; unpinned it must stay satisfiable.
        let stg = parse_g(
            ".model dia\n.outputs x y z\n.graph\nz+ x+\nz+ y+\nx+ z-\ny+ z-\nz- x-\nz- y-\nx- z+\ny- z+\n.marking { <x-,z+> <y-,z+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let analysis = sg.csc_analysis();
        let enc = encode_csc(&sg, &analysis, 1);
        assert!(
            solve(&enc.formula, SolverOptions::default()).is_sat(),
            "unpinned diamond formula must be satisfiable"
        );

        // Locate a diamond p -(x+)-> s with pending y+: p -(y+)-> b and
        // s -(y+)-> c.
        let x = sg.signal_index("x").unwrap();
        let y = sg.signal_index("y").unwrap();
        let fires = |e: &modsyn_sg::Edge, sig: usize| {
            matches!(e.label, EdgeLabel::Signal { signal, polarity }
                if signal == sig && polarity == modsyn_stg::Polarity::Rise)
        };
        let (p, s, b, c) = (0..sg.state_count())
            .find_map(|p| {
                let s = sg.out_edges(p).find(|e| fires(e, x))?.to;
                let b = sg.out_edges(p).find(|e| fires(e, y))?.to;
                let c = sg.out_edges(s).find(|e| fires(e, y))?.to;
                Some((p, s, b, c))
            })
            .expect("the net contains an x/y concurrency diamond");

        let mut pinned = enc.formula.clone();
        for (state, value) in [
            (p, Quat::One),
            (s, Quat::Down),
            (b, Quat::Down),
            (c, Quat::Zero),
        ] {
            let (av, bv) = quat_bits(value);
            pinned.add_clause([Lit::with_polarity(enc.a(state, 0), av)]);
            pinned.add_clause([Lit::with_polarity(enc.b(state, 0), bv)]);
        }
        assert_eq!(
            solve(&pinned, SolverOptions::default()),
            Outcome::Unsatisfiable,
            "the withdrawing diamond assignment must be forbidden"
        );
    }

    #[test]
    fn unsolvable_input_race_is_unsat() {
        // a+ ; par(b+, a-) ; b-: the 00 conflict cannot be resolved without
        // delaying the input a-, so one signal must not suffice.
        let stg = parse_g(
            ".model race\n.inputs a\n.outputs b\n.graph\na+ b+ a-\nb+ p\na- p2\np b-\np2 b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let analysis = sg.csc_analysis();
        if analysis.csc_pairs.is_empty() {
            return; // structure differs; nothing to prove
        }
        let enc = encode_csc(&sg, &analysis, 1);
        let out = solve(&enc.formula, SolverOptions::default());
        assert_eq!(out, Outcome::Unsatisfiable);
    }
}
