//! The direct (no-decomposition) comparator — Vanbekbergen et al. [22].
//!
//! The same SAT-CSC encoding as the modular flow, but applied to the
//! complete state graph in one formula. On large benchmarks the formula
//! explodes and the branch-and-bound solver aborts at its backtrack limit,
//! exactly as Table 1 reports.

use modsyn_sg::{insert_state_signals, StateGraph};

use crate::solve::{solve_csc_scoped_traced, CscSolveOptions, FormulaStat, ResolveScope};
use crate::SynthesisError;

/// Result of [`direct_resolve`].
#[derive(Debug, Clone)]
pub struct DirectOutcome {
    /// The expanded, CSC-satisfying state graph.
    pub graph: StateGraph,
    /// Names of the inserted state signals.
    pub inserted: Vec<String>,
    /// Statistics of the (single, large) formulas attempted.
    pub formulas: Vec<FormulaStat>,
}

/// Solves the CSC problem on the complete state graph in one SAT instance
/// per signal count.
///
/// # Errors
///
/// * [`SynthesisError::BacktrackLimit`] when the solver aborts (the
///   expected outcome on the paper's large rows),
/// * [`SynthesisError::NoSolution`] / [`SynthesisError::Sg`] otherwise.
pub fn direct_resolve(
    initial: &StateGraph,
    options: &CscSolveOptions,
) -> Result<DirectOutcome, SynthesisError> {
    direct_resolve_traced(initial, options, &modsyn_obs::Tracer::disabled())
}

/// [`direct_resolve`] under a `direct` observability span: the complete
/// graph's size as gauges plus the nested `csc.attempt` spans (one big
/// formula each — the contrast with the modular `module:*` spans).
///
/// # Errors
///
/// As [`direct_resolve`].
pub fn direct_resolve_traced(
    initial: &StateGraph,
    options: &CscSolveOptions,
    tracer: &modsyn_obs::Tracer,
) -> Result<DirectOutcome, SynthesisError> {
    let _span = tracer.span("direct");
    tracer.gauge("states", initial.state_count() as f64);
    tracer.gauge("signals", initial.signals().len() as f64);
    let solution = solve_csc_scoped_traced(initial, options, 0, ResolveScope::All, tracer)?;
    tracer.counter("inserted", solution.assignments.len() as u64);
    let graph = insert_state_signals(initial, &solution.assignments)?;
    debug_assert!(graph.csc_analysis().satisfies_csc());
    Ok(DirectOutcome {
        graph,
        inserted: solution
            .assignments
            .iter()
            .map(|a| a.name.clone())
            .collect(),
        formulas: solution.formulas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::SolverOptions;
    use modsyn_sg::{derive, DeriveOptions};
    use modsyn_stg::benchmarks;

    #[test]
    fn direct_solves_small_benchmarks() {
        for name in ["vbe-ex1", "vbe-ex2", "sendr-done", "nousc-ser", "nouse"] {
            let stg = benchmarks::by_name(name).unwrap();
            let sg = derive(&stg, &DeriveOptions::default()).unwrap();
            let out = direct_resolve(&sg, &CscSolveOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.graph.csc_analysis().satisfies_csc(), "{name}");
        }
    }

    #[test]
    fn direct_formula_is_one_big_instance() {
        let stg = benchmarks::nouse();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let out = direct_resolve(&sg, &CscSolveOptions::default()).unwrap();
        // Variables cover every state of the complete graph.
        let m = out.inserted.len();
        assert!(out
            .formulas
            .iter()
            .any(|f| f.variables >= 2 * sg.state_count() * m.min(f.state_signals)));
    }

    #[test]
    fn tight_backtrack_limit_aborts_large_graphs() {
        let stg = benchmarks::mmu1();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let options = CscSolveOptions {
            solver: SolverOptions {
                max_backtracks: Some(2),
                ..Default::default()
            },
            ..Default::default()
        };
        match direct_resolve(&sg, &options) {
            Err(SynthesisError::BacktrackLimit { .. }) => {}
            Ok(_) => {} // solved within two backtracks: acceptable but unlikely
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
}
