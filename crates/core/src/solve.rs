//! The CSC satisfaction loop (paper Figure 4's `while` loop).

use std::time::Instant;

use modsyn_cnc::{solve_engine_portfolio_traced, solve_with_engine_traced, Engine};
use modsyn_fault::Faults;
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;
use modsyn_sat::{solve_portfolio_traced, standard_portfolio, Outcome, SolverOptions, SolverStats};
use modsyn_sg::{StateGraph, StateSignalAssignment};
use modsyn_store::{ClauseFamilies, StoreLink};

use crate::encode::encode_csc_partial;
use crate::SynthesisError;

/// Which conflicts a [`solve_csc_scoped`] call must resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveScope {
    /// Every conflict; structurally unresolvable pairs make the call fail
    /// fast with [`SynthesisError::NoSolution`]. Used by the direct method
    /// and the final residual pass.
    All,
    /// Only the structurally resolvable conflicts; the rest are deferred to
    /// other modules. Used for the modular state graphs.
    ResolvableOnly,
}

/// Options for one CSC-satisfaction solve.
///
/// No longer `Copy` since cancellation support: the [`CancelToken`] holds
/// an `Arc`. Call sites pass `&CscSolveOptions` or clone explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct CscSolveOptions {
    /// SAT solver configuration (heuristic, backtrack limit).
    pub solver: SolverOptions,
    /// Which SAT core decides the CSC formulas. Defaults to the
    /// `modsyn-cnc` CDCL core; [`Engine::Dpll`] restores the classic
    /// paper-faithful engine, [`Engine::Cnc`] splits hard formulas into
    /// cubes conquered on a worker pool.
    pub engine: Engine,
    /// How many state signals beyond the lower bound to try before giving
    /// up with [`SynthesisError::NoSolution`].
    pub extra_signals: usize,
    /// Prefix for generated state-signal names.
    pub name_prefix: &'static str,
    /// Extract the assignment from a BDD of the constraint formula,
    /// minimising the number of excited states (the smallest expansion,
    /// hence the least area) — the BDD-based refinement the paper's
    /// conclusion points to. Falls back to the SAT path when the BDD
    /// exceeds its node budget.
    pub min_area: bool,
    /// Cooperative cancellation: checked between signal counts and polled
    /// inside the SAT search. Inert by default; compares by identity, so
    /// two default options values are still equal.
    pub cancel: CancelToken,
    /// Fault-injection handle threaded into the single-solver SAT path
    /// (the `sat.*` sites). Inert by default; compares by identity, like
    /// `cancel`. Deliberately *not* threaded into portfolio members — see
    /// [`CscSolveOptions::portfolio`].
    pub faults: Faults,
    /// Race the [`standard_portfolio`] over each formula instead of one
    /// tuned solver. Verdict-deterministic but trace-nondeterministic
    /// (which member wins depends on scheduling), and immune to `sat.*`
    /// fault plans by design: injecting into racing members would make the
    /// *verdict* depend on thread scheduling, and the retry ladder relies
    /// on this rung escaping single-solver faults.
    pub portfolio: bool,
    /// Optional synthesis-store session: the modular flow consults it
    /// before solving a module and records solutions (plus provenance)
    /// after. Inert by default; compares by identity, like `cancel`.
    /// Deliberately *excluded* from store key fingerprints — attaching a
    /// store must never change what is computed, only where it comes from.
    pub store: StoreLink,
}

impl Default for CscSolveOptions {
    fn default() -> Self {
        CscSolveOptions {
            solver: SolverOptions::default(),
            engine: Engine::default(),
            extra_signals: 6,
            name_prefix: "csc",
            min_area: false,
            cancel: CancelToken::never(),
            faults: Faults::none(),
            portfolio: false,
            store: StoreLink::none(),
        }
    }
}

/// The encoding's per-family clause counts as a store-facing record.
fn families_of(encoding: &crate::encode::Encoding) -> ClauseFamilies {
    let [consistency, persistence, usc, resolution] = encoding.families;
    ClauseFamilies {
        consistency,
        persistence,
        usc,
        resolution,
    }
}

/// Tries to extract a minimum-excitation satisfying assignment via a BDD.
///
/// Returns `Ok(Some(model))` on success, `Ok(None)` when the formula is
/// unsatisfiable, and `Err(())` when the BDD blew its node budget (the
/// caller falls back to SAT).
fn bdd_min_area_model(
    encoding: &crate::encode::Encoding,
    tracer: &Tracer,
) -> Result<Option<modsyn_sat::Model>, ()> {
    let num_vars = encoding.formula.num_vars();
    let mut manager = modsyn_bdd::BddManager::with_budget(num_vars, 2_000_000);
    let bdd = match modsyn_bdd::build_from_cnf_traced(&mut manager, &encoding.formula, tracer) {
        Ok(b) => b,
        Err(_) => return Err(()),
    };
    // Cost 1 for every "excited" variable set to true; value bits and
    // auxiliaries are free.
    let mut costs = vec![(0.0f64, 0.0f64); num_vars];
    for s in 0..encoding.states {
        for k in 0..encoding.state_signals {
            costs[encoding.a(s, k).index()] = (0.0, 1.0);
        }
    }
    Ok(manager
        .min_cost_sat(bdd, &costs)
        .map(modsyn_sat::Model::from_values))
}

/// Greedy model improvement: flip "excited" variables back to stable while
/// the formula stays satisfied. Fewer excited states mean fewer splits in
/// the expansion, hence less area — a cheap approximation of the BDD
/// minimum-cost extraction that works at any formula size.
fn shrink_excitation(
    encoding: &crate::encode::Encoding,
    model: modsyn_sat::Model,
) -> modsyn_sat::Model {
    let mut values: Vec<bool> = model.as_slice().to_vec();
    for s in 0..encoding.states {
        for k in 0..encoding.state_signals {
            let a = encoding.a(s, k).index();
            if !values[a] {
                continue;
            }
            values[a] = false;
            if !encoding.formula.evaluate(&values) {
                values[a] = true;
            }
        }
    }
    modsyn_sat::Model::from_values(values)
}

/// Statistics of one formula solved during CSC satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormulaStat {
    /// Number of state signals attempted.
    pub state_signals: usize,
    /// Clauses in the formula.
    pub clauses: usize,
    /// Variables in the formula.
    pub variables: usize,
    /// Whether this formula was satisfiable.
    pub satisfiable: bool,
    /// SAT solver counters for this attempt (all zero on the BDD path,
    /// which never runs the solver).
    pub solver: SolverStats,
}

/// Result of [`solve_csc`].
#[derive(Debug, Clone)]
pub struct CscSolution {
    /// One assignment per inserted state signal (empty when the graph
    /// already satisfied CSC).
    pub assignments: Vec<StateSignalAssignment>,
    /// Per-attempt formula statistics.
    pub formulas: Vec<FormulaStat>,
    /// The conflict pairs the winning formula was asked to resolve (state
    /// indices of `graph`); empty when no solve was needed.
    pub resolved_pairs: Vec<(usize, usize)>,
    /// Clause-family breakdown of the winning formula.
    pub families: ClauseFamilies,
}

/// Finds state-signal assignments satisfying all CSC constraints of
/// `graph`, starting from the lower bound and adding one signal per UNSAT
/// round (paper Figure 4).
///
/// `name_offset` numbers the generated signals so that successive calls
/// produce globally unique names.
///
/// # Errors
///
/// * [`SynthesisError::BacktrackLimit`] if the SAT solver aborted,
/// * [`SynthesisError::NoSolution`] if every signal count up to
///   `lower_bound + extra_signals` is unsatisfiable.
pub fn solve_csc(
    graph: &StateGraph,
    options: &CscSolveOptions,
    name_offset: usize,
) -> Result<CscSolution, SynthesisError> {
    solve_csc_scoped(graph, options, name_offset, ResolveScope::All)
}

/// [`solve_csc`] with an explicit [`ResolveScope`].
///
/// With [`ResolveScope::ResolvableOnly`] the returned assignment resolves
/// the structurally resolvable conflicts and leaves the rest in place; an
/// empty assignment list means no conflict was locally resolvable.
///
/// # Errors
///
/// As [`solve_csc`].
pub fn solve_csc_scoped(
    graph: &StateGraph,
    options: &CscSolveOptions,
    name_offset: usize,
    scope: ResolveScope,
) -> Result<CscSolution, SynthesisError> {
    solve_csc_scoped_traced(graph, options, name_offset, scope, &Tracer::disabled())
}

/// [`solve_csc_scoped`] with observability: each signal count `m` attempted
/// becomes a `csc.attempt` span carrying the formula size (`m`, `vars`,
/// `clauses`), the nested `sat.solve` / `bdd.build` span, and the outcome.
///
/// # Errors
///
/// As [`solve_csc`].
pub fn solve_csc_scoped_traced(
    graph: &StateGraph,
    options: &CscSolveOptions,
    name_offset: usize,
    scope: ResolveScope,
    tracer: &Tracer,
) -> Result<CscSolution, SynthesisError> {
    let analysis = graph.csc_analysis();
    if analysis.satisfies_csc() {
        return Ok(CscSolution {
            assignments: Vec::new(),
            formulas: Vec::new(),
            resolved_pairs: Vec::new(),
            families: ClauseFamilies::default(),
        });
    }
    let unresolvable = graph.unresolvable_csc_pairs(&analysis);
    let resolve: Vec<(usize, usize)> = match scope {
        ResolveScope::All => {
            // Fast fail: a conflict whose states reach each other through
            // input edges alone is unsatisfiable for every m — skip the
            // exponential UNSAT proofs.
            if !unresolvable.is_empty() {
                return Err(SynthesisError::NoSolution {
                    max_signals: analysis.lower_bound.max(1) + options.extra_signals,
                });
            }
            analysis.csc_pairs.clone()
        }
        ResolveScope::ResolvableOnly => {
            let pairs: Vec<(usize, usize)> = analysis
                .csc_pairs
                .iter()
                .copied()
                .filter(|p| !unresolvable.contains(p))
                .collect();
            if pairs.is_empty() {
                return Ok(CscSolution {
                    assignments: Vec::new(),
                    formulas: Vec::new(),
                    resolved_pairs: Vec::new(),
                    families: ClauseFamilies::default(),
                });
            }
            pairs
        }
    };
    let start = Instant::now();
    let mut formulas = Vec::new();
    let lower_bound = match scope {
        ResolveScope::All => analysis.lower_bound,
        // The analysis bound covers all conflicts; a partial solve may need
        // fewer signals, so start from one.
        ResolveScope::ResolvableOnly => 1,
    };
    let mut m = lower_bound.max(1);
    let cap = m + options.extra_signals;

    while m <= cap {
        if options.cancel.is_cancelled() {
            return Err(SynthesisError::Aborted {
                elapsed: start.elapsed().as_secs_f64(),
            });
        }
        let encoding = encode_csc_partial(graph, &analysis, &resolve, m);
        let attempt = tracer.span("csc.attempt");
        tracer.gauge("m", m as f64);
        tracer.gauge("vars", encoding.formula.num_vars() as f64);
        tracer.gauge("clauses", encoding.formula.clause_count() as f64);
        if options.min_area {
            match bdd_min_area_model(&encoding, tracer) {
                Ok(Some(model)) => {
                    tracer.note("outcome", "sat (bdd)");
                    drop(attempt);
                    formulas.push(FormulaStat {
                        state_signals: m,
                        clauses: encoding.formula.clause_count(),
                        variables: encoding.formula.num_vars(),
                        satisfiable: true,
                        solver: SolverStats::default(),
                    });
                    let assignments = encoding.decode(&model, options.name_prefix, name_offset);
                    return Ok(CscSolution {
                        assignments,
                        formulas,
                        resolved_pairs: resolve.clone(),
                        families: families_of(&encoding),
                    });
                }
                Ok(None) => {
                    tracer.note("outcome", "unsat (bdd)");
                    drop(attempt);
                    formulas.push(FormulaStat {
                        state_signals: m,
                        clauses: encoding.formula.clause_count(),
                        variables: encoding.formula.num_vars(),
                        satisfiable: false,
                        solver: SolverStats::default(),
                    });
                    m += 1;
                    continue;
                }
                Err(()) => {
                    // Node budget blown: fall through to the SAT path for
                    // this m.
                    tracer.note("bdd", "node budget exceeded; SAT fallback");
                }
            }
        }
        let (outcome, stats) = if options.portfolio {
            if options.engine == Engine::Dpll {
                let result = solve_portfolio_traced(
                    &encoding.formula,
                    &standard_portfolio(options.solver),
                    &options.cancel,
                    tracer,
                );
                let stats = result
                    .winner
                    .map(|i| result.runs[i].stats)
                    .unwrap_or_default();
                (result.outcome, stats)
            } else {
                // Race the CDCL core against the classic portfolio's two
                // strongest legs; same fault immunity as the classic race.
                solve_engine_portfolio_traced(
                    &encoding.formula,
                    options.solver,
                    &options.cancel,
                    tracer,
                )
            }
        } else {
            solve_with_engine_traced(
                options.engine,
                &encoding.formula,
                options.solver,
                &options.cancel,
                &options.faults,
                tracer,
            )
        };
        formulas.push(FormulaStat {
            state_signals: m,
            clauses: encoding.formula.clause_count(),
            variables: encoding.formula.num_vars(),
            satisfiable: outcome.is_sat(),
            solver: stats,
        });
        drop(attempt);
        match outcome {
            Outcome::Satisfiable(model) => {
                let model = shrink_excitation(&encoding, model);
                let assignments = encoding.decode(&model, options.name_prefix, name_offset);
                return Ok(CscSolution {
                    assignments,
                    formulas,
                    resolved_pairs: resolve.clone(),
                    families: families_of(&encoding),
                });
            }
            Outcome::Unsatisfiable => {
                m += 1;
            }
            Outcome::BacktrackLimit | Outcome::DecisionLimit => {
                return Err(SynthesisError::BacktrackLimit {
                    state_signals: m,
                    elapsed: start.elapsed().as_secs_f64(),
                });
            }
            Outcome::Aborted => {
                return Err(SynthesisError::Aborted {
                    elapsed: start.elapsed().as_secs_f64(),
                });
            }
        }
    }
    Err(SynthesisError::NoSolution { max_signals: cap })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sg::{derive, insert_state_signals, DeriveOptions};
    use modsyn_stg::benchmarks;

    #[test]
    fn vbe_ex1_needs_exactly_one_signal() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let solution = solve_csc(&sg, &CscSolveOptions::default(), 0).unwrap();
        assert_eq!(solution.assignments.len(), 1);
        assert!(solution.formulas.iter().all(|f| f.clauses > 0));
        let expanded = insert_state_signals(&sg, &solution.assignments).unwrap();
        assert!(expanded.csc_analysis().satisfies_csc());
    }

    #[test]
    fn clean_graph_returns_empty_solution() {
        let stg = modsyn_stg::parse_g(
            ".model hs\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let sg = derive(&stg, &DeriveOptions::default()).unwrap();
        let solution = solve_csc(&sg, &CscSolveOptions::default(), 0).unwrap();
        assert!(solution.assignments.is_empty());
    }

    #[test]
    fn name_offset_numbers_signals_globally() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let solution = solve_csc(&sg, &CscSolveOptions::default(), 3).unwrap();
        assert_eq!(solution.assignments[0].name, "csc3");
    }

    #[test]
    fn formula_stats_carry_solver_counters() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let solution = solve_csc(&sg, &CscSolveOptions::default(), 0).unwrap();
        let sat_attempt = solution.formulas.iter().find(|f| f.satisfiable).unwrap();
        assert!(sat_attempt.solver.propagations > 0);
        assert!(sat_attempt.solver.peak_clauses >= sat_attempt.clauses);
    }

    #[test]
    fn traced_solve_emits_one_attempt_span_per_m() {
        let sg = derive(&benchmarks::vbe_ex1(), &DeriveOptions::default()).unwrap();
        let tracer = Tracer::enabled();
        let solution = solve_csc_scoped_traced(
            &sg,
            &CscSolveOptions::default(),
            0,
            ResolveScope::All,
            &tracer,
        )
        .unwrap();
        let report = tracer.report();
        let attempts = report.spans_with_prefix("csc.attempt");
        assert_eq!(attempts.len(), solution.formulas.len());
        for span in &attempts {
            assert!(span.gauge("clauses").unwrap() > 0.0);
            // Each attempt nests exactly one solver span.
            assert_eq!(
                span.children
                    .iter()
                    .filter(|c| c.name == "sat.solve")
                    .count(),
                1
            );
        }
    }

    #[test]
    fn backtrack_limit_is_surfaced() {
        let sg = derive(&benchmarks::mmu0(), &DeriveOptions::default()).unwrap();
        let options = CscSolveOptions {
            solver: SolverOptions {
                max_backtracks: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        match solve_csc(&sg, &options, 0) {
            Err(SynthesisError::BacktrackLimit { .. }) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
