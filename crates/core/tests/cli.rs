//! CLI contract tests: stdout carries only machine-consumable output; the
//! observability options write to stderr and files.

use std::process::Command;

fn modsyn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_modsyn"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn stats_go_to_stderr_and_never_contaminate_stdout() {
    let out = modsyn(&["benchmark:vbe-ex1", "--quiet", "--pla", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();

    // stdout: only function and PLA lines, no `#` summary, no span tree.
    assert!(!stdout.is_empty());
    for line in stdout.lines() {
        assert!(
            line.contains('=')
                || line.starts_with('.')
                || line.chars().next().is_some_and(|c| "01-".contains(c)),
            "unexpected stdout line: {line:?}"
        );
    }
    assert!(!stdout.contains('#'), "summary leaked into stdout");
    assert!(!stdout.contains("├─"), "span tree leaked into stdout");

    // stderr: the span tree with the pipeline stages.
    assert!(stderr.contains("synthesize"), "stderr: {stderr}");
    assert!(stderr.contains("modular"));
    assert!(stderr.contains("sat.solve"));
}

#[test]
fn trace_json_file_is_well_formed() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("modsyn-cli-trace-{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let out = modsyn(&[
        "benchmark:vbe-ex2",
        "--method",
        "direct",
        "--trace-json",
        path_str,
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let parsed = modsyn_obs::parse_json(&text).expect("valid JSON");
    let spans = parsed.get("spans").unwrap().as_arr().unwrap();
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("synthesize"));
}

#[test]
fn unwritable_trace_json_path_fails_the_run() {
    let out = modsyn(&[
        "benchmark:vbe-ex1",
        "--trace-json",
        "/nonexistent-dir/trace.json",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot write"), "stderr: {stderr}");
}

#[test]
fn without_observability_flags_stderr_stays_empty() {
    let out = modsyn(&["benchmark:vbe-ex1"]);
    assert!(out.status.success());
    assert!(out.stderr.is_empty(), "unexpected stderr output");
}

#[test]
fn usage_mentions_the_observability_flags() {
    // --help is an informational success: usage on stdout, exit 0.
    let out = modsyn(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--stats"));
    assert!(stdout.contains("--trace-json"));
    assert!(stdout.contains("exit codes:"), "stdout: {stdout}");
}

#[test]
fn version_flag_prints_the_crate_version() {
    let out = modsyn(&["--version"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.trim(),
        format!("modsyn {}", env!("CARGO_PKG_VERSION"))
    );
}

#[test]
fn failure_classes_map_to_distinct_exit_codes() {
    // 1: usage error (unknown flag), stderr explains.
    let out = modsyn(&["benchmark:vbe-ex1", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(1));
    // 2: input error (unknown benchmark).
    let out = modsyn(&["benchmark:no-such-benchmark"]);
    assert_eq!(out.status.code(), Some(2));
    // 3: synthesis failure (lavagno rejects the non-free-choice row).
    let out = modsyn(&["benchmark:alex-nonfc", "--method", "lavagno"]);
    assert_eq!(out.status.code(), Some(3));
    // 4: aborted by --timeout-ms.
    let out = modsyn(&["benchmark:mr0", "--method", "direct", "--timeout-ms", "1"]);
    assert_eq!(out.status.code(), Some(4));
}
