//! Brute-force reference solver for differential testing.

use crate::{CnfFormula, Model, Outcome};

/// Largest variable count [`solve_exhaustive`] accepts (2²⁰ assignments).
pub const EXHAUSTIVE_VAR_LIMIT: usize = 20;

/// Decides satisfiability by enumerating every assignment.
///
/// This is the *reference* semantics the DPLL solver and the portfolio are
/// differentially tested against: ~15 lines with no propagation, no
/// heuristics and no early exits beyond clause evaluation, so a bug here is
/// very unlikely to coincide with a bug there. Returns the
/// lexicographically first model (variable 0 is the least-significant bit)
/// or [`Outcome::Unsatisfiable`].
///
/// # Panics
///
/// Panics if the formula has more than [`EXHAUSTIVE_VAR_LIMIT`] variables —
/// call sites are expected to keep differential inputs small, and a silent
/// 2ⁿ loop beyond that is a hang, not an answer.
pub fn solve_exhaustive(formula: &CnfFormula) -> Outcome {
    let n = formula.num_vars();
    assert!(
        n <= EXHAUSTIVE_VAR_LIMIT,
        "solve_exhaustive: {n} variables exceeds the {EXHAUSTIVE_VAR_LIMIT}-variable limit"
    );
    for bits in 0u64..1 << n {
        let assignment: Vec<bool> = (0..n).map(|v| bits >> v & 1 == 1).collect();
        if formula.evaluate(&assignment) {
            return Outcome::Satisfiable(Model::from_values(assignment));
        }
    }
    Outcome::Unsatisfiable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Var};

    #[test]
    fn finds_the_first_model() {
        let mut f = CnfFormula::new(2);
        let (a, b) = (Var::new(0), Var::new(1));
        f.add_clause([Lit::positive(a), Lit::positive(b)]);
        f.add_clause([Lit::negative(a)]);
        match solve_exhaustive(&f) {
            Outcome::Satisfiable(m) => {
                assert!(!m.value(a));
                assert!(m.value(b));
                assert!(m.check(&f));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn detects_unsat() {
        let mut f = CnfFormula::new(1);
        let a = Var::new(0);
        f.add_clause([Lit::positive(a)]);
        f.add_clause([Lit::negative(a)]);
        assert!(matches!(solve_exhaustive(&f), Outcome::Unsatisfiable));
    }

    #[test]
    fn empty_formula_is_trivially_sat() {
        let f = CnfFormula::new(0);
        assert!(matches!(solve_exhaustive(&f), Outcome::Satisfiable(_)));
    }

    #[test]
    #[should_panic(expected = "variable limit")]
    fn refuses_oversized_formulas() {
        solve_exhaustive(&CnfFormula::new(EXHAUSTIVE_VAR_LIMIT + 1));
    }
}
