//! `modsat` — solve a DIMACS CNF file.
//!
//! ```text
//! modsat <file.cnf | -> [--chrono] [--heuristic first|jw|moms|activity]
//!        [--max-backtracks N] [--timeout-ms T] [--portfolio] [--stats]
//! ```
//!
//! Prints `s SATISFIABLE` + a `v` model line, `s UNSATISFIABLE`, or
//! `s UNKNOWN` (limit reached or timed out), following the
//! SAT-competition output conventions. `--portfolio` races the standard
//! configuration portfolio instead of a single solver; `--timeout-ms`
//! aborts the search cooperatively after `T` milliseconds.

use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

use modsyn_par::CancelToken;
use modsyn_sat::{
    parse_dimacs, solve_portfolio, standard_portfolio, Heuristic, Lit, Outcome, Solver,
    SolverOptions, Var,
};

fn main() -> ExitCode {
    let mut source = String::new();
    let mut options = SolverOptions::default();
    let mut show_stats = false;
    let mut portfolio = false;
    let mut timeout_ms: Option<u64> = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chrono" => options.learning = false,
            "--heuristic" => {
                let Some(v) = it.next() else {
                    eprintln!("--heuristic needs a value");
                    return ExitCode::FAILURE;
                };
                options.heuristic = match v.as_str() {
                    "first" => Heuristic::FirstUnassigned,
                    "jw" => Heuristic::JeroslowWang,
                    "moms" => Heuristic::Moms,
                    "activity" => Heuristic::Activity,
                    other => {
                        eprintln!("unknown heuristic {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--max-backtracks" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-backtracks needs a number");
                    return ExitCode::FAILURE;
                };
                options.max_backtracks = Some(v);
            }
            "--timeout-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--timeout-ms needs a number");
                    return ExitCode::FAILURE;
                };
                timeout_ms = Some(v);
            }
            "--portfolio" => portfolio = true,
            "--stats" => show_stats = true,
            other if source.is_empty() => source = other.to_string(),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if source.is_empty() {
        eprintln!(
            "usage: modsat <file.cnf | -> [--chrono] [--heuristic first|jw|moms|activity] [--max-backtracks N] [--timeout-ms T] [--portfolio] [--stats]"
        );
        return ExitCode::FAILURE;
    }

    let text = if source == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error reading stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let formula = match parse_dimacs(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cancel = match timeout_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let outcome = if portfolio {
        let result = solve_portfolio(&formula, &standard_portfolio(options), &cancel);
        if show_stats {
            for (i, run) in result.runs.iter().enumerate() {
                let mark = if result.winner == Some(i) { " *" } else { "" };
                eprintln!("c [{i}{mark}] {:?}: {}", run.options.heuristic, run.stats);
            }
        }
        result.outcome
    } else {
        let mut solver = Solver::new(&formula, options).with_cancel(cancel);
        let outcome = solver.solve();
        if show_stats {
            eprintln!("c {}", solver.stats());
        }
        outcome
    };
    match outcome {
        Outcome::Satisfiable(model) => {
            println!("s SATISFIABLE");
            let line: Vec<String> = (0..formula.num_vars())
                .map(|i| {
                    let v = Var::new(i);
                    Lit::with_polarity(v, model.value(v))
                        .to_dimacs()
                        .to_string()
                })
                .collect();
            println!("v {} 0", line.join(" "));
            ExitCode::from(10)
        }
        Outcome::Unsatisfiable => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        Outcome::BacktrackLimit | Outcome::DecisionLimit | Outcome::Aborted => {
            println!("s UNKNOWN");
            ExitCode::SUCCESS
        }
    }
}
