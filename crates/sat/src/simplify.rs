//! Preprocessing: unit propagation and pure-literal elimination.

use crate::{CnfFormula, Lit};

/// Result of [`simplify`]: a reduced formula plus the assignments that were
/// forced while reducing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplifyResult {
    /// The simplified formula, over the same variable universe.
    pub formula: CnfFormula,
    /// Literals fixed by unit propagation or pure-literal elimination.
    pub forced: Vec<Lit>,
    /// Whether simplification already proved the formula unsatisfiable.
    pub unsat: bool,
}

/// Exhaustively applies unit propagation and pure-literal elimination.
///
/// The returned formula has the same satisfiability as the input;
/// [`SimplifyResult::forced`] records values any model must take (modulo
/// pure-literal choices, which are sound but not necessary).
///
/// ```
/// use modsyn_sat::{simplify, CnfFormula, Lit, Var};
/// let mut f = CnfFormula::new(2);
/// let a = Var::new(0);
/// let b = Var::new(1);
/// f.add_clause([Lit::positive(a)]);
/// f.add_clause([Lit::negative(a), Lit::positive(b)]);
/// let r = simplify(&f);
/// assert!(!r.unsat);
/// assert_eq!(r.formula.clause_count(), 0); // everything propagated away
/// assert_eq!(r.forced.len(), 2);
/// ```
pub fn simplify(formula: &CnfFormula) -> SimplifyResult {
    const UNASSIGNED: u8 = 2;
    let n = formula.num_vars();
    let mut values = vec![UNASSIGNED; n];
    let mut clauses: Vec<Vec<Lit>> = formula.clauses().to_vec();
    let mut forced: Vec<Lit> = Vec::new();
    let mut unsat = formula.contains_empty_clause();

    let assign = |values: &mut Vec<u8>, forced: &mut Vec<Lit>, lit: Lit| -> bool {
        let idx = lit.var().index();
        let want = u8::from(lit.is_positive());
        match values[idx] {
            v if v == UNASSIGNED => {
                values[idx] = want;
                forced.push(lit);
                true
            }
            v => v == want,
        }
    };

    while !unsat {
        let mut changed = false;

        // Drop satisfied clauses, remove false literals, detect units and
        // empties.
        let mut next: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
        for clause in clauses.drain(..) {
            let mut reduced: Vec<Lit> = Vec::with_capacity(clause.len());
            let mut satisfied = false;
            for l in clause {
                match values[l.var().index()] {
                    v if v == UNASSIGNED => reduced.push(l),
                    v => {
                        if (v == 1) != l.is_negative() {
                            satisfied = true;
                            break;
                        }
                        changed = true; // literal dropped
                    }
                }
            }
            if satisfied {
                changed = true;
                continue;
            }
            match reduced.len() {
                0 => {
                    unsat = true;
                    break;
                }
                1 => {
                    if !assign(&mut values, &mut forced, reduced[0]) {
                        unsat = true;
                        break;
                    }
                    changed = true;
                }
                _ => next.push(reduced),
            }
        }
        if unsat {
            clauses.clear();
            break;
        }
        clauses = next;

        // Pure-literal elimination over the remaining clauses.
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in &clauses {
            for l in clause {
                if l.is_positive() {
                    pos[l.var().index()] = true;
                } else {
                    neg[l.var().index()] = true;
                }
            }
        }
        for i in 0..n {
            if values[i] != UNASSIGNED {
                continue;
            }
            if pos[i] ^ neg[i] {
                let lit = Lit::with_polarity(crate::Var::new(i), pos[i]);
                let ok = assign(&mut values, &mut forced, lit);
                debug_assert!(ok, "pure literal cannot conflict");
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let mut out = CnfFormula::new(n);
    if unsat {
        out.add_clause([]);
    } else {
        out.extend(clauses);
    }
    SimplifyResult {
        formula: out,
        forced,
        unsat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, SolverOptions, Var};

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::new(i), pos)
    }

    #[test]
    fn unit_chain_fully_propagates() {
        let mut f = CnfFormula::new(3);
        f.add_clause([lit(0, true)]);
        f.add_clause([lit(0, false), lit(1, true)]);
        f.add_clause([lit(1, false), lit(2, true)]);
        let r = simplify(&f);
        assert!(!r.unsat);
        assert_eq!(r.forced.len(), 3);
        assert_eq!(r.formula.clause_count(), 0);
    }

    #[test]
    fn conflict_is_detected() {
        let mut f = CnfFormula::new(1);
        f.add_clause([lit(0, true)]);
        f.add_clause([lit(0, false)]);
        let r = simplify(&f);
        assert!(r.unsat);
        assert!(r.formula.contains_empty_clause());
    }

    #[test]
    fn pure_literals_are_fixed() {
        // x0 appears only positively.
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(0, true), lit(1, true)]);
        f.add_clause([lit(0, true), lit(1, false)]);
        let r = simplify(&f);
        assert!(!r.unsat);
        assert!(r.forced.contains(&lit(0, true)));
        assert_eq!(r.formula.clause_count(), 0);
    }

    #[test]
    fn simplification_preserves_satisfiability() {
        let mut f = CnfFormula::new(4);
        f.add_clause([lit(0, true), lit(1, true)]);
        f.add_clause([lit(0, false), lit(2, true)]);
        f.add_clause([lit(2, false), lit(3, false)]);
        f.add_clause([lit(1, false), lit(3, true)]);
        let r = simplify(&f);
        let before = solve(&f, SolverOptions::default()).is_sat();
        let after = !r.unsat && solve(&r.formula, SolverOptions::default()).is_sat();
        assert_eq!(before, after);
    }
}
