//! CNF formulas (product-of-sums).

use std::fmt;

use crate::{Lit, Var};

/// One disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
///
/// Clauses are normalised on insertion: duplicate literals are removed and
/// tautological clauses (containing `x` and `!x`) are dropped.
///
/// ```
/// use modsyn_sat::{CnfFormula, Lit, Var};
/// let mut f = CnfFormula::new(1);
/// let x = Var::new(0);
/// f.add_clause([Lit::positive(x), Lit::positive(x)]);   // dedupes to unit
/// f.add_clause([Lit::positive(x), Lit::negative(x)]);   // tautology, dropped
/// assert_eq!(f.clause_count(), 1);
/// assert_eq!(f.clauses()[0].len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
    contains_empty_clause: bool,
}

impl CnfFormula {
    /// Creates a formula over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
            contains_empty_clause: false,
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause.
    ///
    /// The clause is sorted and deduplicated; tautologies are dropped. An
    /// empty clause makes the formula trivially unsatisfiable (see
    /// [`CnfFormula::contains_empty_clause`]).
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions a variable outside the formula.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Clause = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} out of range for {} variables",
                self.num_vars
            );
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology: adjacent sorted literals of the same var with opposite
        // polarity.
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        if clause.is_empty() {
            self.contains_empty_clause = true;
        }
        self.clauses.push(clause);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses (empty clauses included).
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Whether an empty clause was added (formula trivially unsatisfiable).
    pub fn contains_empty_clause(&self) -> bool {
        self.contains_empty_clause
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// `assignment[v]` is the value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than [`CnfFormula::num_vars`].
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] != l.is_negative())
        })
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<T: IntoIterator<Item = Clause>>(&mut self, iter: T) {
        for c in iter {
            self.add_clause(c);
        }
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnf: {} vars, {} clauses",
            self.num_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_extend_the_universe() {
        let mut f = CnfFormula::new(0);
        let a = f.new_var();
        let b = f.new_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn empty_clause_marks_unsat() {
        let mut f = CnfFormula::new(0);
        f.add_clause([]);
        assert!(f.contains_empty_clause());
        assert_eq!(f.clause_count(), 1);
    }

    #[test]
    fn evaluate_checks_all_clauses() {
        let mut f = CnfFormula::new(2);
        let a = Var::new(0);
        let b = Var::new(1);
        f.add_clause([Lit::positive(a), Lit::positive(b)]);
        f.add_clause([Lit::negative(a), Lit::positive(b)]);
        assert!(f.evaluate(&[false, true]));
        assert!(f.evaluate(&[true, true]));
        assert!(!f.evaluate(&[true, false]));
    }

    #[test]
    fn literal_count_sums_clause_sizes() {
        let mut f = CnfFormula::new(2);
        let a = Var::new(0);
        let b = Var::new(1);
        f.add_clause([Lit::positive(a), Lit::positive(b)]);
        f.add_clause([Lit::negative(b)]);
        assert_eq!(f.literal_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::positive(Var::new(5))]);
    }

    #[test]
    fn extend_adds_clauses() {
        let mut f = CnfFormula::new(1);
        let x = Var::new(0);
        f.extend(vec![vec![Lit::positive(x)], vec![Lit::negative(x)]]);
        assert_eq!(f.clause_count(), 2);
    }
}
