//! DIMACS CNF import/export.

use std::fmt::Write as _;
use std::num::NonZeroI32;

use crate::{CnfFormula, Lit, SatError};

/// Parses a DIMACS CNF document.
///
/// Comment lines (`c …`) are ignored; the `p cnf <vars> <clauses>` header is
/// required; clauses are zero-terminated literal lists and may span lines.
///
/// # Errors
///
/// Returns [`SatError`] on a missing/malformed header, unparsable literal, or
/// a literal outside the declared variable range.
///
/// ```
/// use modsyn_sat::parse_dimacs;
/// # fn main() -> Result<(), modsyn_sat::SatError> {
/// let f = parse_dimacs("c demo\np cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.clause_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, SatError> {
    let mut formula: Option<CnfFormula> = None;
    let mut current: Vec<Lit> = Vec::new();

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut it = line.split_whitespace();
            let _p = it.next();
            let kind = it.next();
            let vars = it.next().and_then(|v| v.parse::<usize>().ok());
            let _clauses = it.next().and_then(|v| v.parse::<usize>().ok());
            match (kind, vars) {
                (Some("cnf"), Some(v)) => formula = Some(CnfFormula::new(v)),
                _ => {
                    return Err(SatError::MalformedHeader {
                        line: line.to_string(),
                    });
                }
            }
            continue;
        }
        let f = formula.as_mut().ok_or_else(|| SatError::MalformedHeader {
            line: line.to_string(),
        })?;
        for token in line.split_whitespace() {
            let value: i32 = token.parse().map_err(|_| SatError::MalformedLiteral {
                token: token.to_string(),
            })?;
            if value == 0 {
                f.add_clause(current.drain(..));
                continue;
            }
            if value.unsigned_abs() as usize > f.num_vars() {
                return Err(SatError::VariableOutOfRange {
                    variable: value,
                    declared: f.num_vars(),
                });
            }
            current.push(Lit::from_dimacs(
                NonZeroI32::new(value).expect("checked non-zero"),
            ));
        }
    }
    let mut f = formula.ok_or_else(|| SatError::MalformedHeader {
        line: String::new(),
    })?;
    if !current.is_empty() {
        f.add_clause(current);
    }
    Ok(f)
}

/// Serialises a formula to DIMACS CNF text.
///
/// ```
/// use modsyn_sat::{parse_dimacs, write_dimacs};
/// # fn main() -> Result<(), modsyn_sat::SatError> {
/// let f = parse_dimacs("p cnf 2 1\n1 -2 0\n")?;
/// let text = write_dimacs(&f);
/// assert_eq!(parse_dimacs(&text)?, f);
/// # Ok(())
/// # }
/// ```
pub fn write_dimacs(formula: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        formula.num_vars(),
        formula.clause_count()
    );
    for clause in formula.clauses() {
        for l in clause {
            let _ = write!(out, "{} ", l.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Outcome, SolverOptions};

    #[test]
    fn parse_rejects_missing_header() {
        assert!(matches!(
            parse_dimacs("1 2 0\n"),
            Err(SatError::MalformedHeader { .. })
        ));
    }

    #[test]
    fn parse_rejects_bad_literal() {
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 x 0\n"),
            Err(SatError::MalformedLiteral { .. })
        ));
    }

    #[test]
    fn parse_rejects_out_of_range() {
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n3 0\n"),
            Err(SatError::VariableOutOfRange {
                variable: 3,
                declared: 2
            })
        ));
    }

    #[test]
    fn clause_may_span_lines() {
        let f = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(f.clause_count(), 1);
        assert_eq!(f.clauses()[0].len(), 3);
    }

    #[test]
    fn trailing_clause_without_zero_is_kept() {
        let f = parse_dimacs("p cnf 2 1\n1 2\n").unwrap();
        assert_eq!(f.clause_count(), 1);
    }

    #[test]
    fn round_trip_preserves_satisfiability() {
        let f = parse_dimacs("p cnf 3 3\n1 -2 0\n2 -3 0\n-1 3 0\n").unwrap();
        let g = parse_dimacs(&write_dimacs(&f)).unwrap();
        let a = solve(&f, SolverOptions::default());
        let b = solve(&g, SolverOptions::default());
        assert!(matches!(
            (a, b),
            (Outcome::Satisfiable(_), Outcome::Satisfiable(_))
        ));
    }
}
