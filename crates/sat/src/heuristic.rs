//! Branching heuristics.

use crate::CnfFormula;

/// Decision heuristic used by the [`crate::Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Pick the lowest-indexed unassigned variable, phase `true`.
    /// Deterministic and cheap; useful as a worst-case baseline.
    FirstUnassigned,
    /// Static Jeroslow–Wang: score every literal `l` by `Σ 2^-|c|` over the
    /// clauses containing `l`; branch on the variable with the highest
    /// combined score, using the better-scored phase. Good default for the
    /// structured CSC formulas.
    #[default]
    JeroslowWang,
    /// Static MOMS (maximum occurrences in minimum-size clauses).
    Moms,
    /// Dynamic activity: variables in conflicting clauses are bumped and
    /// scores decay geometrically (a chronological-backtracking take on
    /// VSIDS), with phase saving.
    Activity,
}

/// Per-variable static scores: `(positive, negative)` literal scores.
pub(crate) fn static_scores(formula: &CnfFormula, heuristic: Heuristic) -> Vec<(f64, f64)> {
    let mut scores = vec![(0.0f64, 0.0f64); formula.num_vars()];
    match heuristic {
        Heuristic::FirstUnassigned | Heuristic::Activity => {}
        Heuristic::JeroslowWang => {
            for clause in formula.clauses() {
                // Cap the exponent so tiny weights do not underflow to zero.
                let w = 2f64.powi(-(clause.len().min(60) as i32));
                for l in clause {
                    let entry = &mut scores[l.var().index()];
                    if l.is_positive() {
                        entry.0 += w;
                    } else {
                        entry.1 += w;
                    }
                }
            }
        }
        Heuristic::Moms => {
            let min_len = formula
                .clauses()
                .iter()
                .map(|c| c.len())
                .filter(|&n| n > 0)
                .min()
                .unwrap_or(0);
            for clause in formula.clauses() {
                if clause.len() != min_len {
                    continue;
                }
                for l in clause {
                    let entry = &mut scores[l.var().index()];
                    if l.is_positive() {
                        entry.0 += 1.0;
                    } else {
                        entry.1 += 1.0;
                    }
                }
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Var};

    fn formula() -> CnfFormula {
        let mut f = CnfFormula::new(3);
        let a = Var::new(0);
        let b = Var::new(1);
        let c = Var::new(2);
        f.add_clause([Lit::positive(a), Lit::positive(b)]);
        f.add_clause([Lit::positive(a), Lit::negative(c)]);
        f.add_clause([Lit::negative(a), Lit::positive(b), Lit::positive(c)]);
        f
    }

    #[test]
    fn jeroslow_wang_prefers_frequent_short_literals() {
        let s = static_scores(&formula(), Heuristic::JeroslowWang);
        // a appears positively in two 2-clauses: 0.25 + 0.25.
        assert!((s[0].0 - 0.5).abs() < 1e-12);
        // a negatively in one 3-clause: 0.125.
        assert!((s[0].1 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn moms_counts_only_minimum_size_clauses() {
        let s = static_scores(&formula(), Heuristic::Moms);
        assert_eq!(s[0].0 as u32, 2); // a+ in both 2-clauses
        assert_eq!(s[1].0 as u32, 1); // b+ in one 2-clause
        assert_eq!(s[2].0 as u32, 0); // c+ only in the 3-clause
    }

    #[test]
    fn first_unassigned_has_no_static_scores() {
        let s = static_scores(&formula(), Heuristic::FirstUnassigned);
        assert!(s.iter().all(|&(p, n)| p == 0.0 && n == 0.0));
    }
}
