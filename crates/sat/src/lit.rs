//! Variables and literals.

use std::fmt;
use std::num::NonZeroI32;

/// A boolean variable, identified by a dense 0-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates the variable with the given index.
    pub fn new(index: usize) -> Self {
        Var(index as u32)
    }

    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given polarity (`true` = positive).
    pub fn with_polarity(var: Var, positive: bool) -> Self {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The variable this literal mentions.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is a negated literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is a positive literal.
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Dense index (usable for watch lists): `2*var + negated`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal back from [`Lit::index`].
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }

    /// DIMACS encoding: 1-based, negative for negated literals.
    pub fn to_dimacs(self) -> NonZeroI32 {
        let mag = self.var().0 as i32 + 1;
        NonZeroI32::new(if self.is_negative() { -mag } else { mag })
            .expect("magnitude is at least 1")
    }

    /// Parses a DIMACS literal (1-based, sign = polarity).
    pub fn from_dimacs(value: NonZeroI32) -> Self {
        let var = Var((value.get().unsigned_abs()) - 1);
        Lit::with_polarity(var, value.get() > 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_round_trip() {
        let v = Var::new(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
    }

    #[test]
    fn index_packing() {
        let v = Var::new(3);
        assert_eq!(Lit::positive(v).index(), 6);
        assert_eq!(Lit::negative(v).index(), 7);
        assert_eq!(Lit::from_index(7), Lit::negative(v));
    }

    #[test]
    fn dimacs_round_trip() {
        let v = Var::new(0);
        assert_eq!(Lit::positive(v).to_dimacs().get(), 1);
        assert_eq!(Lit::negative(v).to_dimacs().get(), -1);
        let l = Lit::from_dimacs(NonZeroI32::new(-4).unwrap());
        assert_eq!(l.var(), Var::new(3));
        assert!(l.is_negative());
    }

    #[test]
    fn display_forms() {
        let v = Var::new(2);
        assert_eq!(Lit::positive(v).to_string(), "x2");
        assert_eq!(Lit::negative(v).to_string(), "!x2");
    }
}
