//! A DPLL branch-and-bound SAT solver.
//!
//! This crate is the stand-in for the Stephan/Brayton branch-and-bound SAT
//! program shipped with SIS, which the paper used to solve its CSC
//! constraint formulas. It provides:
//!
//! * [`CnfFormula`] — product-of-sums formulas over [`Var`]/[`Lit`],
//! * [`Solver`] — iterative DPLL with two-watched-literal propagation,
//!   chronological backtracking and selectable decision [`Heuristic`]s,
//! * a configurable **backtrack limit** ([`SolverOptions::max_backtracks`]),
//!   reproducing the paper's "SAT Backtrack Limit" aborts on the direct
//!   (no-decomposition) method,
//! * DIMACS import/export for interoperability.
//!
//! # Example
//!
//! ```
//! use modsyn_sat::{CnfFormula, Lit, Outcome, Solver, SolverOptions, Var};
//!
//! let mut f = CnfFormula::new(2);
//! let a = Var::new(0);
//! let b = Var::new(1);
//! f.add_clause([Lit::positive(a), Lit::positive(b)]);
//! f.add_clause([Lit::negative(a)]);
//!
//! let mut solver = Solver::new(&f, SolverOptions::default());
//! match solver.solve() {
//!     Outcome::Satisfiable(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

mod cnf;
mod dimacs;
mod error;
mod exhaustive;
mod heuristic;
mod lit;
mod model;
mod portfolio;
mod simplify;
mod solver;
mod stats;

pub use cnf::{Clause, CnfFormula};
pub use dimacs::{parse_dimacs, write_dimacs};
pub use error::SatError;
pub use exhaustive::{solve_exhaustive, EXHAUSTIVE_VAR_LIMIT};
pub use heuristic::Heuristic;
pub use lit::{Lit, Var};
pub use model::Model;
pub use portfolio::{
    solve_portfolio, solve_portfolio_traced, standard_portfolio, PortfolioResult, PortfolioRun,
};
pub use simplify::{simplify, SimplifyResult};
pub use solver::{solve, Outcome, Solver, SolverOptions};
pub use stats::SolverStats;
