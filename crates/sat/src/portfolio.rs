//! Portfolio solving: race several solver configurations on the same
//! formula across scoped threads; the first definite verdict wins and the
//! losers are cancelled cooperatively.
//!
//! This is the classic complement to a single tuned solver: CSC constraint
//! formulas vary widely in which engine/heuristic pair decides them
//! fastest, and racing a small diverse portfolio bounds the worst case by
//! the best member (plus cancellation latency). Every attempt runs under a
//! child [`CancelToken`] of one race-local token, which itself is a child
//! of the caller's token — so an external deadline aborts the whole race,
//! while the winner cancelling the race never leaks upward.

use std::sync::{Mutex, PoisonError};

use modsyn_obs::Tracer;
use modsyn_par::CancelToken;

use crate::{CnfFormula, Heuristic, Outcome, Solver, SolverOptions, SolverStats};

/// One attempt's record in a [`PortfolioResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioRun {
    /// The configuration this attempt ran.
    pub options: SolverOptions,
    /// How the attempt ended. Losers typically end [`Outcome::Aborted`].
    pub outcome: Outcome,
    /// The attempt's search statistics.
    pub stats: SolverStats,
}

/// Result of [`solve_portfolio`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioResult {
    /// The winning verdict, or the least-aborted outcome when no attempt
    /// decided (all hit limits or the caller's token fired).
    pub outcome: Outcome,
    /// Index into `runs` of the first attempt to decide, if any. Which
    /// member wins a race is scheduling-dependent — callers needing
    /// reproducible *traces* (not just verdicts) should use a single
    /// [`Solver`] instead.
    pub winner: Option<usize>,
    /// Per-attempt records, in `configs` order.
    pub runs: Vec<PortfolioRun>,
}

/// The default racing portfolio: CDCL under conflict-driven activity
/// scores, plus the two chronological branch-and-bound variants whose
/// static heuristics (Jeroslow-Wang, MOMS) the ablation study exercises.
/// `limits` (backtrack/decision caps) applies to every member.
pub fn standard_portfolio(limits: SolverOptions) -> Vec<SolverOptions> {
    vec![
        SolverOptions {
            heuristic: Heuristic::Activity,
            learning: true,
            ..limits
        },
        SolverOptions {
            heuristic: Heuristic::JeroslowWang,
            learning: false,
            ..limits
        },
        SolverOptions {
            heuristic: Heuristic::Moms,
            learning: false,
            ..limits
        },
    ]
}

/// Races `configs` over `formula` on one scoped thread per config. The
/// first definite verdict (sat/unsat) cancels the other attempts and
/// becomes the result. `cancel` aborts the whole race from outside.
pub fn solve_portfolio(
    formula: &CnfFormula,
    configs: &[SolverOptions],
    cancel: &CancelToken,
) -> PortfolioResult {
    solve_portfolio_traced(formula, configs, cancel, &Tracer::disabled())
}

/// [`solve_portfolio`] with observability: the race runs under a
/// `sat.portfolio` span, each attempt under an `attempt:<i>` span on its
/// own thread, with a `losers_cancelled` counter and a `winner` note.
pub fn solve_portfolio_traced(
    formula: &CnfFormula,
    configs: &[SolverOptions],
    cancel: &CancelToken,
    tracer: &Tracer,
) -> PortfolioResult {
    let _span = tracer.span("sat.portfolio");
    tracer.gauge("configs", configs.len() as f64);
    if configs.is_empty() {
        return PortfolioResult {
            outcome: Outcome::Aborted,
            winner: None,
            runs: Vec::new(),
        };
    }

    let race = cancel.child();
    let winner: Mutex<Option<usize>> = Mutex::new(None);
    let runs: Vec<PortfolioRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(index, &options)| {
                let race = &race;
                let winner = &winner;
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let _attempt = tracer.span(&format!("attempt:{index}"));
                    let mut solver = Solver::new(formula, options).with_cancel(race.child());
                    let outcome = solver.solve_traced(&tracer);
                    if outcome.is_decided() {
                        let mut slot = winner.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(index);
                            race.cancel();
                        }
                    }
                    PortfolioRun {
                        options,
                        outcome,
                        stats: solver.stats(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio attempts contain their panics"))
            .collect()
    });

    let winner = *winner.lock().unwrap_or_else(PoisonError::into_inner);
    let outcome = match winner {
        Some(i) => {
            let cancelled = runs
                .iter()
                .filter(|r| r.outcome == Outcome::Aborted)
                .count();
            tracer.counter("losers_cancelled", cancelled as u64);
            tracer.note("winner", &format!("{:?}", runs[i].options.heuristic));
            runs[i].outcome.clone()
        }
        // No verdict: prefer reporting a limit abort over a cancellation,
        // so a race where every member exhausted its backtrack budget
        // still reads as the paper's "SAT Backtrack Limit".
        None => runs
            .iter()
            .map(|r| r.outcome.clone())
            .find(|o| *o != Outcome::Aborted)
            .unwrap_or(Outcome::Aborted),
    };
    PortfolioResult {
        outcome,
        winner,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Var};

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, exponential for
    /// chronological DPLL, manageable for CDCL at small sizes.
    fn pigeonhole(holes: usize) -> CnfFormula {
        let pigeons = holes + 1;
        let mut f = CnfFormula::new(pigeons * holes);
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..pigeons {
            f.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        f
    }

    #[test]
    fn portfolio_finds_sat_and_the_model_checks() {
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::positive(Var::new(0)), Lit::positive(Var::new(1))]);
        f.add_clause([Lit::negative(Var::new(0)), Lit::positive(Var::new(2))]);
        let result = solve_portfolio(
            &f,
            &standard_portfolio(SolverOptions::default()),
            &CancelToken::never(),
        );
        let model = result.outcome.model().expect("sat formula");
        assert!(model.check(&f));
        let w = result.winner.expect("someone decided");
        assert!(result.runs[w].outcome.is_decided());
    }

    #[test]
    fn portfolio_agrees_on_unsat() {
        let f = pigeonhole(4);
        let result = solve_portfolio(
            &f,
            &standard_portfolio(SolverOptions::default()),
            &CancelToken::never(),
        );
        assert_eq!(result.outcome, Outcome::Unsatisfiable);
        assert_eq!(result.runs.len(), 3);
    }

    /// A fixed random 3-SAT instance at the phase-transition ratio.
    /// Measured on this instance, CDCL decides ~350x faster than
    /// chronological DPLL with naive branching — the spread the race test
    /// below depends on.
    fn random_3sat(n_vars: usize, n_clauses: usize, mut seed: u64) -> CnfFormula {
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut f = CnfFormula::new(n_vars);
        for _ in 0..n_clauses {
            let mut lits: Vec<Lit> = Vec::with_capacity(3);
            while lits.len() < 3 {
                let v = Var::new((next() % n_vars as u64) as usize);
                if lits.iter().any(|l| l.var() == v) {
                    continue;
                }
                lits.push(Lit::with_polarity(v, next() % 2 != 0));
            }
            f.add_clause(lits);
        }
        f
    }

    #[test]
    fn winner_cancels_the_hopeless_loser() {
        use std::time::{Duration, Instant};
        // CDCL decides this instance in milliseconds; chronological DPLL
        // with naive branching needs orders of magnitude longer — the race
        // must finish on the CDCL timescale because the loser is
        // cancelled, not joined to completion.
        let f = random_3sat(140, 602, 0x853c49e6748fea9b);
        let configs = [
            SolverOptions::default(), // CDCL
            SolverOptions {
                learning: false,
                heuristic: Heuristic::FirstUnassigned,
                ..Default::default()
            },
        ];
        let started = Instant::now();
        let result = solve_portfolio(&f, &configs, &CancelToken::never());
        assert!(result.outcome.is_decided());
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "race must end on the winner's timescale"
        );
        assert_eq!(result.winner, Some(0));
        assert_eq!(result.runs[1].outcome, Outcome::Aborted);
    }

    #[test]
    fn external_cancellation_aborts_the_whole_race() {
        let f = pigeonhole(7);
        let token = CancelToken::new();
        token.cancel();
        let result = solve_portfolio(&f, &standard_portfolio(SolverOptions::default()), &token);
        assert_eq!(result.outcome, Outcome::Aborted);
        assert_eq!(result.winner, None);
        for run in &result.runs {
            assert_eq!(run.outcome, Outcome::Aborted);
        }
    }

    #[test]
    fn all_limited_members_report_the_limit_not_aborted() {
        let f = pigeonhole(8);
        let limits = SolverOptions {
            max_backtracks: Some(20),
            ..Default::default()
        };
        let result = solve_portfolio(&f, &standard_portfolio(limits), &CancelToken::never());
        assert_eq!(result.winner, None);
        assert_eq!(result.outcome, Outcome::BacktrackLimit);
    }

    #[test]
    fn empty_portfolio_aborts() {
        let f = pigeonhole(3);
        let result = solve_portfolio(&f, &[], &CancelToken::never());
        assert_eq!(result.outcome, Outcome::Aborted);
        assert!(result.runs.is_empty());
    }

    #[test]
    fn traced_race_records_attempt_spans() {
        let tracer = Tracer::enabled();
        let f = pigeonhole(4);
        let result = solve_portfolio_traced(
            &f,
            &standard_portfolio(SolverOptions::default()),
            &CancelToken::never(),
            &tracer,
        );
        assert_eq!(result.outcome, Outcome::Unsatisfiable);
        let report = tracer.report();
        assert_eq!(report.spans_with_prefix("sat.portfolio").len(), 1);
        assert_eq!(report.spans_with_prefix("attempt:").len(), 3);
    }
}
