//! Satisfying assignments.

use crate::{CnfFormula, Lit, Var};

/// A complete satisfying assignment returned by the solver.
///
/// ```
/// use modsyn_sat::{Model, Var};
/// let m = Model::from_values(vec![true, false]);
/// assert!(m.value(Var::new(0)));
/// assert!(!m.value(Var::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Builds a model from per-variable values (index order).
    pub fn from_values(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// Value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the model.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Whether the literal is true under this model.
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.value(lit.var()) != lit.is_negative()
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Checks the model against a formula (every clause satisfied).
    pub fn check(&self, formula: &CnfFormula) -> bool {
        formula.evaluate(&self.values)
    }

    /// Raw per-variable values.
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfies_respects_polarity() {
        let m = Model::from_values(vec![true, false]);
        let a = Var::new(0);
        let b = Var::new(1);
        assert!(m.satisfies(Lit::positive(a)));
        assert!(!m.satisfies(Lit::negative(a)));
        assert!(m.satisfies(Lit::negative(b)));
    }

    #[test]
    fn check_validates_against_formula() {
        let mut f = CnfFormula::new(2);
        let a = Var::new(0);
        let b = Var::new(1);
        f.add_clause([Lit::positive(a), Lit::positive(b)]);
        assert!(Model::from_values(vec![true, false]).check(&f));
        assert!(!Model::from_values(vec![false, false]).check(&f));
    }

    #[test]
    fn len_and_empty() {
        assert!(Model::from_values(vec![]).is_empty());
        assert_eq!(Model::from_values(vec![true]).len(), 1);
    }
}
