//! The search engines: conflict-driven clause learning (default) and
//! classic chronological DPLL (the branch-and-bound mode of the original
//! SIS solver, kept for baselines and ablations).

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;

use crate::heuristic::static_scores;
use crate::{CnfFormula, Heuristic, Lit, Model, SolverStats, Var};

/// Search limits and heuristic selection for a [`Solver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Branching heuristic. With learning enabled, [`Heuristic::Activity`]
    /// follows conflict-driven VSIDS scores; the static heuristics seed the
    /// initial order.
    pub heuristic: Heuristic,
    /// Abort with [`Outcome::BacktrackLimit`] after this many conflicts,
    /// mirroring the backtrack limit of the SIS branch-and-bound SAT
    /// program the paper used.
    pub max_backtracks: Option<u64>,
    /// Abort with [`Outcome::DecisionLimit`] after this many decisions.
    pub max_decisions: Option<u64>,
    /// Enable conflict-driven clause learning with non-chronological
    /// backjumping and restarts. Disabled, the solver backtracks
    /// chronologically like the original branch-and-bound program.
    pub learning: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            heuristic: Heuristic::default(),
            max_backtracks: None,
            max_decisions: None,
            learning: true,
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A satisfying assignment was found.
    Satisfiable(Model),
    /// The formula has no satisfying assignment.
    Unsatisfiable,
    /// The backtrack/conflict limit was hit before a verdict (the paper's
    /// "SAT Backtrack Limit" abort).
    BacktrackLimit,
    /// The decision limit was hit before a verdict.
    DecisionLimit,
    /// The solver's [`CancelToken`] fired (explicit cancellation or an
    /// expired deadline) before a verdict.
    Aborted,
}

impl Outcome {
    /// Whether the outcome is [`Outcome::Satisfiable`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Satisfiable(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the solver gave a definite verdict (sat or unsat).
    pub fn is_decided(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_) | Outcome::Unsatisfiable)
    }
}

const UNASSIGNED: u8 = 2;
const NO_REASON: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct ChronoFrame {
    trail_len: usize,
    lit: Lit,
    flipped: bool,
}

/// SAT search engine over a borrowed [`CnfFormula`].
///
/// See the crate-level example; construct one per formula and call
/// [`Solver::solve`].
#[derive(Debug)]
pub struct Solver<'f> {
    formula: &'f CnfFormula,
    options: SolverOptions,
    /// Clause literal arrays, positions 0 and 1 watched. Learned clauses
    /// are appended after the problem clauses.
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    /// Per-variable values: 0 = false, 1 = true, 2 = unassigned.
    values: Vec<u8>,
    /// Per-variable decision level.
    levels: Vec<u32>,
    /// Per-variable reason clause (NO_REASON for decisions/unset).
    reasons: Vec<u32>,
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts (learning mode).
    level_starts: Vec<usize>,
    qhead: usize,
    /// Chronological-mode decision stack.
    frames: Vec<ChronoFrame>,
    scores: Vec<(f64, f64)>,
    activity: Vec<f64>,
    activity_inc: f64,
    saved_phase: Vec<bool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    stats: SolverStats,
    /// Cooperative cancellation, polled every [`CANCEL_POLL_MASK`]+1
    /// search-loop iterations. Inert by default.
    cancel: CancelToken,
    /// Iteration counter driving the cancellation poll cadence.
    tick: u64,
    /// Fault-injection handle, probed at the cancellation cadence. Inert
    /// by default.
    faults: Faults,
    /// Iteration counter driving the fault-probe cadence (kept separate
    /// from `tick` so arming faults never shifts the cancel poll points).
    fault_tick: u64,
}

/// The search loops poll the cancel token once every `CANCEL_POLL_MASK + 1`
/// iterations, keeping the atomic load (and possible clock read) off the
/// hot path.
const CANCEL_POLL_MASK: u64 = 0xFF;

impl<'f> Solver<'f> {
    /// Prepares a solver for `formula`.
    pub fn new(formula: &'f CnfFormula, options: SolverOptions) -> Self {
        let n = formula.num_vars();
        let scores = static_scores(
            formula,
            if options.learning {
                Heuristic::JeroslowWang
            } else {
                options.heuristic
            },
        );
        // Seed dynamic activity with the static scores so early decisions
        // are informed.
        let activity: Vec<f64> = scores.iter().map(|&(p, q)| p + q).collect();
        Solver {
            formula,
            options,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            values: vec![UNASSIGNED; n],
            levels: vec![0; n],
            reasons: vec![NO_REASON; n],
            trail: Vec::new(),
            level_starts: Vec::new(),
            qhead: 0,
            frames: Vec::new(),
            scores,
            activity,
            activity_inc: 1.0,
            saved_phase: vec![false; n],
            seen: vec![false; n],
            stats: SolverStats::default(),
            cancel: CancelToken::never(),
            tick: 0,
            faults: Faults::none(),
            fault_tick: 0,
        }
    }

    /// Attaches a cancellation token: the search loops poll it
    /// periodically and return [`Outcome::Aborted`] once it fires. Keeping
    /// this off [`SolverOptions`] preserves that type's `Copy` contract
    /// (DESIGN.md §7).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a fault-injection handle: the search loops probe the
    /// `sat.abort` and `sat.conflict-storm` sites at the cancellation
    /// cadence and return the corresponding outcome when a rule fires.
    /// Like [`Solver::with_cancel`], this lives off [`SolverOptions`] to
    /// preserve that type's `Copy` contract; a disarmed handle costs one
    /// branch per poll window.
    #[must_use]
    pub fn with_faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }

    /// Whether the cancel token should abort the search; polled every
    /// `CANCEL_POLL_MASK + 1` calls (and on the first).
    fn poll_cancelled(&mut self) -> bool {
        if !self.cancel.is_cancellable() {
            return false;
        }
        self.tick = self.tick.wrapping_add(1);
        (self.tick & CANCEL_POLL_MASK) == 1 && self.cancel.is_cancelled()
    }

    /// Probes the armed fault plan (if any) at the cancellation cadence:
    /// `sat.abort` forces an early [`Outcome::Aborted`], and
    /// `sat.conflict-storm` behaves as if the search just burned through
    /// its whole backtrack budget ([`Outcome::BacktrackLimit`]).
    fn poll_injected(&mut self) -> Option<Outcome> {
        if !self.faults.is_armed() {
            return None;
        }
        self.fault_tick = self.fault_tick.wrapping_add(1);
        if (self.fault_tick & CANCEL_POLL_MASK) != 1 {
            return None;
        }
        if self.faults.fire(site::SAT_ABORT) {
            return Some(Outcome::Aborted);
        }
        if self.faults.fire(site::SAT_CONFLICT_STORM) {
            return Some(Outcome::BacktrackLimit);
        }
        None
    }

    /// Statistics of the last [`Solver::solve`] run.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        let v = self.values[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_negative() {
            v ^ 1
        } else {
            v
        }
    }

    fn current_level(&self) -> u32 {
        self.level_starts.len() as u32
    }

    fn assign(&mut self, lit: Lit, reason: u32) {
        let idx = lit.var().index();
        debug_assert_eq!(self.values[idx], UNASSIGNED);
        self.values[idx] = u8::from(lit.is_positive());
        self.levels[idx] = self.current_level();
        self.reasons[idx] = reason;
        self.trail.push(lit);
    }

    /// Enqueue for chronological mode (no reason tracking needed).
    fn enqueue(&mut self, lit: Lit) -> bool {
        match self.lit_value(lit) {
            0 => false,
            1 => true,
            _ => {
                self.assign(lit, NO_REASON);
                true
            }
        }
    }

    /// Propagates all pending assignments; returns the conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !lit;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0usize;
            while i < ws.len() {
                let cid = ws[i];
                let clause = &mut self.clauses[cid as usize];
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                let first_val = {
                    let v = self.values[first.var().index()];
                    if v == UNASSIGNED {
                        UNASSIGNED
                    } else if first.is_negative() {
                        v ^ 1
                    } else {
                        v
                    }
                };
                if first_val == 1 {
                    i += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..clause.len() {
                    let cand = clause[k];
                    let v = self.values[cand.var().index()];
                    let cand_false = v != UNASSIGNED && (v == 0) != cand.is_negative();
                    if !cand_false {
                        clause.swap(1, k);
                        let new_watch = clause[1];
                        self.watches[new_watch.index()].push(cid);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if first_val == 0 {
                    self.watches[false_lit.index()] = ws;
                    return Some(cid);
                }
                self.assign(first, cid);
                self.stats.propagations += 1;
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
        }
        None
    }

    fn bump(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.activity_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        if self.options.heuristic == Heuristic::FirstUnassigned {
            return self
                .values
                .iter()
                .position(|&v| v == UNASSIGNED)
                .map(|i| Lit::positive(Var::new(i)));
        }
        if self.options.learning || self.options.heuristic == Heuristic::Activity {
            let mut best: Option<(f64, usize)> = None;
            for (i, &v) in self.values.iter().enumerate() {
                if v != UNASSIGNED {
                    continue;
                }
                let s = self.activity[i];
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
            return best.map(|(_, i)| Lit::with_polarity(Var::new(i), self.saved_phase[i]));
        }
        let mut best: Option<(f64, usize)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v != UNASSIGNED {
                continue;
            }
            let (p, q) = self.scores[i];
            let s = p + q;
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, i));
            }
        }
        best.map(|(_, i)| {
            let (p, q) = self.scores[i];
            Lit::with_polarity(Var::new(i), p >= q)
        })
    }

    fn unassign_to(&mut self, trail_len: usize) {
        while self.trail.len() > trail_len {
            let l = self.trail.pop().expect("trail shrinks to trail_len");
            let idx = l.var().index();
            self.saved_phase[idx] = l.is_positive();
            self.values[idx] = UNASSIGNED;
            self.reasons[idx] = NO_REASON;
        }
        self.qhead = self.trail.len();
    }

    /// 1-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let current = self.current_level();
        let mut learned: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut reason = conflict;
        let mut resolve_lit: Option<Lit> = None;

        loop {
            // Skip the literal we resolved on (position irrelevant).
            let skip = resolve_lit.map(|l| l.var());
            let lits: Vec<Lit> = self.clauses[reason as usize].clone();
            for l in lits {
                if Some(l.var()) == skip {
                    continue;
                }
                let vi = l.var().index();
                if self.seen[vi] || self.levels[vi] == 0 {
                    continue;
                }
                self.seen[vi] = true;
                self.bump(l.var());
                if self.levels[vi] >= current {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Find the next trail literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    resolve_lit = Some(l);
                    break;
                }
            }
            let l = resolve_lit.expect("found a seen literal");
            self.seen[l.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !l;
                break;
            }
            reason = self.reasons[l.var().index()];
            debug_assert_ne!(reason, NO_REASON, "resolved literal must be implied");
        }

        // Clause minimisation: a non-asserting literal whose reason clause
        // lies entirely inside the learned clause (or level 0) is implied
        // by the others and can be dropped.
        let in_learned: Vec<Var> = learned.iter().map(|l| l.var()).collect();
        let mut keep: Vec<Lit> = vec![learned[0]];
        for &l in &learned[1..] {
            let reason = self.reasons[l.var().index()];
            let redundant = reason != NO_REASON
                && self.clauses[reason as usize].iter().all(|&rl| {
                    rl.var() == l.var()
                        || self.levels[rl.var().index()] == 0
                        || in_learned.contains(&rl.var())
                });
            if !redundant {
                keep.push(l);
            }
        }
        let mut learned = keep;

        for l in &learned {
            self.seen[l.var().index()] = false;
        }
        // Also clear any literal dropped by minimisation.
        for v in in_learned {
            self.seen[v.index()] = false;
        }
        // Backjump level: highest level among the non-asserting literals.
        // Move a literal of that level to position 1 so the two-watched
        // invariant holds after the jump (position 0 becomes unassigned,
        // position 1 is the most recently falsified literal).
        let mut backjump = 0u32;
        let mut second = 1usize;
        for (i, l) in learned.iter().enumerate().skip(1) {
            let level = self.levels[l.var().index()];
            if level > backjump {
                backjump = level;
                second = i;
            }
        }
        if learned.len() > 1 {
            learned.swap(1, second);
        }
        (learned, backjump)
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> u32 {
        let cid = self.clauses.len() as u32;
        debug_assert!(lits.len() >= 2);
        self.watches[lits[0].index()].push(cid);
        self.watches[lits[1].index()].push(cid);
        self.clauses.push(lits);
        self.stats.peak_clauses = self.stats.peak_clauses.max(self.clauses.len());
        cid
    }

    fn install_problem_clauses(&mut self) -> Option<Outcome> {
        if self.formula.contains_empty_clause() {
            return Some(Outcome::Unsatisfiable);
        }
        for clause in self.formula.clauses() {
            match clause.len() {
                0 => return Some(Outcome::Unsatisfiable),
                1 => {
                    if !self.enqueue(clause[0]) {
                        return Some(Outcome::Unsatisfiable);
                    }
                }
                _ => {
                    self.attach_clause(clause.clone());
                }
            }
        }
        None
    }

    fn reset(&mut self) {
        self.stats = SolverStats::default();
        self.trail.clear();
        self.frames.clear();
        self.level_starts.clear();
        self.qhead = 0;
        self.values.fill(UNASSIGNED);
        self.reasons.fill(NO_REASON);
        self.levels.fill(0);
        for w in &mut self.watches {
            w.clear();
        }
        self.clauses.clear();
        self.activity_inc = 1.0;
        self.tick = 0;
        self.fault_tick = 0;
    }

    /// Runs the search to completion or to a limit. Repeated calls restart
    /// the search from scratch.
    pub fn solve(&mut self) -> Outcome {
        self.reset();
        if let Some(early) = self.install_problem_clauses() {
            return early;
        }
        if self.options.learning {
            self.solve_cdcl()
        } else {
            self.solve_chronological()
        }
    }

    /// [`Solver::solve`] wrapped in a `sat.solve` observability span:
    /// formula size as gauges, the full [`SolverStats`] as counters, and the
    /// outcome as a note. With a disabled tracer this is exactly
    /// [`Solver::solve`] — the search loops themselves are untouched.
    pub fn solve_traced(&mut self, tracer: &Tracer) -> Outcome {
        // `is_observed`, not `is_enabled`: the always-on flight recorder
        // and histograms must see solves even when the event sink is off.
        if !tracer.is_observed() {
            return self.solve();
        }
        let _span = tracer.span("sat.solve");
        let _flight = tracer.flight_span("sat.solve");
        tracer.gauge("vars", self.formula.num_vars() as f64);
        tracer.gauge("clauses", self.formula.clause_count() as f64);
        let fault_sites = [site::SAT_ABORT, site::SAT_CONFLICT_STORM];
        let injected_before = fault_sites.map(|at| self.faults.injected_at(at));
        let outcome = self.solve();
        // Injected fault-site fires land on the flight recorder with the
        // solve's trace id, so a chaos run's aborts are attributable to
        // the request that absorbed them.
        for (at, before) in fault_sites.into_iter().zip(injected_before) {
            let fired = self.faults.injected_at(at).saturating_sub(before);
            if fired > 0 {
                tracer.flight_event(modsyn_obs::FlightKind::Fault, at, fired);
            }
        }
        let s = self.stats;
        tracer.record_hist("sat_conflicts", s.conflicts);
        tracer.record_hist("sat_decisions", s.decisions);
        tracer.counter("decisions", s.decisions);
        tracer.counter("propagations", s.propagations);
        tracer.counter("backtracks", s.backtracks);
        tracer.counter("conflicts", s.conflicts);
        tracer.counter("learned_clauses", s.learned_clauses);
        tracer.counter("learned_literals", s.learned_literals);
        tracer.counter("restarts", s.restarts);
        tracer.gauge("peak_clauses", s.peak_clauses as f64);
        tracer.gauge("max_level", s.max_level as f64);
        tracer.note(
            "outcome",
            match &outcome {
                Outcome::Satisfiable(_) => "sat",
                Outcome::Unsatisfiable => "unsat",
                Outcome::BacktrackLimit => "backtrack-limit",
                Outcome::DecisionLimit => "decision-limit",
                Outcome::Aborted => "aborted",
            },
        );
        outcome
    }

    fn build_model(&self) -> Model {
        let values = self.values.iter().map(|&v| v == 1).collect();
        let model = Model::from_values(values);
        debug_assert!(model.check(self.formula));
        model
    }

    fn solve_cdcl(&mut self) -> Outcome {
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if self.poll_cancelled() {
                return Outcome::Aborted;
            }
            if let Some(injected) = self.poll_injected() {
                return injected;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.backtracks += 1;
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if let Some(limit) = self.options.max_backtracks {
                    if self.stats.backtracks > limit {
                        return Outcome::BacktrackLimit;
                    }
                }
                if self.current_level() == 0 {
                    return Outcome::Unsatisfiable;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.stats.learned_clauses += 1;
                self.stats.learned_literals += learned.len() as u64;
                self.activity_inc *= 1.0 / 0.95;
                // Backjump.
                let target = self.level_starts[backjump as usize];
                self.unassign_to(target);
                self.level_starts.truncate(backjump as usize);
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    debug_assert_eq!(self.current_level(), backjump);
                    if !self.enqueue(assert_lit) {
                        return Outcome::Unsatisfiable;
                    }
                } else {
                    let cid = self.attach_clause(learned);
                    self.assign(assert_lit, cid);
                }
                continue;
            }

            if conflicts_since_restart >= restart_limit {
                conflicts_since_restart = 0;
                self.stats.restarts += 1;
                restart_limit = restart_limit + restart_limit / 2;
                self.unassign_to(
                    self.level_starts
                        .first()
                        .copied()
                        .unwrap_or(self.trail.len()),
                );
                self.level_starts.clear();
                continue;
            }

            let Some(lit) = self.pick_branch_lit() else {
                return Outcome::Satisfiable(self.build_model());
            };
            self.stats.decisions += 1;
            if let Some(limit) = self.options.max_decisions {
                if self.stats.decisions > limit {
                    return Outcome::DecisionLimit;
                }
            }
            self.level_starts.push(self.trail.len());
            self.stats.max_level = self.stats.max_level.max(self.level_starts.len());
            self.assign(lit, NO_REASON);
        }
    }

    fn solve_chronological(&mut self) -> Outcome {
        loop {
            if self.poll_cancelled() {
                return Outcome::Aborted;
            }
            if let Some(injected) = self.poll_injected() {
                return injected;
            }
            if let Some(conflict) = self.propagate() {
                self.stats.backtracks += 1;
                self.stats.conflicts += 1;
                if self.options.heuristic == Heuristic::Activity {
                    for l in self.clauses[conflict as usize].clone() {
                        self.bump(l.var());
                    }
                }
                if let Some(limit) = self.options.max_backtracks {
                    if self.stats.backtracks > limit {
                        return Outcome::BacktrackLimit;
                    }
                }
                loop {
                    let Some(frame) = self.frames.pop() else {
                        return Outcome::Unsatisfiable;
                    };
                    self.unassign_to(frame.trail_len);
                    self.level_starts.truncate(self.frames.len());
                    if !frame.flipped {
                        let flipped_lit = !frame.lit;
                        self.frames.push(ChronoFrame {
                            trail_len: frame.trail_len,
                            lit: flipped_lit,
                            flipped: true,
                        });
                        self.level_starts.push(self.trail.len());
                        let ok = self.enqueue(flipped_lit);
                        debug_assert!(ok, "flipped decision literal was already false");
                        break;
                    }
                }
                continue;
            }

            let Some(lit) = self.pick_branch_lit() else {
                return Outcome::Satisfiable(self.build_model());
            };
            self.stats.decisions += 1;
            if let Some(limit) = self.options.max_decisions {
                if self.stats.decisions > limit {
                    return Outcome::DecisionLimit;
                }
            }
            self.frames.push(ChronoFrame {
                trail_len: self.trail.len(),
                lit,
                flipped: false,
            });
            self.level_starts.push(self.trail.len());
            self.stats.max_level = self.stats.max_level.max(self.frames.len());
            let ok = self.enqueue(lit);
            debug_assert!(ok, "decision literal was already assigned");
        }
    }
}

/// Convenience: solve `formula` with the given options.
///
/// ```
/// use modsyn_sat::{solve, CnfFormula, Lit, SolverOptions, Var};
/// let mut f = CnfFormula::new(1);
/// f.add_clause([Lit::positive(Var::new(0))]);
/// assert!(solve(&f, SolverOptions::default()).is_sat());
/// ```
pub fn solve(formula: &CnfFormula, options: SolverOptions) -> Outcome {
    Solver::new(formula, options).solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::new(i), pos)
    }

    fn chrono() -> SolverOptions {
        SolverOptions {
            learning: false,
            ..Default::default()
        }
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, exponential for DPLL.
    fn pigeonhole(holes: usize) -> CnfFormula {
        let pigeons = holes + 1;
        let mut f = CnfFormula::new(pigeons * holes);
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..pigeons {
            f.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        f
    }

    #[test]
    fn trivially_sat_both_engines() {
        let mut f = CnfFormula::new(1);
        f.add_clause([lit(0, true)]);
        for opts in [SolverOptions::default(), chrono()] {
            let out = solve(&f, opts);
            assert!(out.is_sat());
            assert!(out.model().unwrap().value(Var::new(0)));
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let f = CnfFormula::new(3);
        assert!(solve(&f, SolverOptions::default()).is_sat());
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause([lit(0, true)]);
        f.add_clause([lit(0, false)]);
        for opts in [SolverOptions::default(), chrono()] {
            assert_eq!(solve(&f, opts), Outcome::Unsatisfiable);
        }
    }

    #[test]
    fn xor_chain_is_sat_and_model_checks() {
        let mut f = CnfFormula::new(3);
        f.add_clause([lit(0, true), lit(1, true)]);
        f.add_clause([lit(0, false), lit(1, false)]);
        f.add_clause([lit(1, true), lit(2, true)]);
        f.add_clause([lit(1, false), lit(2, false)]);
        for h in [
            Heuristic::FirstUnassigned,
            Heuristic::JeroslowWang,
            Heuristic::Moms,
            Heuristic::Activity,
        ] {
            for learning in [true, false] {
                let out = solve(
                    &f,
                    SolverOptions {
                        heuristic: h,
                        learning,
                        ..Default::default()
                    },
                );
                let model = out
                    .model()
                    .unwrap_or_else(|| panic!("{h:?}/{learning} failed"));
                assert!(model.check(&f));
            }
        }
    }

    #[test]
    fn pigeonhole_is_unsat_under_both_engines() {
        let f = pigeonhole(3);
        for opts in [SolverOptions::default(), chrono()] {
            assert_eq!(solve(&f, opts), Outcome::Unsatisfiable);
        }
    }

    #[test]
    fn cdcl_handles_larger_pigeonhole() {
        // PHP(8,7) is hopeless for plain DPLL in a test but fine for CDCL.
        let f = pigeonhole(6);
        assert_eq!(solve(&f, SolverOptions::default()), Outcome::Unsatisfiable);
    }

    #[test]
    fn backtrack_limit_aborts_hard_instances() {
        let f = pigeonhole(8);
        let out = solve(
            &f,
            SolverOptions {
                max_backtracks: Some(50),
                ..Default::default()
            },
        );
        assert_eq!(out, Outcome::BacktrackLimit);
        assert!(!out.is_decided());
    }

    #[test]
    fn decision_limit_aborts() {
        let f = pigeonhole(7);
        let out = solve(
            &f,
            SolverOptions {
                max_decisions: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(out, Outcome::DecisionLimit);
    }

    #[test]
    fn stats_are_populated() {
        let f = pigeonhole(3);
        let mut solver = Solver::new(&f, SolverOptions::default());
        let _ = solver.solve();
        let stats = solver.stats();
        assert!(stats.backtracks > 0);
        assert!(stats.decisions > 0);
        assert_eq!(stats.conflicts, stats.backtracks);
        assert!(stats.learned_clauses > 0, "CDCL must learn on conflicts");
        assert!(stats.learned_literals >= stats.learned_clauses);
        assert!(stats.peak_clauses >= f.clause_count());
    }

    #[test]
    fn chronological_mode_learns_nothing() {
        let f = pigeonhole(3);
        let mut solver = Solver::new(&f, chrono());
        let _ = solver.solve();
        let stats = solver.stats();
        assert!(stats.conflicts > 0);
        assert_eq!(stats.learned_clauses, 0);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.peak_clauses, f.clause_count());
    }

    #[test]
    fn restarts_fire_on_long_cdcl_runs() {
        let f = pigeonhole(6); // needs well over 100 conflicts
        let mut solver = Solver::new(&f, SolverOptions::default());
        let _ = solver.solve();
        assert!(solver.stats().restarts > 0);
    }

    #[test]
    fn solve_traced_records_a_span_with_counters() {
        let f = pigeonhole(3);
        let tracer = Tracer::enabled();
        let mut solver = Solver::new(&f, SolverOptions::default());
        let outcome = solver.solve_traced(&tracer);
        assert_eq!(outcome, Outcome::Unsatisfiable);
        let report = tracer.report();
        let spans = report.spans_with_prefix("sat.solve");
        assert_eq!(spans.len(), 1);
        let span = spans[0];
        assert_eq!(span.gauge("clauses"), Some(f.clause_count() as f64));
        assert!(span.counter("conflicts").unwrap() > 0);
        assert_eq!(span.note("outcome"), Some("unsat"));
    }

    #[test]
    fn solve_traced_feeds_flight_and_histograms_with_the_sink_off() {
        use modsyn_obs::{FlightKind, FlightRecorder, HistogramRegistry};
        let flight = FlightRecorder::with_capacity(1, 32);
        let hists = HistogramRegistry::new();
        let tracer = Tracer::disabled()
            .with_flight(flight.clone())
            .with_histograms(hists.clone())
            .with_trace(0x51);
        let f = pigeonhole(3);
        let mut solver = Solver::new(&f, SolverOptions::default());
        assert_eq!(solver.solve_traced(&tracer), Outcome::Unsatisfiable);
        let events = flight.events_for_trace(0x51);
        assert!(events
            .iter()
            .any(|e| e.name == "sat.solve" && e.kind == FlightKind::SpanOpen));
        assert!(events
            .iter()
            .any(|e| e.name == "sat.solve" && e.kind == FlightKind::SpanClose));
        let names: Vec<String> = hists.snapshot().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"sat_conflicts".to_string()));
        assert!(names.contains(&"sat_decisions".to_string()));
    }

    #[test]
    fn solve_traced_with_disabled_tracer_matches_solve() {
        let f = pigeonhole(3);
        let mut a = Solver::new(&f, SolverOptions::default());
        let mut b = Solver::new(&f, SolverOptions::default());
        assert_eq!(a.solve(), b.solve_traced(&Tracer::disabled()));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn repeated_solve_is_idempotent() {
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(0, true), lit(1, false)]);
        f.add_clause([lit(0, false), lit(1, true)]);
        for opts in [SolverOptions::default(), chrono()] {
            let mut solver = Solver::new(&f, opts);
            let first = solver.solve();
            let second = solver.solve();
            assert_eq!(first, second);
            assert!(first.is_sat());
        }
    }

    #[test]
    fn a_cancelled_token_aborts_both_engines() {
        let f = pigeonhole(6);
        for opts in [SolverOptions::default(), chrono()] {
            let token = CancelToken::new();
            token.cancel();
            let out = Solver::new(&f, opts).with_cancel(token).solve();
            assert_eq!(out, Outcome::Aborted);
            assert!(!out.is_decided());
        }
    }

    #[test]
    fn an_expired_deadline_aborts_a_hard_instance_quickly() {
        use std::time::{Duration, Instant};
        // PHP(10,9) takes far longer than the deadline to decide.
        let f = pigeonhole(9);
        let token = CancelToken::with_deadline(Duration::from_millis(20));
        let started = Instant::now();
        let out = Solver::new(&f, SolverOptions::default())
            .with_cancel(token)
            .solve();
        assert_eq!(out, Outcome::Aborted);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cooperative abort must land well before the instance decides"
        );
    }

    #[test]
    fn an_inert_token_changes_nothing() {
        let f = pigeonhole(3);
        let mut plain = Solver::new(&f, SolverOptions::default());
        let mut tokened =
            Solver::new(&f, SolverOptions::default()).with_cancel(CancelToken::never());
        assert_eq!(plain.solve(), tokened.solve());
        assert_eq!(plain.stats(), tokened.stats());
    }

    #[test]
    fn aborted_outcome_is_noted_by_solve_traced() {
        let f = pigeonhole(6);
        let token = CancelToken::new();
        token.cancel();
        let tracer = Tracer::enabled();
        let outcome = Solver::new(&f, SolverOptions::default())
            .with_cancel(token)
            .solve_traced(&tracer);
        assert_eq!(outcome, Outcome::Aborted);
        let report = tracer.report();
        assert_eq!(
            report.spans_with_prefix("sat.solve")[0].note("outcome"),
            Some("aborted")
        );
    }

    #[test]
    fn an_armed_abort_fault_aborts_both_engines() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let f = pigeonhole(6);
        for opts in [SolverOptions::default(), chrono()] {
            let faults = FaultPlan::new("t", 1)
                .rule(FaultRule::at(site::SAT_ABORT))
                .arm();
            let out = Solver::new(&f, opts).with_faults(faults.clone()).solve();
            assert_eq!(out, Outcome::Aborted);
            assert_eq!(faults.injected_at(site::SAT_ABORT), 1);
        }
    }

    #[test]
    fn a_conflict_storm_fault_reports_the_backtrack_limit() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let f = pigeonhole(6);
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_CONFLICT_STORM))
            .arm();
        let out = Solver::new(&f, SolverOptions::default())
            .with_faults(faults)
            .solve();
        assert_eq!(out, Outcome::BacktrackLimit);
    }

    #[test]
    fn an_exhausted_fault_budget_lets_the_search_finish() {
        use modsyn_fault::{FaultPlan, FaultRule};
        let f = pigeonhole(3);
        let faults = FaultPlan::new("t", 1)
            .rule(FaultRule::at(site::SAT_ABORT).times(1))
            .arm();
        let mut solver = Solver::new(&f, SolverOptions::default()).with_faults(faults.clone());
        assert_eq!(solver.solve(), Outcome::Aborted);
        // The single-shot budget is spent; the retry decides the instance.
        assert_eq!(solver.solve(), Outcome::Unsatisfiable);
        assert_eq!(faults.total_injected(), 1);
    }

    #[test]
    fn a_disarmed_handle_changes_nothing() {
        let f = pigeonhole(3);
        let mut plain = Solver::new(&f, SolverOptions::default());
        let mut handled = Solver::new(&f, SolverOptions::default()).with_faults(Faults::none());
        assert_eq!(plain.solve(), handled.solve());
        assert_eq!(plain.stats(), handled.stats());
    }

    #[test]
    fn random_3sat_agreement_between_engines() {
        // Both engines must agree on satisfiability of small random
        // instances.
        let mut seed = 0x853c49e6748fea9bu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..30 {
            let n = 8;
            let clauses = 3 + (next() % 40) as usize;
            let mut f = CnfFormula::new(n);
            for _ in 0..clauses {
                let a = lit((next() % n as u64) as usize, next() % 2 == 0);
                let b = lit((next() % n as u64) as usize, next() % 2 == 0);
                let c = lit((next() % n as u64) as usize, next() % 2 == 0);
                f.add_clause([a, b, c]);
            }
            let cdcl = solve(&f, SolverOptions::default());
            let dpll = solve(&f, chrono());
            assert_eq!(cdcl.is_sat(), dpll.is_sat(), "round {round}");
            if let Outcome::Satisfiable(m) = &cdcl {
                assert!(m.check(&f));
            }
        }
    }
}
