//! Error type for SAT parsing.

use std::error::Error;
use std::fmt;

/// Errors raised while parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    MalformedHeader {
        /// The offending line.
        line: String,
    },
    /// A token could not be parsed as a literal.
    MalformedLiteral {
        /// The offending token.
        token: String,
    },
    /// A literal referenced a variable beyond the header's declaration.
    VariableOutOfRange {
        /// 1-based DIMACS variable number.
        variable: i32,
        /// Declared variable count.
        declared: usize,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatError::MalformedHeader { line } => {
                write!(f, "malformed dimacs header: {line:?}")
            }
            SatError::MalformedLiteral { token } => {
                write!(f, "malformed dimacs literal: {token:?}")
            }
            SatError::VariableOutOfRange { variable, declared } => {
                write!(
                    f,
                    "variable {variable} out of range, header declared {declared}"
                )
            }
        }
    }
}

impl Error for SatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SatError::VariableOutOfRange {
            variable: 9,
            declared: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }
}
