//! Solver run statistics.

use std::fmt;

/// Counters accumulated over one [`crate::Solver::solve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Chronological backtracks (conflicts).
    pub backtracks: u64,
    /// Conflicting clauses encountered (equals `backtracks` today; kept
    /// separate so the semantics survive future non-chronological modes).
    pub conflicts: u64,
    /// Clauses learned by conflict analysis (CDCL mode only; includes unit
    /// learns that never enter the clause database).
    pub learned_clauses: u64,
    /// Total literals across all learned clauses (after minimisation).
    pub learned_literals: u64,
    /// Restarts performed (CDCL mode only).
    pub restarts: u64,
    /// Largest clause-database size reached (problem + learned clauses).
    pub peak_clauses: usize,
    /// Highest decision level reached.
    pub max_level: usize,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} backtracks={} conflicts={} learned_clauses={} \
             learned_literals={} restarts={} peak_clauses={} max_level={}",
            self.decisions,
            self.propagations,
            self.backtracks,
            self.conflicts,
            self.learned_clauses,
            self.learned_literals,
            self.restarts,
            self.peak_clauses,
            self.max_level
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_all_counters() {
        let s = SolverStats {
            decisions: 1,
            propagations: 2,
            backtracks: 3,
            conflicts: 4,
            learned_clauses: 5,
            learned_literals: 6,
            restarts: 7,
            peak_clauses: 8,
            max_level: 9,
        };
        let text = s.to_string();
        for needle in [
            "decisions=1",
            "propagations=2",
            "backtracks=3",
            "conflicts=4",
            "learned_clauses=5",
            "learned_literals=6",
            "restarts=7",
            "peak_clauses=8",
            "max_level=9",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn display_order_is_stable() {
        let text = SolverStats::default().to_string();
        let keys: Vec<&str> = text
            .split_whitespace()
            .map(|kv| kv.split('=').next().unwrap())
            .collect();
        assert_eq!(
            keys,
            [
                "decisions",
                "propagations",
                "backtracks",
                "conflicts",
                "learned_clauses",
                "learned_literals",
                "restarts",
                "peak_clauses",
                "max_level"
            ]
        );
    }
}
