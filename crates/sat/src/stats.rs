//! Solver run statistics.

use std::fmt;

/// Counters accumulated over one [`crate::Solver::solve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Chronological backtracks (conflicts).
    pub backtracks: u64,
    /// Highest decision level reached.
    pub max_level: usize,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} backtracks={} max_level={}",
            self.decisions, self.propagations, self.backtracks, self.max_level
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_all_counters() {
        let s = SolverStats { decisions: 1, propagations: 2, backtracks: 3, max_level: 4 };
        let text = s.to_string();
        for needle in ["decisions=1", "propagations=2", "backtracks=3", "max_level=4"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
