//! A deliberately small HTTP/1.1 subset on `std::io` streams.
//!
//! The service speaks one-request-per-connection HTTP/1.1 (every response
//! carries `Connection: close`), which removes keep-alive bookkeeping from
//! the drain path: a connection is done exactly when its handler returns.
//! The parser is hardened rather than featureful — every malformed input
//! maps to a *typed* [`HttpError`] with a definite status code, so the
//! server can always answer with a 4xx instead of panicking or hanging:
//!
//! * head larger than [`Limits::max_head`] → 431,
//! * declared or actual body larger than [`Limits::max_body`] → 413,
//! * unparsable `Content-Length` → 400 (absent means an empty body, per
//!   RFC 7230 §3.3.3 — routes that require a body answer 411 themselves),
//! * `Transfer-Encoding` (chunked uploads) → 501,
//! * non-HTTP/1.x version → 505,
//! * truncated head or body (peer hung up early) → 400.

use std::io::{self, Read, Write};

/// Parser limits; both have conservative service-wide defaults.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond).
    pub max_head: usize,
    /// Maximum request body bytes (413 beyond).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// Everything that can go wrong while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a complete request arrived.
    Truncated,
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// A header line has no `:` separator.
    BadHeader,
    /// The version is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion,
    /// Request line + headers exceed [`Limits::max_head`].
    HeadTooLarge(usize),
    /// Declared or received body exceeds [`Limits::max_body`].
    BodyTooLarge(usize),
    /// A body-carrying method without `Content-Length`.
    LengthRequired,
    /// `Content-Length` is not a decimal number.
    BadContentLength,
    /// `Transfer-Encoding` is present (chunked bodies are unsupported).
    UnsupportedTransferEncoding,
    /// The socket itself failed (timeout, reset); no response is owed.
    Io(io::Error),
}

impl HttpError {
    /// The status line this error earns, or `None` when the socket is dead
    /// and writing a response is pointless.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Truncated => Some((400, "Bad Request")),
            HttpError::BadRequestLine => Some((400, "Bad Request")),
            HttpError::BadHeader => Some((400, "Bad Request")),
            HttpError::UnsupportedVersion => Some((505, "HTTP Version Not Supported")),
            HttpError::HeadTooLarge(_) => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge(_) => Some((413, "Content Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::BadContentLength => Some((400, "Bad Request")),
            HttpError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
            // A read timeout is a slow client; it is owed a 408 if the
            // socket will still take one. Other socket failures are not
            // answerable at all.
            HttpError::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Some((408, "Request Timeout"))
            }
            HttpError::Io(_) => None,
        }
    }

    /// A short machine-readable tag for error bodies and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            HttpError::Truncated => "truncated",
            HttpError::BadRequestLine => "bad-request-line",
            HttpError::BadHeader => "bad-header",
            HttpError::UnsupportedVersion => "unsupported-version",
            HttpError::HeadTooLarge(_) => "head-too-large",
            HttpError::BodyTooLarge(_) => "body-too-large",
            HttpError::LengthRequired => "length-required",
            HttpError::BadContentLength => "bad-content-length",
            HttpError::UnsupportedTransferEncoding => "unsupported-transfer-encoding",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::HeadTooLarge(n) => write!(f, "request head exceeds {n} bytes"),
            HttpError::BodyTooLarge(n) => write!(f, "request body exceeds {n} bytes"),
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::BadContentLength => write!(f, "unparsable Content-Length"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request: method, split target, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names and trimmed values.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Splits `a=1&b=2` into pairs, percent-decoding `%xx` and `+`.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads one request from `stream` under `limits`.
///
/// # Errors
///
/// A typed [`HttpError`]; callers map it to a status via
/// [`HttpError::status`].
pub fn read_request(stream: &mut impl Read, limits: &Limits) -> Result<Request, HttpError> {
    let head = read_head(stream, limits.max_head)?;
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n");

    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::BadRequestLine);
    }

    let (path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let query = parse_query(raw_query);

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }

    // Per RFC 7230 §3.3.3 a request without Content-Length (and without
    // Transfer-Encoding) has an empty body — `curl -X POST` sends exactly
    // that. Routes that *need* a body answer 411 themselves.
    let content_length = headers.iter().find(|(k, _)| k == "content-length");
    let body = match content_length {
        None => Vec::new(),
        Some((_, v)) => {
            let n: usize = v.parse().map_err(|_| HttpError::BadContentLength)?;
            if n > limits.max_body {
                return Err(HttpError::BodyTooLarge(limits.max_body));
            }
            let mut body = vec![0u8; n];
            read_exact_or_truncated(stream, &mut body)?;
            body
        }
    };

    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query,
        headers,
        body,
    })
}

/// Reads until the `\r\n\r\n` head terminator, capped at `max_head` bytes.
fn read_head(stream: &mut impl Read, max_head: usize) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > max_head {
                    return Err(HttpError::HeadTooLarge(max_head));
                }
                if head.ends_with(b"\r\n\r\n") {
                    head.truncate(head.len() - 4);
                    return Ok(head);
                }
                // Be liberal: accept bare-LF line endings too.
                if head.ends_with(b"\n\n") {
                    head.truncate(head.len() - 2);
                    let mut normalised = Vec::with_capacity(head.len());
                    for &b in &head {
                        if b == b'\n' && normalised.last() != Some(&b'\r') {
                            normalised.extend_from_slice(b"\r\n");
                        } else {
                            normalised.push(b);
                        }
                    }
                    return Ok(normalised);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

fn read_exact_or_truncated(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(())
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers (`Content-Length`, `Connection` are added on write).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`/`reason`.
    pub fn new(status: u16, reason: &'static str) -> Response {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        let mut r = Response::new(status, reason);
        r.headers
            .push(("Content-Type".into(), "text/plain; charset=utf-8".into()));
        r.body = body.into().into_bytes();
        r
    }

    /// An `application/json` response from pre-rendered bytes.
    pub fn json_bytes(status: u16, reason: &'static str, body: Vec<u8>) -> Response {
        let mut r = Response::new(status, reason);
        r.headers
            .push(("Content-Type".into(), "application/json".into()));
        r.body = body;
        r
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialises the response (adding `Content-Length` and
    /// `Connection: close`) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `write` failure.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_query_and_body() {
        let req = parse(
            b"POST /synth?method=modular&x=a%20b HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synth");
        assert_eq!(req.query_param("method"), Some("modular"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn accepts_bare_lf_heads() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: h\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn typed_errors_for_malformed_inputs() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequestLine)));
        assert!(matches!(
            parse(b"GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        ));
        // No Content-Length means an empty body, not an error (RFC 7230).
        assert!(parse(b"POST /x HTTP/1.1\r\n\r\n").unwrap().body.is_empty());
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nBadHeader\r\n\r\n"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn limits_are_enforced() {
        let small = Limits {
            max_head: 32,
            max_body: 4,
        };
        let mut big_head =
            io::Cursor::new(b"GET /aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n\r\n".to_vec());
        assert!(matches!(
            read_request(&mut big_head, &small),
            Err(HttpError::HeadTooLarge(32))
        ));
        let body_only = Limits {
            max_head: 1024,
            max_body: 4,
        };
        let mut big_body =
            io::Cursor::new(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec());
        assert!(matches!(
            read_request(&mut big_body, &body_only),
            Err(HttpError::BodyTooLarge(4))
        ));
    }

    #[test]
    fn response_carries_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "OK", "hi")
            .with_header("X-Test", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
