//! The synthesis server: accept loop, routing, admission control, drain.
//!
//! ## Request lifecycle (`POST /synth`)
//!
//! 1. The accept loop hands the connection to a handler thread (bounded by
//!    [`ServerConfig::max_connections`]; beyond it the listener answers
//!    503 inline without spawning).
//! 2. The handler parses the request ([`crate::http`]) — every malformed
//!    input is a typed 4xx/5xx, and a handler panic is contained by a
//!    `catch_unwind` guard, so nothing a client sends can take down the
//!    accept loop.
//! 3. The request is assigned a **trace id** — the client's
//!    `X-Modsyn-Trace` header when it sent one, a fresh id otherwise. The
//!    id is stamped on every flight-recorder event the request produces
//!    (svc accept → pool run → retry ladder → SAT solve), echoed back as
//!    an `X-Modsyn-Trace` response header, written to the JSON access log,
//!    and queryable via `GET /debug/flight?trace=<hex>`.
//! 4. The body is parsed as a `.g` STG and hashed
//!    ([`modsyn_stg::stg_digest`] ⊕ method) into the response cache. A hit
//!    returns the previously certified body verbatim (`X-Modsyn-Cache:
//!    hit`) without touching the pool.
//! 5. A miss passes **admission control**: at most
//!    [`ServerConfig::queue_capacity`] jobs may be admitted-but-unstarted;
//!    beyond that the request is shed with `503` + `Retry-After` instead
//!    of queueing unboundedly. The admission ticket is an RAII
//!    [`GaugeGuard`], so a job the pool never runs (injected panic,
//!    dropped closure) still gives its slot back.
//! 6. Admitted jobs run on the shared [`WorkerPool`] under a
//!    [`CancelToken`] deadline — the smaller of the server-wide
//!    [`ServerConfig::request_timeout`] and the client's `timeout_ms`
//!    query parameter. A deadline that fires surfaces as `504`. Capacity
//!    failures (backtrack limit, injected solver aborts) climb the
//!    deterministic retry ladder (`modsyn::synthesize_with_retry_traced`,
//!    with the lavagno fallback disabled so the response method always
//!    matches the request) before the client sees an error.
//! 7. Every successful synthesis is certified against the independent
//!    `modsyn-check` oracle (consistency, CSC, speed independence,
//!    observation equivalence to the specification) *before* the 200 is
//!    written; an oracle rejection is a 500 and a `check_failures` metric
//!    — the service never serves an uncertified circuit.
//!
//! Response bodies are deterministic (no timestamps or timing fields), so
//! identical requests produce byte-identical bodies whether computed or
//! cached; per-run timing travels in the `X-Modsyn-Cpu-Us` header only.
//!
//! ## Always-on observability
//!
//! The tracer handed to [`Server::bind`] is extended with a
//! [`FlightRecorder`] (fixed-memory, lock-free; dumped by
//! `GET /debug/flight`) and the metrics block's histogram registry
//! (per-endpoint × per-method request latency, queue wait, synthesis cpu
//! time, pool wait, solver effort — rendered as quantile lines on
//! `GET /metrics`). Both stay on in production; neither allocates or
//! locks on the hot path.
//!
//! ## Drain
//!
//! [`ServerHandle::shutdown`] (wired to `POST /shutdown`) stops the accept
//! loop, then [`Server::run`] waits for open connections and admitted jobs
//! to finish before returning — SIGTERM-style semantics without signal
//! handlers, which `std` does not expose.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use modsyn::{certify_report, Method, RetryPolicy, SynthesisError, SynthesisOptions};
use modsyn_fault::{site, FaultHook, Faults};
use modsyn_obs::{FlightEvent, FlightKind, FlightRecorder, Json, Tracer};
use modsyn_par::{CancelToken, WorkerPool};
use modsyn_petri::NetClass;
use modsyn_stg::{parse_g, stg_digest, Stg};
use modsyn_store::{
    restore_into, snapshot_from_json, snapshot_to_json, write_atomic, DurableConfig, DurableStore,
    Provenance, StoreLink, StoreMutation, StoreSession, SynthRecord, SynthStore,
};

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::{cache_key, CacheConfig, ShardedLru};
use crate::http::{read_request, Limits, Request, Response};
use crate::metrics::{Gauge, GaugeGuard, Metrics};

/// Where the per-request JSON access log goes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum AccessLog {
    /// No access log (the default for embedded/test servers).
    #[default]
    Off,
    /// One JSON line per request on stderr (the `modsynd` default).
    Stderr,
    /// Append JSON lines to this file.
    File(PathBuf),
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Synthesis pool workers.
    pub jobs: usize,
    /// Admitted-but-unstarted job bound; beyond it `/synth` sheds with 503.
    pub queue_capacity: usize,
    /// Open-connection bound; beyond it the listener answers 503 inline.
    pub max_connections: usize,
    /// Response cache bounds.
    pub cache: CacheConfig,
    /// Server-wide deadline for one synthesis run (`None` = unlimited).
    /// The client's `timeout_ms` query parameter can only shorten it.
    pub request_timeout: Option<Duration>,
    /// Socket read/write timeout (slowloris guard).
    pub io_timeout: Duration,
    /// How long [`Server::run`] waits for in-flight work on drain.
    pub drain_timeout: Duration,
    /// HTTP parser limits (head/body caps).
    pub limits: Limits,
    /// SAT backtrack limit forwarded to the solver (`None` = crate
    /// default). The Table-1 `direct` rows need a finite limit to fail
    /// fast instead of spinning for hours.
    pub backtrack_limit: Option<u64>,
    /// Per-method circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Fault-injection handle probed at the svc sites (`svc.*`,
    /// `cache.evict-storm`) and threaded into each synthesis run's
    /// `sat.*` sites. Inert by default.
    pub faults: Faults,
    /// Flight-recorder ring capacity per shard (the recorder keeps
    /// [`modsyn_obs::DEFAULT_SHARDS`] shards of this many slots).
    pub flight_slots: usize,
    /// Per-request access-log destination.
    pub access_log: AccessLog,
    /// Synthesis-store persistence: reload this snapshot at bind (when the
    /// file exists) and write it back after a graceful drain, so module
    /// solves, provenance records and cached response bodies survive a
    /// restart. `None` (the default) keeps the store memory-only.
    /// Ignored when [`ServerConfig::durable`] is set.
    pub store_snapshot: Option<PathBuf>,
    /// Crash-safe persistence: a write-ahead journal plus atomic snapshot
    /// generations in this directory. Recovery (snapshot load + journal
    /// replay) runs on a background thread after bind; `/synth` answers
    /// 503 + `Retry-After` and `/readyz` stays 503 until it finishes.
    /// Unlike [`ServerConfig::store_snapshot`], warm state survives a
    /// `kill -9`, not just a graceful drain.
    pub durable: Option<DurableConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: modsyn_par::available_jobs(),
            queue_capacity: 64,
            max_connections: 256,
            cache: CacheConfig::default(),
            request_timeout: Some(Duration::from_secs(60)),
            io_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(30),
            limits: Limits::default(),
            backtrack_limit: None,
            breaker: BreakerConfig::default(),
            faults: Faults::none(),
            flight_slots: modsyn_obs::DEFAULT_SLOTS,
            access_log: AccessLog::Off,
            store_snapshot: None,
            durable: None,
        }
    }
}

/// The splitmix64 finalizer: a cheap bijective mixer good enough to make
/// sequential trace ids look unrelated.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug)]
enum AccessSink {
    Off,
    Stderr,
    File(Mutex<std::fs::File>),
}

struct Shared {
    config: ServerConfig,
    pool: WorkerPool,
    cache: ShardedLru<Arc<Vec<u8>>>,
    metrics: Arc<Metrics>,
    tracer: Tracer,
    flight: FlightRecorder,
    shutting_down: AtomicBool,
    /// True while background snapshot+journal recovery is still replaying;
    /// `/synth` sheds and `/readyz` answers 503 until it clears.
    recovering: AtomicBool,
    /// The synthesis store: per-module solves keyed by exact quotient
    /// renderings, plus per-benchmark provenance records for `/explain`.
    store: Arc<SynthStore>,
    /// One breaker per method, indexed by [`method_tag`].
    breakers: [CircuitBreaker; 4],
    /// Fresh-trace-id counter, mixed with `trace_salt` so ids from
    /// different server instances do not collide on restart.
    trace_seq: AtomicU64,
    trace_salt: u64,
    access: AccessSink,
}

impl Shared {
    fn injected_fault(&self, at: &'static str) {
        self.metrics.count(
            &self.metrics.injected_faults,
            &self.tracer,
            "injected_faults",
        );
        self.tracer.flight_event(FlightKind::Fault, at, 1);
    }

    /// A fresh nonzero trace id (0 means "untraced" throughout).
    fn next_trace(&self) -> u64 {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        mix64(self.trace_salt ^ seq).max(1)
    }

    /// Writes one structured access-log line, if a sink is configured.
    fn log_access(
        &self,
        trace: u64,
        method: &str,
        path: &str,
        status: u16,
        latency_us: u64,
        endpoint: &str,
    ) {
        if matches!(self.access, AccessSink::Off) {
            return;
        }
        let line = Json::obj([
            ("trace", Json::from(format!("{trace:016x}"))),
            ("method", Json::from(method)),
            ("path", Json::from(path)),
            ("status", Json::from(u64::from(status))),
            ("latency_us", Json::from(latency_us)),
            ("endpoint", Json::from(endpoint)),
        ])
        .to_string();
        match &self.access {
            AccessSink::Off => {}
            AccessSink::Stderr => eprintln!("{line}"),
            AccessSink::File(file) => {
                use std::io::Write as _;
                let mut file = file
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let _ = writeln!(file, "{line}");
            }
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] consumes it.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The always-on flight recorder (the same rings `GET /debug/flight`
    /// dumps).
    pub fn flight(&self) -> FlightRecorder {
        self.shared.flight.clone()
    }

    /// The synthesis store behind `/synth`, `/synth/incr` and `/explain`.
    pub fn store(&self) -> Arc<SynthStore> {
        Arc::clone(&self.shared.store)
    }

    /// Initiates a graceful drain: stop accepting, finish what's running.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return; // already draining
        }
        self.shared.tracer.note("shutdown", "requested");
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `config.addr` and builds the pool, cache, metrics and flight
    /// recorder. The given tracer is extended with the recorder and the
    /// metrics histograms, so the pool, retry ladder and solver all feed
    /// the always-on planes whether or not the event sink is enabled.
    ///
    /// # Errors
    ///
    /// The bind failure verbatim, or opening the access-log file.
    pub fn bind(config: ServerConfig, tracer: Tracer) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let flight = FlightRecorder::with_capacity(modsyn_obs::DEFAULT_SHARDS, config.flight_slots);
        let tracer = tracer
            .with_flight(flight.clone())
            .with_histograms(metrics.hists.clone());
        let pool =
            WorkerPool::with_tracer_and_faults(config.jobs, tracer.clone(), config.faults.clone());
        let cache = ShardedLru::new(&config.cache).with_faults(config.faults.clone());
        let store = Arc::new(SynthStore::new());
        let mut legacy_snapshot_corrupt = false;
        if let Some(path) = config.store_snapshot.as_ref().filter(|p| {
            // The journaled store supersedes the drain-only snapshot.
            config.durable.is_none() && p.exists()
        }) {
            // A corrupt snapshot is a recovery event, not a bind failure:
            // starting cold only costs warmth — everything is re-derived
            // and re-certified on the next miss.
            let loaded = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| modsyn_obs::parse_json(&text).map_err(|e| e.to_string()))
                .and_then(|doc| snapshot_from_json(&doc));
            match loaded {
                Ok(data) => {
                    restore_into(&store, &data);
                    for (key, body) in &data.responses {
                        let bytes = body.len();
                        cache.insert(*key, Arc::new(body.clone().into_bytes()), bytes);
                    }
                    tracer.note("store", "snapshot-loaded");
                }
                Err(e) => {
                    legacy_snapshot_corrupt = true;
                    tracer.note("store", &format!("snapshot-corrupt: {e}; starting cold"));
                    tracer.flight_event(FlightKind::Fault, "store.snapshot-corrupt", 1);
                }
            }
        }
        let access = match &config.access_log {
            AccessLog::Off => AccessSink::Off,
            AccessLog::Stderr => AccessSink::Stderr,
            AccessLog::File(path) => AccessSink::File(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
        };
        let trace_salt = {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64);
            mix64(nanos ^ u64::from(std::process::id()))
        };
        let now = Instant::now();
        let breakers = [(); 4].map(|()| CircuitBreaker::new(config.breaker, now));
        let durable_config = config.durable.clone();
        let shared = Arc::new(Shared {
            config,
            pool,
            cache,
            metrics,
            tracer,
            flight,
            shutting_down: AtomicBool::new(false),
            recovering: AtomicBool::new(durable_config.is_some()),
            store,
            breakers,
            trace_seq: AtomicU64::new(0),
            trace_salt,
            access,
        });
        if legacy_snapshot_corrupt {
            shared
                .metrics
                .recovery_snapshot_fallbacks
                .store(1, Ordering::Relaxed);
        }
        if let Some(durable) = durable_config {
            // Recovery (snapshot load + journal replay) runs off the bind
            // path so a large journal never delays the port appearing;
            // `/readyz` reports 503 and `/synth` sheds until it finishes.
            let s = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("modsynd-recover".to_string())
                .spawn({
                    let durable = durable.clone();
                    move || recover_durable(&s, durable)
                });
            if spawned.is_err() {
                recover_durable(&shared, durable);
            }
        }
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control valid for the server's whole life.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] (or `POST
    /// /shutdown`), then drains: waits for open connections and admitted
    /// jobs, bounded by [`ServerConfig::drain_timeout`].
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are handled.
    pub fn run(self) -> std::io::Result<()> {
        let _span = self.shared.tracer.span("serve");
        let addr = self.addr;
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept errors (EMFILE, ECONNABORTED) must not
                // kill the loop.
                Err(_) => continue,
            };
            if self.shared.config.faults.fire(site::SVC_ACCEPT) {
                // Injected accept failure: drop the connection on the
                // floor, exactly the transient-error branch above.
                self.shared.injected_fault(site::SVC_ACCEPT);
                continue;
            }
            self.shared.metrics.count(
                &self.shared.metrics.requests,
                &self.shared.tracer,
                "requests",
            );

            let open = self
                .shared
                .metrics
                .connections
                .fetch_add(1, Ordering::AcqRel);
            let guard = GaugeGuard::adopt(Arc::clone(&self.shared.metrics), Gauge::Connections);
            if open as usize >= self.shared.config.max_connections {
                // Over the connection bound: shed inline, never spawn.
                self.shared
                    .metrics
                    .count(&self.shared.metrics.shed, &self.shared.tracer, "shed");
                Self::try_write(&stream, &shed_response(), &self.shared.config);
                drop(guard);
                continue;
            }

            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name("modsynd-conn".to_string())
                .spawn(move || {
                    let shared = shared; // owns guard + shared for the whole connection
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        handle_connection(&shared, addr, &stream);
                    }));
                    if result.is_err() {
                        shared.metrics.count(
                            &shared.metrics.panics,
                            &shared.tracer,
                            "handler_panics",
                        );
                        Self::try_write(
                            &stream,
                            &error_response(
                                500,
                                "Internal Server Error",
                                "panic",
                                "handler panicked",
                            ),
                            &shared.config,
                        );
                    }
                    drop(guard);
                });
            if spawned.is_err() {
                // Thread spawn failed (resource exhaustion): shed.
                self.shared
                    .metrics
                    .count(&self.shared.metrics.shed, &self.shared.tracer, "shed");
                // The guard moved into the failed closure was dropped with it.
            }
        }

        // Drain: connections first (each may still admit a job), then jobs.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        let m = &self.shared.metrics;
        while Instant::now() < deadline {
            let busy = m.connections.load(Ordering::Acquire)
                + m.queue_depth.load(Ordering::Acquire)
                + m.in_flight.load(Ordering::Acquire);
            if busy == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.tracer.note("shutdown", "drained");

        // Persist the store (and the response cache riding in the same
        // snapshot) only after the drain: every admitted job has finished,
        // so the snapshot is a consistent post-quiescence view.
        if let Some(d) = self.shared.store.durable() {
            // Final checkpoint: the next start recovers from the snapshot
            // alone, with an (ideally) empty journal suffix to replay.
            let shared = &self.shared;
            match d.checkpoint(|| (shared.store.snapshot(), cache_entries(&shared.cache))) {
                Ok(()) => shared.tracer.note("store", "final-checkpoint"),
                Err(e) => shared
                    .tracer
                    .note("store", &format!("final checkpoint failed: {e}")),
            }
        } else if let Some(path) = &self.shared.config.store_snapshot {
            let snap = self.shared.store.snapshot();
            let responses = cache_entries(&self.shared.cache);
            // Atomic (temp + fsync + rename): a crash mid-write leaves the
            // previous snapshot intact, never a torn file.
            write_atomic(
                path,
                snapshot_to_json(&snap, &responses).pretty().as_bytes(),
            )?;
            self.shared.tracer.note("store", "snapshot-saved");
        }
        Ok(())
    }

    fn try_write(stream: &TcpStream, response: &Response, config: &ServerConfig) {
        let _ = stream.set_write_timeout(Some(config.io_timeout));
        let mut stream = stream;
        let _ = response.write_to(&mut stream);
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Startup recovery for the journaled store: newest valid snapshot
/// generation, journal-suffix replay, then the journal attaches for
/// write-ahead appends. The typed report lands in `/metrics`
/// (`modsynd_recovery_*`) and the flight recorder. Runs with
/// `Shared::recovering` raised; clears it last.
fn recover_durable(shared: &Arc<Shared>, config: DurableConfig) {
    match DurableStore::open(config, shared.config.faults.clone()) {
        Ok((durable, data, report)) => {
            restore_into(&shared.store, &data);
            for (key, body) in &data.responses {
                let bytes = body.len();
                shared
                    .cache
                    .insert(*key, Arc::new(body.clone().into_bytes()), bytes);
            }
            // Attach only after the restore, so replay is not re-journaled.
            shared.store.attach_durable(durable);
            let m = &shared.metrics;
            m.recovery_frames_replayed
                .store(report.frames_replayed, Ordering::Relaxed);
            m.recovery_frames_truncated
                .store(report.frames_truncated, Ordering::Relaxed);
            m.recovery_checksum_failures
                .store(report.checksum_failures, Ordering::Relaxed);
            m.recovery_snapshot_fallbacks
                .store(report.snapshot_fallbacks, Ordering::Relaxed);
            let t = &shared.tracer;
            t.flight_event(
                FlightKind::Counter,
                "store.recovery_frames_replayed",
                report.frames_replayed,
            );
            t.flight_event(
                FlightKind::Counter,
                "store.recovery_frames_truncated",
                report.frames_truncated,
            );
            if report.snapshot_fallbacks > 0 {
                t.flight_event(FlightKind::Fault, "store.snapshot-corrupt", 1);
            }
            t.note(
                "store",
                &format!(
                    "recovered: snapshot={} fallbacks={} replayed={} skipped={} truncated={} \
                     checksum_failures={} wal_seq={}",
                    report.snapshot_loaded,
                    report.snapshot_fallbacks,
                    report.frames_replayed,
                    report.frames_skipped,
                    report.frames_truncated,
                    report.checksum_failures,
                    report.wal_seq,
                ),
            );
        }
        Err(e) => {
            // A real I/O failure (permissions, full disk — not corruption,
            // which the open itself absorbs): serve memory-only rather
            // than not at all. Durability degrades; certification doesn't.
            shared
                .tracer
                .note("store", &format!("durable open failed: {e}; memory-only"));
        }
    }
    shared.recovering.store(false, Ordering::Release);
}

/// The response cache as snapshot entries `(key, body)`.
fn cache_entries(cache: &ShardedLru<Arc<Vec<u8>>>) -> Vec<(u128, String)> {
    cache
        .entries()
        .into_iter()
        .map(|(k, v)| (k, String::from_utf8_lossy(&v).into_owned()))
        .collect()
}

fn shed_response() -> Response {
    error_response(
        503,
        "Service Unavailable",
        "overloaded",
        "admission queue is full",
    )
    .with_header("Retry-After", "1")
}

fn error_response(status: u16, reason: &'static str, tag: &str, detail: &str) -> Response {
    let body = Json::obj([("error", Json::from(tag)), ("detail", Json::from(detail))]);
    let mut rendered = String::new();
    body.write(&mut rendered);
    Response::json_bytes(status, reason, rendered.into_bytes())
}

/// The latency-histogram registry name for a request. `/synth` is keyed
/// by the *validated* method parameter — an arbitrary client string must
/// not mint unbounded histogram names.
fn request_hist_name(request: &Request) -> &'static str {
    match request.path.as_str() {
        "/synth" => match request.query_param("method").unwrap_or("modular") {
            "modular" => "request_us:synth:modular",
            "modular-min-area" => "request_us:synth:modular-min-area",
            "direct" => "request_us:synth:direct",
            "lavagno" => "request_us:synth:lavagno",
            _ => "request_us:other",
        },
        "/synth/incr" => "request_us:incr",
        "/explain" => "request_us:explain",
        "/metrics" => "request_us:metrics",
        "/healthz" => "request_us:healthz",
        "/readyz" => "request_us:readyz",
        "/debug/flight" => "request_us:flight",
        "/shutdown" => "request_us:shutdown",
        _ => "request_us:other",
    }
}

fn handle_connection(shared: &Arc<Shared>, addr: SocketAddr, stream: &TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    if shared.config.faults.fire(site::SVC_READ_TORN) {
        // Injected torn read: hang up before reading; the client sees a
        // premature EOF.
        shared.injected_fault(site::SVC_READ_TORN);
        return;
    }
    let mut reader = stream;
    let request = match read_request(&mut reader, &shared.config.limits) {
        Ok(r) => r,
        Err(e) => {
            shared
                .metrics
                .count(&shared.metrics.http_errors, &shared.tracer, "http_errors");
            let trace = shared.next_trace();
            let mut status = 0u16;
            if let Some((code, reason)) = e.status() {
                status = code;
                let response = error_response(code, reason, e.tag(), &e.to_string())
                    .with_header("X-Modsyn-Trace", format!("{trace:016x}"));
                Server::try_write(stream, &response, &shared.config);
            }
            let latency_us = started.elapsed().as_micros() as u64;
            shared.metrics.hists.record("request_us:other", latency_us);
            shared.log_access(trace, "", "", status, latency_us, "unparsed");
            return;
        }
    };

    // Trace id: honour a well-formed caller-supplied X-Modsyn-Trace
    // (16-digit hex, nonzero), assign a fresh one otherwise.
    let trace = request
        .header("x-modsyn-trace")
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
        .filter(|&t| t != 0)
        .unwrap_or_else(|| shared.next_trace());
    let tracer = shared.tracer.with_trace(trace);

    let response = {
        let _request_span = tracer.flight_span("svc.request");
        route(shared, addr, &request, &tracer)
    };

    let latency_us = started.elapsed().as_micros() as u64;
    let hist = request_hist_name(&request);
    shared.metrics.hists.record(hist, latency_us);
    let endpoint = hist.strip_prefix("request_us:").unwrap_or(hist);
    shared.log_access(
        trace,
        &request.method,
        &request.path,
        response.status,
        latency_us,
        endpoint,
    );
    let response = response.with_header("X-Modsyn-Trace", format!("{trace:016x}"));

    if let Some(delay) = shared.config.faults.stall(site::SVC_SLOW_PEER) {
        shared.injected_fault(site::SVC_SLOW_PEER);
        std::thread::sleep(delay);
    }
    if shared.config.faults.fire(site::SVC_WRITE_TORN) {
        // Injected torn write: serialise the response but hang up after
        // half of it, so the client must treat the reply as garbage.
        shared.injected_fault(site::SVC_WRITE_TORN);
        let mut bytes = Vec::new();
        let _ = response.write_to(&mut bytes);
        use std::io::Write as _;
        let mut writer = stream;
        let _ = writer.write_all(&bytes[..bytes.len() / 2]);
        return;
    }
    Server::try_write(stream, &response, &shared.config);
}

fn route(shared: &Arc<Shared>, addr: SocketAddr, request: &Request, tracer: &Tracer) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        // Liveness: the process is up and routing. Stays 200 through
        // recovery and drain — a supervisor must not kill a replica for
        // being busy replaying its journal.
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        // Readiness: should this replica receive traffic right now?
        ("GET", "/readyz") => {
            if shared.recovering.load(Ordering::Acquire) {
                Response::text(503, "Service Unavailable", "recovering\n")
                    .with_header("Retry-After", "1")
            } else if shared.shutting_down.load(Ordering::Acquire) {
                Response::text(503, "Service Unavailable", "draining\n")
            } else if shared.breakers.iter().any(|b| b.is_open(Instant::now())) {
                Response::text(503, "Service Unavailable", "breaker-open\n")
                    .with_header("Retry-After", "1")
            } else {
                Response::text(200, "OK", "ready\n")
            }
        }
        ("GET", "/metrics") => {
            // The cache and store track their own totals; sync before
            // rendering.
            shared
                .metrics
                .cache_evictions
                .store(shared.cache.evictions(), Ordering::Relaxed);
            shared
                .metrics
                .store_hits
                .store(shared.store.hits(), Ordering::Relaxed);
            shared
                .metrics
                .store_misses
                .store(shared.store.misses(), Ordering::Relaxed);
            shared
                .metrics
                .store_dirty
                .store(shared.store.dirty(), Ordering::Relaxed);
            if let Some(d) = shared.store.durable() {
                shared
                    .metrics
                    .wal_appends
                    .store(d.wal_appends(), Ordering::Relaxed);
                shared
                    .metrics
                    .wal_fsyncs
                    .store(d.wal_fsyncs(), Ordering::Relaxed);
                shared
                    .metrics
                    .checkpoints
                    .store(d.checkpoints(), Ordering::Relaxed);
            }
            let ready = !shared.recovering.load(Ordering::Acquire)
                && !shared.shutting_down.load(Ordering::Acquire)
                && !shared.breakers.iter().any(|b| b.is_open(Instant::now()));
            shared
                .metrics
                .ready
                .store(u64::from(ready), Ordering::Relaxed);
            Response::text(200, "OK", shared.metrics.render())
        }
        ("GET", "/debug/flight") => debug_flight(shared, request),
        ("POST", "/shutdown") => {
            ServerHandle {
                addr,
                shared: Arc::clone(shared),
            }
            .shutdown();
            Response::text(202, "Accepted", "draining\n")
        }
        ("POST", "/synth") => synth(shared, request, tracer, None),
        ("POST", "/synth/incr") => synth_incr(shared, request, tracer),
        ("GET", "/explain") => explain(shared, request),
        (_, "/synth") | (_, "/synth/incr") | (_, "/shutdown") => {
            http_error_counted(shared);
            error_response(405, "Method Not Allowed", "method-not-allowed", "use POST")
                .with_header("Allow", "POST")
        }
        (_, "/healthz")
        | (_, "/readyz")
        | (_, "/metrics")
        | (_, "/debug/flight")
        | (_, "/explain") => {
            http_error_counted(shared);
            error_response(405, "Method Not Allowed", "method-not-allowed", "use GET")
                .with_header("Allow", "GET")
        }
        _ => {
            http_error_counted(shared);
            error_response(404, "Not Found", "not-found", "unknown path")
        }
    }
}

/// `GET /debug/flight[?trace=<hex>][&limit=<n>]`: the recorder's recent
/// events, newest-biased, optionally filtered to one trace id.
fn debug_flight(shared: &Shared, request: &Request) -> Response {
    let trace = match request.query_param("trace") {
        None => None,
        Some(v) => match u64::from_str_radix(v.trim(), 16) {
            Ok(t) => Some(t),
            Err(_) => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "bad-trace",
                    "trace must be a hex trace id",
                );
            }
        },
    };
    let limit = request
        .query_param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(512);
    let mut events = match trace {
        Some(t) => shared.flight.events_for_trace(t),
        None => shared.flight.snapshot(),
    };
    if events.len() > limit {
        // Keep the tail: the newest events are the interesting ones.
        events.drain(..events.len() - limit);
    }
    let doc = Json::obj([
        (
            "trace",
            trace.map_or(Json::Null, |t| Json::from(format!("{t:016x}"))),
        ),
        ("recorded", Json::from(shared.flight.recorded())),
        ("capacity", Json::from(shared.flight.capacity())),
        ("count", Json::from(events.len())),
        (
            "events",
            Json::Arr(events.iter().map(FlightEvent::to_json).collect()),
        ),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    Response::json_bytes(200, "OK", out.into_bytes())
}

/// `GET /explain?digest=<hex>&signal=<name>[&method=…]`: why an inserted
/// state signal exists, from the provenance record left by the certified
/// run that produced the digest. 404s distinguish "never synthesised
/// here" from "synthesised, but no such inserted signal".
fn explain(shared: &Shared, request: &Request) -> Response {
    let digest = match request.query_param("digest") {
        None => {
            http_error_counted(shared);
            return error_response(
                400,
                "Bad Request",
                "missing-digest",
                "GET /explain needs digest=<hex> (the X-Modsyn-Digest of a synthesis)",
            );
        }
        Some(v) => match u64::from_str_radix(v.trim(), 16) {
            Ok(d) => d,
            Err(_) => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "bad-digest",
                    "digest must be a 16-digit hex digest",
                );
            }
        },
    };
    let Some(signal) = request.query_param("signal") else {
        http_error_counted(shared);
        return error_response(
            400,
            "Bad Request",
            "missing-signal",
            "GET /explain needs signal=<inserted state signal name>",
        );
    };
    let method = match request.query_param("method") {
        None => Method::Modular,
        Some(name) => match parse_method(name) {
            Some(m @ (Method::Modular | Method::ModularMinArea)) => m,
            _ => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "incr-method",
                    "provenance exists for the modular methods only",
                );
            }
        },
    };
    let Some(record) = shared
        .store
        .get_record(record_key(digest, method_tag(method)))
    else {
        http_error_counted(shared);
        return error_response(
            404,
            "Not Found",
            "unknown-digest",
            "no synthesis record for this digest (synthesise it first)",
        );
    };
    let chain: Vec<&Provenance> = record
        .provenance
        .iter()
        .filter(|p| p.signal == signal)
        .collect();
    if chain.is_empty() {
        http_error_counted(shared);
        let known = record.inserted.join(", ");
        return error_response(
            404,
            "Not Found",
            "unknown-signal",
            &format!("no provenance for this signal; inserted signals: [{known}]"),
        );
    }
    let doc = Json::obj([
        ("benchmark", Json::from(record.benchmark.as_str())),
        ("digest", Json::from(format!("{digest:016x}"))),
        ("method", Json::from(method.to_string())),
        ("signal", Json::from(signal)),
        (
            "provenance",
            Json::Arr(chain.into_iter().map(provenance_to_json).collect()),
        ),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    Response::json_bytes(200, "OK", out.into_bytes())
}

/// One provenance step as `/explain` JSON (also what `modsyn --explain`
/// prints as text): the module that forced the signal, the CSC conflict
/// pairs it resolves, and the winning formula's clause families.
fn provenance_to_json(p: &Provenance) -> Json {
    Json::obj([
        ("module", Json::from(p.module_output.as_str())),
        ("module_key", Json::from(format!("{:016x}", p.module_key))),
        (
            "resolved_pairs",
            Json::Arr(
                p.resolved_pairs
                    .iter()
                    .map(|&(i, j)| Json::Arr(vec![Json::from(i), Json::from(j)]))
                    .collect(),
            ),
        ),
        ("state_signals", Json::from(p.state_signals)),
        ("variables", Json::from(p.variables)),
        ("clauses", Json::from(p.clauses)),
        (
            "families",
            Json::obj([
                ("consistency", Json::from(p.families.consistency)),
                ("persistence", Json::from(p.families.persistence)),
                ("usc", Json::from(p.families.usc)),
                ("resolution", Json::from(p.families.resolution)),
            ]),
        ),
    ])
}

fn http_error_counted(shared: &Shared) {
    shared
        .metrics
        .count(&shared.metrics.http_errors, &shared.tracer, "http_errors");
}

fn parse_method(name: &str) -> Option<Method> {
    match name {
        "modular" => Some(Method::Modular),
        "modular-min-area" => Some(Method::ModularMinArea),
        "direct" => Some(Method::Direct),
        "lavagno" => Some(Method::Lavagno),
        _ => None,
    }
}

fn method_tag(method: Method) -> u8 {
    match method {
        Method::Modular => 0,
        Method::ModularMinArea => 1,
        Method::Direct => 2,
        Method::Lavagno => 3,
    }
}

/// Combines a response digest and a method tag into the store's record
/// key. The modular tag is 0, so `/explain?digest=<X-Modsyn-Digest>`
/// works unadorned for the default method.
fn record_key(digest: u64, method_tag: u8) -> u64 {
    digest ^ u64::from(method_tag)
}

/// `POST /synth/incr?base=<hex>[&method=…]`: incremental re-synthesis of
/// an edited STG against a warm store. The base digest must name a
/// benchmark this server has synthesised (422 otherwise) — the guarantee
/// a client actually wants is "my edit was computed *against* something",
/// not "the store happened to be warm". Only the modular methods
/// decompose into store-keyed modules, so only they are accepted.
///
/// The response body is produced by the exact same pipeline as `/synth`
/// and cached under the same key, so it is byte-identical to a
/// from-scratch synthesis of the edited STG. Freshly computed responses
/// carry `X-Modsyn-Dirty-Modules` (modules re-solved for real) and
/// `X-Modsyn-Total-Modules` (modules consulted); a response-cache hit
/// re-solved nothing and omits both.
fn synth_incr(shared: &Shared, request: &Request, tracer: &Tracer) -> Response {
    let base = match request.query_param("base") {
        None => {
            http_error_counted(shared);
            return error_response(
                400,
                "Bad Request",
                "missing-base",
                "POST /synth/incr needs base=<digest-hex> (the X-Modsyn-Digest of the base run)",
            );
        }
        Some(v) => match u64::from_str_radix(v.trim(), 16) {
            Ok(d) => d,
            Err(_) => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "bad-base",
                    "base must be a 16-digit hex digest",
                );
            }
        },
    };
    synth(shared, request, tracer, Some(base))
}

fn synth(shared: &Shared, request: &Request, tracer: &Tracer, incr_base: Option<u64>) -> Response {
    // Journal recovery is still replaying: the store and response cache
    // are mid-restore, so shed rather than serve from a half-warm state.
    if shared.recovering.load(Ordering::Acquire) {
        shared
            .metrics
            .count(&shared.metrics.shed, &shared.tracer, "shed");
        return error_response(
            503,
            "Service Unavailable",
            "recovering",
            "store recovery is replaying the journal",
        )
        .with_header("Retry-After", "1");
    }
    // A synthesis request needs a .g body; a POST without Content-Length
    // parses as an empty one (RFC 7230), so point at the actual mistake.
    if request.header("content-length").is_none() {
        http_error_counted(shared);
        return error_response(
            411,
            "Length Required",
            "length-required",
            "POST /synth needs a Content-Length and a .g body",
        );
    }
    let method = match request.query_param("method") {
        None => Method::Modular,
        Some(name) => match parse_method(name) {
            Some(m) => m,
            None => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "unknown-method",
                    "method must be modular|modular-min-area|direct|lavagno",
                );
            }
        },
    };
    if incr_base.is_some() && !matches!(method, Method::Modular | Method::ModularMinArea) {
        http_error_counted(shared);
        return error_response(
            400,
            "Bad Request",
            "incr-method",
            "incremental synthesis needs a modular method (modular|modular-min-area)",
        );
    }
    let client_timeout = match request.query_param("timeout_ms") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                http_error_counted(shared);
                return error_response(
                    400,
                    "Bad Request",
                    "bad-timeout",
                    "timeout_ms must be an integer",
                );
            }
        },
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => {
            http_error_counted(shared);
            return error_response(400, "Bad Request", "not-utf8", "body must be UTF-8 .g text");
        }
    };
    let stg = match parse_g(text) {
        Ok(s) => s,
        Err(e) => {
            http_error_counted(shared);
            return error_response(400, "Bad Request", "parse", &e.to_string());
        }
    };
    // Structural class, computed up front (the STG moves into the pool
    // closure below): 422 rejections advertise how far outside the
    // supported theory the input sat via X-Modsyn-Class, so clients can
    // tell a class rejection from a capacity one without re-classifying.
    let net_class = stg.net().classify();

    let digest = stg_digest(&stg);
    let key = cache_key(digest, method_tag(method));
    let digest_hex = format!("{digest:016x}");

    // An incremental request against a base this server never synthesised
    // is the client's mistake: there is nothing to be incremental *to*.
    if let Some(base) = incr_base {
        if shared
            .store
            .get_record(record_key(base, method_tag(method)))
            .is_none()
        {
            shared.metrics.count(
                &shared.metrics.synth_failures,
                &shared.tracer,
                "synth_failures",
            );
            return error_response(
                422,
                "Unprocessable Entity",
                "unknown-base",
                "base digest has no synthesis record on this server (synthesise it first)",
            );
        }
    }

    if let Some(body) = shared.cache.get(key) {
        shared
            .metrics
            .count(&shared.metrics.cache_hits, &shared.tracer, "cache_hits");
        return Response::json_bytes(200, "OK", body.as_ref().clone())
            .with_header("X-Modsyn-Cache", "hit")
            .with_header("X-Modsyn-Digest", digest_hex);
    }
    shared
        .metrics
        .count(&shared.metrics.cache_misses, &shared.tracer, "cache_misses");

    // Circuit breaker: a method that keeps failing server-side (panics,
    // deadline aborts, oracle rejections) is rejected up front for the
    // cooldown instead of burning pool capacity. Cache hits above are
    // always served — the breaker only guards fresh synthesis.
    let breaker = &shared.breakers[method_tag(method) as usize];
    let admission = breaker.admit(Instant::now());
    if let Admission::Rejected { retry_after } = admission {
        shared.metrics.count(
            &shared.metrics.breaker_rejections,
            &shared.tracer,
            "breaker_rejections",
        );
        return error_response(
            503,
            "Service Unavailable",
            "breaker-open",
            "circuit breaker is open for this method",
        )
        .with_header("Retry-After", retry_after.to_string());
    }

    // Admission control: bound the admitted-but-unstarted queue.
    let capacity = shared.config.queue_capacity as u64;
    let admitted =
        shared
            .metrics
            .queue_depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |depth| {
                (depth < capacity).then_some(depth + 1)
            });
    if admitted.is_err() {
        // A half-open probe shed before running must not wedge the
        // breaker half-open forever; re-open it for another cooldown.
        if admission == Admission::Probe && breaker.record(Instant::now(), false) {
            shared.metrics.count(
                &shared.metrics.breaker_opens,
                &shared.tracer,
                "breaker_opens",
            );
        }
        shared
            .metrics
            .count(&shared.metrics.shed, &shared.tracer, "shed");
        return shed_response();
    }
    // The admission ticket travels into the pool closure as an RAII
    // guard: if the job never runs (injected enqueue panic, dropped
    // closure), dropping the closure still releases the slot.
    let queue_guard = GaugeGuard::adopt(Arc::clone(&shared.metrics), Gauge::QueueDepth);

    // Deadline: the tighter of the server-wide and the client's budget.
    let timeout = match (shared.config.request_timeout, client_timeout) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let cancel = timeout.map_or_else(CancelToken::never, CancelToken::with_deadline);

    // The modular methods consult the synthesis store module-by-module: a
    // per-request session tallies this request's own hits (replayed) and
    // misses (solved for real — the *dirty* set of an incremental run),
    // while the solves themselves land in the server-wide store.
    let session = matches!(method, Method::Modular | Method::ModularMinArea)
        .then(|| StoreSession::new(Arc::clone(&shared.store)));

    let mut options = SynthesisOptions::for_method(method);
    options.cancel = cancel;
    options.jobs = 1; // the pool provides cross-request parallelism
    options.faults = shared.config.faults.clone();
    options.store = session
        .as_ref()
        .map_or_else(StoreLink::none, |s| StoreLink::to(Arc::clone(s)));
    if let Some(limit) = shared.config.backtrack_limit {
        options.solver.max_backtracks = Some(limit);
    }
    // Retry ladder: escalate capacity failures (limit bumps up to 4× the
    // configured budget, then the SAT portfolio) before failing the
    // request. No lavagno fallback — the response's method must be the
    // method the client asked for, and cached bodies must stay
    // byte-identical across fault plans.
    let policy = RetryPolicy {
        backtrack_cap: shared
            .config
            .backtrack_limit
            .map_or(1_000_000, |l| l.saturating_mul(4)),
        attempt_timeout: None,
        fallback: false,
        max_attempts: 4,
    };

    let metrics = Arc::clone(&shared.metrics);
    let job_tracer = tracer.clone();
    // Certified runs leave a provenance record keyed by their response
    // digest ⊕ method, so `/explain` and later `/synth/incr` base checks
    // can find them. Only sessions record — direct/lavagno runs have no
    // module provenance to explain.
    let record = session.as_ref().map(|s| {
        (
            Arc::clone(s.store()),
            record_key(digest, method_tag(method)),
        )
    });
    let started = Instant::now();
    let handle = shared
        .pool
        .submit(&format!("synth:{}", stg.name()), move || {
            drop(queue_guard);
            let _in_flight = GaugeGuard::enter(Arc::clone(&metrics), Gauge::InFlight);
            let wait_us = started.elapsed().as_micros() as u64;
            job_tracer.record_hist("queue_wait_us", wait_us);
            job_tracer.flight_event(FlightKind::Counter, "svc.queue_wait_us", wait_us);
            let _run_span = job_tracer.flight_span("pool.run");
            let cpu_started = Instant::now();
            let outcome = run_synthesis(
                &stg,
                &options,
                &policy,
                &job_tracer,
                record.as_ref().map(|(s, k)| (s.as_ref(), *k)),
            );
            job_tracer.record_hist(
                &format!("synth_cpu_us:{method}"),
                cpu_started.elapsed().as_micros() as u64,
            );
            outcome
        });

    let outcome = handle.join();
    // Breaker verdict: server-side trouble (panic, deadline abort, oracle
    // rejection) is failure; an unsolvable STG (422) is the *client's*
    // problem and counts as success, so bad inputs cannot lock the method.
    let healthy = matches!(
        outcome,
        Ok(SynthOutcome::Certified { .. }) | Ok(SynthOutcome::Failed(_))
    );
    if breaker.record(Instant::now(), healthy) {
        shared.metrics.count(
            &shared.metrics.breaker_opens,
            &shared.tracer,
            "breaker_opens",
        );
    }

    match outcome {
        Err(panic) => {
            shared
                .metrics
                .count(&shared.metrics.panics, &shared.tracer, "synth_panics");
            error_response(500, "Internal Server Error", "panic", &panic.message)
        }
        Ok(SynthOutcome::Aborted(e)) => {
            shared
                .metrics
                .count(&shared.metrics.aborted, &shared.tracer, "aborted");
            error_response(504, "Gateway Timeout", "aborted", &e)
        }
        Ok(SynthOutcome::Failed(e)) => {
            shared.metrics.count(
                &shared.metrics.synth_failures,
                &shared.tracer,
                "synth_failures",
            );
            error_response(
                422,
                "Unprocessable Entity",
                synth_error_tag(&e),
                &e.to_string(),
            )
            .with_header("X-Modsyn-Class", class_tag(net_class))
        }
        Ok(SynthOutcome::CheckFailed(detail)) => {
            shared.metrics.count(
                &shared.metrics.check_failures,
                &shared.tracer,
                "check_failures",
            );
            error_response(500, "Internal Server Error", "check-failed", &detail)
        }
        Ok(SynthOutcome::Certified { body, recovered }) => {
            shared
                .metrics
                .count(&shared.metrics.certified, &shared.tracer, "certified");
            if recovered {
                shared.metrics.count(
                    &shared.metrics.retry_recoveries,
                    &shared.tracer,
                    "retry_recoveries",
                );
            }
            let bytes = body.len();
            shared.cache.insert(key, Arc::new(body.clone()), bytes);
            // Journal the certified body (module solves and the synthesis
            // record journaled themselves on insert), then compact if the
            // journal has grown past the checkpoint cadence.
            if let Some(d) = shared.store.durable() {
                let text = String::from_utf8_lossy(&body).into_owned();
                d.record(&StoreMutation::Response { key, body: text }, || {});
                match d.maybe_checkpoint(|| (shared.store.snapshot(), cache_entries(&shared.cache)))
                {
                    Ok(true) => shared.tracer.note("store", "checkpoint"),
                    Ok(false) => {}
                    Err(e) => shared
                        .tracer
                        .note("store", &format!("checkpoint failed: {e}")),
                }
            }
            let mut response = Response::json_bytes(200, "OK", body)
                .with_header("X-Modsyn-Cache", "miss")
                .with_header("X-Modsyn-Digest", digest_hex)
                .with_header("X-Modsyn-Cpu-Us", started.elapsed().as_micros().to_string());
            if incr_base.is_some() {
                let session = session.as_ref().expect("incr implies a modular session");
                let dirty = session.misses();
                shared.store.add_dirty(dirty);
                shared.metrics.hists.record("incr_dirty_modules", dirty);
                response = response
                    .with_header("X-Modsyn-Dirty-Modules", dirty.to_string())
                    .with_header("X-Modsyn-Total-Modules", session.total().to_string());
            }
            response
        }
    }
}

enum SynthOutcome {
    /// Synthesised *and* oracle-certified; the rendered response body.
    /// `recovered` marks a run that climbed the retry ladder first.
    Certified { body: Vec<u8>, recovered: bool },
    /// The per-request deadline fired.
    Aborted(String),
    /// The STG is unsolvable/unsupported under this method (client's problem).
    Failed(SynthesisError),
    /// The oracle rejected our own output (our bug; never served as a 200).
    CheckFailed(String),
}

/// Stable lowercase tag of a structural net class, carried in the
/// `X-Modsyn-Class` header of 422 rejections.
fn class_tag(class: NetClass) -> &'static str {
    match class {
        NetClass::MarkedGraph => "marked-graph",
        NetClass::FreeChoice => "free-choice",
        NetClass::AsymmetricChoice => "asymmetric-choice",
        NetClass::General => "general",
    }
}

fn synth_error_tag(e: &SynthesisError) -> &'static str {
    match e {
        SynthesisError::Sg(_) => "state-graph",
        SynthesisError::BacktrackLimit { .. } => "backtrack-limit",
        SynthesisError::NoSolution { .. } => "no-solution",
        SynthesisError::NotFreeChoice => "not-free-choice",
        SynthesisError::StateSplittingRequired => "state-splitting-required",
        SynthesisError::CscUnresolved { .. } => "csc-unresolved",
        SynthesisError::Aborted { .. } => "aborted",
        SynthesisError::Exhausted { .. } => "exhausted",
        _ => "synthesis-failed",
    }
}

fn run_synthesis(
    stg: &Stg,
    options: &SynthesisOptions,
    policy: &RetryPolicy,
    tracer: &Tracer,
    record: Option<(&SynthStore, u64)>,
) -> SynthOutcome {
    let (report, recovered) =
        match modsyn::synthesize_with_retry_traced(stg, options, policy, tracer) {
            Ok(out) => (out.report, !out.attempts.is_empty()),
            Err(e @ SynthesisError::Aborted { .. }) => return SynthOutcome::Aborted(e.to_string()),
            Err(SynthesisError::Exhausted { attempts }) => {
                // Surface the last rung's failure so clients keep seeing the
                // stable 422 tags (backtrack-limit, …) rather than a ladder
                // internal.
                return match attempts.into_iter().next_back() {
                    Some(last) => SynthOutcome::Failed(last.error),
                    None => SynthOutcome::Failed(SynthesisError::Exhausted {
                        attempts: Vec::new(),
                    }),
                };
            }
            Err(e) => return SynthOutcome::Failed(e),
        };
    // Re-derive the unsolved specification graph so the oracle can check
    // observation equivalence, not just the solved graph's own properties.
    let spec = match modsyn_sg::derive(stg, &options.derive) {
        Ok(s) => s,
        Err(e) => return SynthOutcome::CheckFailed(format!("specification rederivation: {e}")),
    };
    if let Err(e) = certify_report(Some(&spec), &report) {
        return SynthOutcome::CheckFailed(e.to_string());
    }
    // Record provenance only for certified results — an uncertified run
    // must leave no trace a later `/explain` could repeat.
    if let Some((store, key)) = record {
        store.put_record(
            key,
            SynthRecord {
                benchmark: report.benchmark.clone(),
                inserted: report.inserted.clone(),
                provenance: report.provenance.clone(),
            },
        );
    }
    SynthOutcome::Certified {
        body: render_report(&report),
        recovered,
    }
}

/// Renders the deterministic response body: no timing, no cache status —
/// identical requests yield byte-identical bodies, computed or cached.
/// Public so the `increment` benchmark and the incremental-identity tests
/// can byte-compare offline reports against service responses.
pub fn render_report(report: &modsyn::SynthesisReport) -> Vec<u8> {
    let functions = Json::Arr(
        report
            .functions
            .iter()
            .map(|f| {
                Json::obj([
                    ("name", Json::from(f.name.as_str())),
                    ("sop", Json::from(f.sop.to_string())),
                    ("literals", Json::from(f.literals)),
                ])
            })
            .collect(),
    );
    let inserted = Json::Arr(
        report
            .inserted
            .iter()
            .map(|s| Json::from(s.as_str()))
            .collect(),
    );
    let body = Json::obj([
        ("benchmark", Json::from(report.benchmark.as_str())),
        ("method", Json::from(report.method.to_string())),
        ("certified", Json::from(true)),
        ("initial_states", Json::from(report.initial_states)),
        ("initial_signals", Json::from(report.initial_signals)),
        ("final_states", Json::from(report.final_states)),
        ("final_signals", Json::from(report.final_signals)),
        ("literals", Json::from(report.literals)),
        ("inserted", inserted),
        ("functions", functions),
    ]);
    let mut out = String::new();
    body.write(&mut out);
    out.push('\n');
    out.into_bytes()
}
