//! `modsynd` — the synthesis service daemon.
//!
//! ```text
//! modsynd [--addr HOST:PORT] [--jobs N] [--queue N] [--max-connections N]
//!         [--cache-entries N] [--cache-bytes N] [--timeout-ms T]
//!         [--max-body BYTES] [--limit N] [--stats] [--trace-json FILE]
//!         [--faults SPEC] [--fault-seed N]
//!         [--breaker-threshold F] [--breaker-cooldown-ms T]
//!         [--access-log off|stderr|FILE] [--flight-slots N]
//!         [--store-snapshot FILE]
//!         [--durable DIR] [--wal-fsync-every N] [--checkpoint-every N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7171`), prints one
//! `listening on http://…` line to stdout (so scripts can wait for
//! readiness), and serves until `POST /shutdown`, then drains gracefully.
//!
//! Endpoints: `POST /synth?method=modular|modular-min-area|direct|lavagno
//! [&timeout_ms=T]` with a `.g` body; `GET /metrics`; `GET /healthz`;
//! `GET /debug/flight[?trace=HEX][&limit=N]`; `POST /shutdown`. Every 200
//! from `/synth` is certified by the independent oracle before it is
//! written, carries an `X-Modsyn-Trace` id, and leaves its span chain in
//! the always-on flight recorder.
//!
//! On exit, `--stats` renders the serving trace to stderr and
//! `--trace-json FILE` writes it as JSON, mirroring the `modsyn` CLI.
//!
//! `--faults SPEC` arms a seeded fault plan for chaos runs (see
//! [`modsyn_fault::FaultPlan::parse`] for the spec grammar); `--fault-seed`
//! picks the plan's decision stream. `--breaker-threshold` and
//! `--breaker-cooldown-ms` tune the per-method circuit breaker.
//! `--access-log` steers the per-request JSON log (the daemon defaults to
//! `stderr`; embedded servers default to off); `--flight-slots` sizes the
//! flight recorder's per-shard ring.
//!
//! `--store-snapshot FILE` persists the synthesis store (module solves,
//! provenance records, cached response bodies) across restarts: the file
//! is reloaded at startup when it exists and rewritten after a graceful
//! drain, so a restarted daemon answers previously-seen work from cache
//! and serves `/synth/incr` and `/explain` against the old session's
//! records.
//!
//! `--durable DIR` is the crash-safe superset of `--store-snapshot`: every
//! mutation is journaled (write-ahead, checksummed, fsync'd every
//! `--wal-fsync-every` appends) before it is applied, and every
//! `--checkpoint-every` frames the journal is compacted into an atomically
//! rotated snapshot generation — so warm state survives `kill -9`, torn
//! tails are truncated on replay, and a corrupt snapshot falls back to the
//! previous generation. `/readyz` reports 503 while recovery replays; the
//! recovery counters land in `/metrics`. The two persistence flags are
//! mutually exclusive.

use std::process::ExitCode;
use std::time::Duration;

use modsyn_fault::FaultPlan;
use modsyn_obs::Tracer;
use modsyn_store::DurableConfig;
use modsyn_svc::{AccessLog, Server, ServerConfig};

fn usage() -> &'static str {
    "usage: modsynd [--addr HOST:PORT] [--jobs N] [--queue N] [--max-connections N] \
     [--cache-entries N] [--cache-bytes N] [--timeout-ms T] [--max-body BYTES] \
     [--limit N] [--stats] [--trace-json FILE] [--faults SPEC] [--fault-seed N] \
     [--breaker-threshold F] [--breaker-cooldown-ms T] \
     [--access-log off|stderr|FILE] [--flight-slots N] [--store-snapshot FILE] \
     [--durable DIR] [--wal-fsync-every N] [--checkpoint-every N]\n\
     \n\
     Serves POST /synth (body: .g STG; query: method, timeout_ms),\n\
     POST /synth/incr (query: base=<digest-hex>), GET /explain (query: digest,\n\
     signal), GET /metrics, GET /healthz, GET /readyz, GET /debug/flight,\n\
     POST /shutdown.\n\
     Every 200 is oracle-certified and trace-stamped (X-Modsyn-Trace).\n\
     --store-snapshot persists the synthesis store across restarts.\n\
     --durable DIR makes persistence crash-safe: a checksummed write-ahead\n\
     journal plus atomic snapshot generations; state survives kill -9.\n\
     --faults arms a seeded chaos plan, e.g. 'sat.abort*2,svc.write-torn@1/4'\n\
     (rule grammar: site[*max][+skip][@num/denom][~delay_ms])."
}

struct Args {
    config: ServerConfig,
    stats: bool,
    trace_json: Option<String>,
}

/// The durable tuning block, created on first use so `--wal-fsync-every`
/// and `--checkpoint-every` may precede `--durable` on the command line
/// (the empty-dir placeholder is rejected after parsing if `--durable`
/// never arrives).
fn durable_tuning(config: &mut ServerConfig) -> &mut DurableConfig {
    config.durable.get_or_insert_with(|| DurableConfig::new(""))
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        // The daemon logs requests by default; embedded servers stay quiet.
        access_log: AccessLog::Stderr,
        ..ServerConfig::default()
    };
    let mut stats = false;
    let mut trace_json = None;
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 0x000d_da05_u64;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--jobs" => {
                config.jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs value")?;
                if config.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--queue" => {
                config.queue_capacity =
                    value("--queue")?.parse().map_err(|_| "bad --queue value")?;
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "bad --max-connections value")?;
            }
            "--cache-entries" => {
                config.cache.max_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|_| "bad --cache-entries value")?;
            }
            "--cache-bytes" => {
                config.cache.max_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "bad --cache-bytes value")?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --timeout-ms value")?;
                config.request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-body" => {
                config.limits.max_body = value("--max-body")?
                    .parse()
                    .map_err(|_| "bad --max-body value")?;
            }
            "--limit" => {
                config.backtrack_limit =
                    Some(value("--limit")?.parse().map_err(|_| "bad --limit value")?);
            }
            "--stats" => stats = true,
            "--trace-json" => trace_json = Some(value("--trace-json")?),
            "--faults" => fault_spec = Some(value("--faults")?),
            "--fault-seed" => {
                fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|_| "bad --fault-seed value")?;
            }
            "--breaker-threshold" => {
                config.breaker.failure_threshold = value("--breaker-threshold")?
                    .parse()
                    .map_err(|_| "bad --breaker-threshold value")?;
            }
            "--breaker-cooldown-ms" => {
                let ms: u64 = value("--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|_| "bad --breaker-cooldown-ms value")?;
                config.breaker.cooldown = Duration::from_millis(ms);
            }
            "--access-log" => {
                config.access_log = match value("--access-log")?.as_str() {
                    "off" => AccessLog::Off,
                    "stderr" => AccessLog::Stderr,
                    path => AccessLog::File(path.into()),
                };
            }
            "--flight-slots" => {
                config.flight_slots = value("--flight-slots")?
                    .parse()
                    .map_err(|_| "bad --flight-slots value")?;
            }
            "--store-snapshot" => {
                config.store_snapshot = Some(value("--store-snapshot")?.into());
            }
            "--durable" => {
                let dir = value("--durable")?;
                let tuned = config
                    .durable
                    .take()
                    .unwrap_or_else(|| DurableConfig::new(""));
                config.durable = Some(DurableConfig {
                    dir: dir.into(),
                    ..tuned
                });
            }
            "--wal-fsync-every" => {
                let n: u64 = value("--wal-fsync-every")?
                    .parse()
                    .map_err(|_| "bad --wal-fsync-every value")?;
                durable_tuning(&mut config).fsync_every = n.max(1);
            }
            "--checkpoint-every" => {
                let n: u64 = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value")?;
                durable_tuning(&mut config).checkpoint_every = n.max(1);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{}", usage())),
        }
    }
    if let Some(d) = &config.durable {
        if d.dir.as_os_str().is_empty() {
            return Err("--wal-fsync-every/--checkpoint-every need --durable DIR".to_string());
        }
        if config.store_snapshot.is_some() {
            return Err("--durable and --store-snapshot are mutually exclusive".to_string());
        }
    }
    if let Some(spec) = fault_spec {
        let plan = FaultPlan::parse("modsynd", &spec, fault_seed)?;
        eprintln!("chaos: armed fault plan {spec:?} (seed {fault_seed})");
        config.faults = plan.arm();
    }
    Ok(Args {
        config,
        stats,
        trace_json,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let tracer = if args.stats || args.trace_json.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let server = match Server::bind(args.config, tracer.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    println!("listening on http://{}", server.local_addr());
    // Scripts wait for the line above; make sure it is not stuck in a pipe
    // buffer while the server blocks in accept().
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let result = server.run();
    let metrics = handle.metrics();
    eprint!("{}", metrics.render());
    if let Err(e) = result {
        eprintln!("error: server failed: {e}");
        return ExitCode::FAILURE;
    }

    if tracer.is_enabled() {
        let report = tracer.report();
        if args.stats {
            eprint!("{}", report.render());
        }
        if let Some(path) = &args.trace_json {
            if let Err(e) = std::fs::write(path, report.to_json().pretty()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
