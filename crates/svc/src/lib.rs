//! The modsyn synthesis **service**: a zero-dependency HTTP daemon that
//! turns the one-shot synthesis pipeline into a serving system.
//!
//! `POST /synth` takes a `.g`-format STG and returns the synthesised,
//! two-level-minimised logic as JSON — but only after the independent
//! `modsyn-check` oracle has certified the result (consistency, CSC,
//! speed independence, observation equivalence). The service never serves
//! an uncertified circuit; Verbeek & Schmaltz's argument that verification
//! belongs *inside* the flow, applied to the request path.
//!
//! The serving shape mirrors a production inference stack:
//!
//! * **Content-addressed caching** — responses are cached under the
//!   canonical STG digest ([`modsyn_stg::stg_digest`]) ⊕ method, in a
//!   sharded, entry- and byte-bounded LRU ([`ShardedLru`]). Reformatted
//!   copies of the same STG hit the same entry; bodies are deterministic,
//!   so hits are byte-identical to computed responses.
//! * **Admission control** — a bounded queue in front of the shared
//!   [`modsyn_par::WorkerPool`]; when it is full the service sheds load
//!   with `503` + `Retry-After` instead of queueing unboundedly.
//! * **Deadlines** — per-request [`modsyn_par::CancelToken`] deadlines
//!   (server-wide cap, client-shortenable via `timeout_ms`), surfacing as
//!   `504` with an `aborted` metric.
//! * **Hardening** — the hand-rolled HTTP/1.1 layer ([`http`]) maps every
//!   malformed input to a typed 4xx/5xx, and handler panics are contained;
//!   nothing a client sends kills the accept loop.
//! * **Observability** — `GET /metrics` exposes counters (requests, cache
//!   hits/misses/evictions, shed, aborted, certified), gauges (queue
//!   depth, in-flight, connections) and log-scale latency histograms
//!   (per-endpoint × per-method request latency, queue wait, synthesis
//!   cpu time — p50/p90/p99/max), mirrored into `modsyn-obs` traces.
//!   Every request carries a trace id (`X-Modsyn-Trace`, caller-suppliable)
//!   stamped on every event in the always-on, fixed-memory flight
//!   recorder; `GET /debug/flight?trace=<hex>` dumps a request's span
//!   chain after the fact, and an optional JSON access log writes one
//!   line per request.
//! * **Graceful drain** — `POST /shutdown` (or [`ServerHandle::shutdown`])
//!   stops the accept loop and waits for in-flight work.
//!
//! The `modsynd` binary wraps [`Server`] for the command line; the
//! `loadgen` binary in `modsyn-bench` replays the Table-1 suite against it
//! and writes `BENCH_serve.json`.
//!
//! # Example
//!
//! ```
//! use modsyn_svc::{client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServerConfig::default(), modsyn_obs::Tracer::disabled())?;
//! let handle = server.handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let g = modsyn_stg::write_g(&modsyn_stg::benchmarks::by_name("vbe-ex1").unwrap());
//! let response = client::request(
//!     handle.addr(),
//!     "POST",
//!     "/synth?method=modular",
//!     g.as_bytes(),
//!     Duration::from_secs(30),
//! )?;
//! assert_eq!(response.status, 200);
//! assert_eq!(response.header("x-modsyn-cache"), Some("miss"));
//!
//! handle.shutdown();
//! thread.join().unwrap()?;
//! # Ok(())
//! # }
//! ```

pub mod breaker;
pub mod cache;
pub mod client;
pub mod http;
mod metrics;
mod server;

pub use breaker::{Admission, BreakerConfig, CircuitBreaker};
pub use cache::{cache_key, CacheConfig, ShardedLru};
pub use http::{HttpError, Limits, Request, Response};
pub use metrics::{Gauge, GaugeGuard, Metrics};
pub use server::{render_report, AccessLog, Server, ServerConfig, ServerHandle};
