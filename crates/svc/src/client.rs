//! A minimal blocking HTTP/1.1 client for the service's own dialect
//! (one request per connection, `Connection: close`).
//!
//! This exists so the `loadgen` bench binary, the integration tests and
//! the CI smoke job can talk to `modsynd` without `curl` or an HTTP crate.
//! It is **not** a general client: it assumes the close-delimited responses
//! the server produces (reading to EOF, then trusting `Content-Length` if
//! present).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one `method target` request with `body` and reads the full
/// response. `timeout` bounds connect, read and write individually.
///
/// # Errors
///
/// Socket failures, or `InvalidData` when the response is not HTTP.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let invalid = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(invalid)?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(invalid)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(invalid)?;
    let headers = lines
        .filter_map(|line| {
            let (k, v) = line.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r =
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.text(), "hello");
    }

    #[test]
    fn rejects_non_http() {
        assert!(parse_response(b"not http at all").is_err());
    }
}
