//! A minimal blocking HTTP/1.1 client for the service's own dialect
//! (one request per connection, `Connection: close`).
//!
//! This exists so the `loadgen` bench binary, the integration tests and
//! the CI smoke job can talk to `modsynd` without `curl` or an HTTP crate.
//! It is **not** a general client: it assumes the close-delimited responses
//! the server produces (reading to EOF). A `Content-Length` that does not
//! match the bytes actually received is rejected as `InvalidData` — a torn
//! write must surface as a retryable error, never as a truncated body.
//!
//! [`request_with_backoff`] adds the retry side: transient socket errors
//! and `503`s are retried under capped, seeded-jitter exponential backoff
//! that honours the server's `Retry-After` and bounds the *total* time
//! spent sleeping, so a client never spins on a dead or draining server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use modsyn_fault::SplitMix64;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one `method target` request with `body` and reads the full
/// response. `timeout` bounds connect, read and write individually.
///
/// # Errors
///
/// Socket failures, or `InvalidData` when the response is not HTTP.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, target, &[], body, timeout)
}

/// [`request`] with extra request headers — e.g. `("X-Modsyn-Trace",
/// "4242424242424242")` to propagate a caller-chosen trace id into the
/// server's flight recorder and access log.
///
/// # Errors
///
/// As [`request`].
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let invalid = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(invalid)?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(invalid)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(invalid)?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (k, v) = line.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    let body = raw[head_end + 4..].to_vec();
    // A declared length that disagrees with what arrived means the
    // connection died mid-response (e.g. a torn write); callers must see
    // an error, not a silently truncated body.
    if let Some(declared) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if declared != body.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "truncated response: {} of {declared} body bytes",
                    body.len()
                ),
            ));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Retry tuning for [`request_with_backoff`].
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Total attempts, including the first (at least 1).
    pub max_attempts: u32,
    /// Backoff base before the first retry; doubles per retry.
    pub initial: Duration,
    /// Cap on any single sleep (also caps an honoured `Retry-After`).
    pub max_delay: Duration,
    /// Cap on the *sum* of all sleeps; once spent, the last result is
    /// returned as-is even if attempts remain.
    pub max_total_wait: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 5,
            initial: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            max_total_wait: Duration::from_secs(10),
            seed: 0x6d6f_6473_796e, // "modsyn"
        }
    }
}

/// Picks the sleep before the next retry: the server's `Retry-After`
/// verbatim (capped) when it sent one, otherwise equal-jitter exponential
/// backoff — half the base deterministically, half drawn from `rng`.
fn backoff_delay(
    rng: &mut SplitMix64,
    base: Duration,
    retry_after: Option<u64>,
    cap: Duration,
) -> Duration {
    match retry_after {
        Some(secs) => Duration::from_secs(secs).min(cap),
        None => {
            let nanos = base.min(cap).as_nanos() as u64;
            let half = nanos / 2;
            Duration::from_nanos(half + rng.below(half as usize + 1) as u64)
        }
    }
}

/// [`request`] with retries: transient socket errors (connection refused
/// or reset, torn responses) and `503`s are retried under `policy`,
/// honouring a `Retry-After` header when the server sends one. Returns
/// the first conclusive result — any non-503 response, the final 503, or
/// the final socket error once attempts or the total wait budget run out.
///
/// # Errors
///
/// The last attempt's socket failure, when every attempt failed.
pub fn request_with_backoff(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
    policy: &BackoffPolicy,
) -> std::io::Result<ClientResponse> {
    let mut rng = SplitMix64::new(policy.seed);
    let mut base = policy.initial;
    let mut slept = Duration::ZERO;
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        let result = request(addr, method, target, body, timeout);
        let retry_after = match &result {
            Ok(r) if r.status == 503 => r.header("retry-after").and_then(|v| v.parse::<u64>().ok()),
            Ok(_) => return result,
            Err(_) => None,
        };
        if attempt == attempts {
            return result;
        }
        let delay = backoff_delay(&mut rng, base, retry_after, policy.max_delay);
        let remaining = policy.max_total_wait.saturating_sub(slept);
        if remaining.is_zero() {
            return result; // wait budget spent: stop retrying
        }
        let delay = delay.min(remaining);
        std::thread::sleep(delay);
        slept += delay;
        base = (base * 2).min(policy.max_delay);
    }
    unreachable!("loop returns on the final attempt")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r =
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.text(), "hello");
    }

    #[test]
    fn rejects_non_http() {
        assert!(parse_response(b"not http at all").is_err());
    }

    #[test]
    fn rejects_a_truncated_body() {
        let torn = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhalf";
        let err = parse_response(torn).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"));
        // An exact length still parses.
        let whole = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nhalf";
        assert_eq!(parse_response(whole).unwrap().text(), "half");
    }

    #[test]
    fn backoff_honours_retry_after_and_caps_it() {
        let mut rng = SplitMix64::new(1);
        let cap = Duration::from_secs(2);
        assert_eq!(
            backoff_delay(&mut rng, Duration::from_millis(50), Some(1), cap),
            Duration::from_secs(1)
        );
        // A hostile Retry-After is capped at max_delay.
        assert_eq!(
            backoff_delay(&mut rng, Duration::from_millis(50), Some(3600), cap),
            cap
        );
    }

    #[test]
    fn jittered_backoff_is_seeded_and_bounded() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..20)
                .map(|_| backoff_delay(&mut rng, base, None, cap))
                .collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same delays");
        assert_ne!(a, draw(8), "different seed, different jitter");
        for d in &a {
            assert!(*d >= base / 2 && *d <= base, "equal-jitter range: {d:?}");
        }
    }
}
