//! Service counters and gauges, exposed on `GET /metrics`.
//!
//! The atomics here are the source of truth for the scrape endpoint (a
//! gauge needs a *current* value, which the append-only `modsyn-obs` event
//! log does not model); every counter increment is mirrored into the
//! server's [`modsyn_obs::Tracer`] as well, so a `--trace-json` capture of
//! a serving session shows the same story as `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

use modsyn_obs::Tracer;

/// All service metrics. Field order is the `/metrics` render order.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted off the listener (any endpoint).
    pub requests: AtomicU64,
    /// `/synth` requests answered from the cache.
    pub cache_hits: AtomicU64,
    /// `/synth` requests that had to synthesise.
    pub cache_misses: AtomicU64,
    /// Cache entries evicted to make room.
    pub cache_evictions: AtomicU64,
    /// `/synth` requests refused with 503 by admission control.
    pub shed: AtomicU64,
    /// Synthesis runs cancelled by the per-request deadline.
    pub aborted: AtomicU64,
    /// Responses certified by the oracle (every 200 from `/synth`).
    pub certified: AtomicU64,
    /// Malformed requests answered with a typed 4xx/5xx.
    pub http_errors: AtomicU64,
    /// Synthesis failures (unsolvable/unsupported STGs, 422s).
    pub synth_failures: AtomicU64,
    /// Oracle rejections of our own output (500s; always a bug).
    pub check_failures: AtomicU64,
    /// Handler panics contained by the connection guard.
    pub panics: AtomicU64,
    /// `/synth` requests rejected by an open circuit breaker (503s).
    pub breaker_rejections: AtomicU64,
    /// Circuit-breaker closed→open transitions.
    pub breaker_opens: AtomicU64,
    /// Faults fired by an armed [`modsyn_fault::FaultPlan`] in the svc
    /// layer (accept drops, torn reads/writes, slow-peer stalls,
    /// eviction storms). Always 0 in production.
    pub injected_faults: AtomicU64,
    /// Gauge: admitted `/synth` jobs waiting for a pool worker.
    pub queue_depth: AtomicU64,
    /// Gauge: `/synth` jobs currently executing on the pool.
    pub in_flight: AtomicU64,
    /// Gauge: open connections being handled.
    pub connections: AtomicU64,
}

impl Metrics {
    /// Bumps a counter and mirrors it into `tracer`.
    pub fn count(&self, counter: &AtomicU64, tracer: &Tracer, name: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        tracer.counter(name, 1);
    }

    /// Renders the Prometheus-style text exposition (`name value` lines;
    /// no type metadata, which scrapers treat as untyped).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("modsynd_requests_total", &self.requests),
            ("modsynd_cache_hits_total", &self.cache_hits),
            ("modsynd_cache_misses_total", &self.cache_misses),
            ("modsynd_cache_evictions_total", &self.cache_evictions),
            ("modsynd_shed_total", &self.shed),
            ("modsynd_aborted_total", &self.aborted),
            ("modsynd_certified_total", &self.certified),
            ("modsynd_http_errors_total", &self.http_errors),
            ("modsynd_synth_failures_total", &self.synth_failures),
            ("modsynd_check_failures_total", &self.check_failures),
            ("modsynd_panics_total", &self.panics),
            ("modsynd_breaker_rejections_total", &self.breaker_rejections),
            ("modsynd_breaker_opens_total", &self.breaker_opens),
            ("modsynd_injected_faults_total", &self.injected_faults),
            ("modsynd_queue_depth", &self.queue_depth),
            ("modsynd_in_flight", &self.in_flight),
            ("modsynd_connections", &self.connections),
        ] {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        out
    }

    /// Reads one metric back out of a rendered exposition (used by tests
    /// and the loadgen report).
    pub fn parse_line(rendered: &str, name: &str) -> Option<u64> {
        rendered.lines().find_map(|line| {
            let (n, v) = line.split_once(' ')?;
            (n == name).then(|| v.parse().ok())?
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let m = Metrics::default();
        m.requests.store(7, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(
            Metrics::parse_line(&text, "modsynd_requests_total"),
            Some(7)
        );
        assert_eq!(Metrics::parse_line(&text, "modsynd_queue_depth"), Some(3));
        assert_eq!(
            Metrics::parse_line(&text, "modsynd_cache_hits_total"),
            Some(0)
        );
        assert_eq!(Metrics::parse_line(&text, "no_such_metric"), None);
    }

    #[test]
    fn count_mirrors_into_tracer() {
        let tracer = Tracer::enabled();
        let m = Metrics::default();
        m.count(&m.shed, &tracer, "shed");
        m.count(&m.shed, &tracer, "shed");
        assert_eq!(m.shed.load(Ordering::Relaxed), 2);
        assert_eq!(tracer.report().total_counter("shed"), 2);
    }
}
