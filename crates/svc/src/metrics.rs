//! Service counters, gauges and latency histograms, exposed on
//! `GET /metrics`.
//!
//! The atomics here are the source of truth for the scrape endpoint (a
//! gauge needs a *current* value, which the append-only `modsyn-obs` event
//! log does not model); every counter increment is mirrored into the
//! server's [`modsyn_obs::Tracer`] as well, so a `--trace-json` capture of
//! a serving session shows the same story as `/metrics`.
//!
//! The [`HistogramRegistry`] carried in [`Metrics::hists`] is the same
//! registry the server attaches to its tracer at bind time, so request
//! latency (per endpoint × method), queue wait, synthesis cpu time, pool
//! wait and solver effort all land here and render as
//! `modsynd_<metric>{key="…",q="p50|p90|p99|max|count"}` lines. The
//! standard names are pre-registered in [`Metrics::default`] so a fresh
//! scrape shows the full (all-zero) set — which is also what lets the
//! exposition format be pinned by a test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use modsyn_obs::{HistogramRegistry, Tracer};

/// Histogram names pre-registered on every server. The first `:`-segment
/// is the rendered metric name, the rest becomes the `key` label.
pub const STANDARD_HISTOGRAMS: &[&str] = &[
    "request_us:synth:modular",
    "request_us:synth:modular-min-area",
    "request_us:synth:direct",
    "request_us:synth:lavagno",
    "request_us:incr",
    "request_us:explain",
    "request_us:metrics",
    "request_us:healthz",
    "request_us:readyz",
    "request_us:flight",
    "request_us:shutdown",
    "request_us:other",
    "queue_wait_us",
    "synth_cpu_us:modular",
    "synth_cpu_us:modular-min-area",
    "synth_cpu_us:direct",
    "synth_cpu_us:lavagno",
    "pool_wait_us",
    "sat_conflicts",
    "sat_decisions",
    // Average learned-clause LBD per CDCL solve (engine health: rising
    // glue means the learner is struggling).
    "sat_lbd",
    // Cubes spawned per cube-and-conquer solve.
    "cnc_cubes",
    "incr_dirty_modules",
];

/// The quantile columns rendered per histogram.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

/// All service metrics. Field order is the `/metrics` render order.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted off the listener (any endpoint).
    pub requests: AtomicU64,
    /// `/synth` requests answered from the cache.
    pub cache_hits: AtomicU64,
    /// `/synth` requests that had to synthesise.
    pub cache_misses: AtomicU64,
    /// Cache entries evicted to make room.
    pub cache_evictions: AtomicU64,
    /// Module solves answered from the synthesis store (synced from the
    /// store at scrape, like `cache_evictions`).
    pub store_hits: AtomicU64,
    /// Module solves run for real and recorded into the store.
    pub store_misses: AtomicU64,
    /// Dirty modules across `/synth/incr` runs (the sum of each
    /// incremental request's re-solved module count).
    pub store_dirty: AtomicU64,
    /// `/synth` requests refused with 503 by admission control.
    pub shed: AtomicU64,
    /// Synthesis runs cancelled by the per-request deadline.
    pub aborted: AtomicU64,
    /// Responses certified by the oracle (every 200 from `/synth`).
    pub certified: AtomicU64,
    /// Malformed requests answered with a typed 4xx/5xx.
    pub http_errors: AtomicU64,
    /// Synthesis failures (unsolvable/unsupported STGs, 422s).
    pub synth_failures: AtomicU64,
    /// Oracle rejections of our own output (500s; always a bug).
    pub check_failures: AtomicU64,
    /// Handler panics contained by the connection guard.
    pub panics: AtomicU64,
    /// `/synth` requests rejected by an open circuit breaker (503s).
    pub breaker_rejections: AtomicU64,
    /// Circuit-breaker closed→open transitions.
    pub breaker_opens: AtomicU64,
    /// Retry-ladder escalations that ended in a served 200 (the request
    /// recovered without the client noticing anything but latency).
    pub retry_recoveries: AtomicU64,
    /// Faults fired by an armed [`modsyn_fault::FaultPlan`] in the svc
    /// layer (accept drops, torn reads/writes, slow-peer stalls,
    /// eviction storms). Always 0 in production.
    pub injected_faults: AtomicU64,
    /// Write-ahead-journal frames appended (synced from the durable store
    /// at scrape; 0 without `--durable`).
    pub wal_appends: AtomicU64,
    /// Journal fsync(2) calls issued.
    pub wal_fsyncs: AtomicU64,
    /// Snapshot checkpoints taken (journal compactions).
    pub checkpoints: AtomicU64,
    /// Startup recovery: journal frames replayed over the snapshot.
    pub recovery_frames_replayed: AtomicU64,
    /// Startup recovery: torn/garbage tail frames truncated.
    pub recovery_frames_truncated: AtomicU64,
    /// Startup recovery: frames dropped for a checksum mismatch.
    pub recovery_checksum_failures: AtomicU64,
    /// Startup recovery: snapshot generations skipped as corrupt before
    /// one loaded (1 = the previous-generation fallback fired).
    pub recovery_snapshot_fallbacks: AtomicU64,
    /// Gauge: admitted `/synth` jobs waiting for a pool worker.
    pub queue_depth: AtomicU64,
    /// Gauge: `/synth` jobs currently executing on the pool.
    pub in_flight: AtomicU64,
    /// Gauge: open connections being handled.
    pub connections: AtomicU64,
    /// Gauge: 1 when the server would answer `/readyz` with 200 (not
    /// recovering, not draining, no breaker open), 0 otherwise. Computed
    /// at scrape.
    pub ready: AtomicU64,
    /// Latency/effort histograms (see [`STANDARD_HISTOGRAMS`]).
    pub hists: HistogramRegistry,
}

impl Metrics {
    /// A fresh metrics block with the standard histograms pre-registered,
    /// so `/metrics` exposes the full set from the first scrape.
    pub fn new() -> Metrics {
        let m = Metrics::default();
        for name in STANDARD_HISTOGRAMS {
            m.hists.handle(name);
        }
        m
    }

    /// Bumps a counter and mirrors it into `tracer`.
    pub fn count(&self, counter: &AtomicU64, tracer: &Tracer, name: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        tracer.counter(name, 1);
    }

    /// Renders the Prometheus-style text exposition: `name value` counter
    /// and gauge lines first (fixed order), then one
    /// `modsynd_<metric>{key="…",q="…"} value` line per histogram
    /// quantile, histograms sorted by name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("modsynd_requests_total", &self.requests),
            ("modsynd_cache_hits_total", &self.cache_hits),
            ("modsynd_cache_misses_total", &self.cache_misses),
            ("modsynd_cache_evictions_total", &self.cache_evictions),
            ("modsynd_store_hits_total", &self.store_hits),
            ("modsynd_store_misses_total", &self.store_misses),
            ("modsynd_store_dirty_total", &self.store_dirty),
            ("modsynd_shed_total", &self.shed),
            ("modsynd_aborted_total", &self.aborted),
            ("modsynd_certified_total", &self.certified),
            ("modsynd_http_errors_total", &self.http_errors),
            ("modsynd_synth_failures_total", &self.synth_failures),
            ("modsynd_check_failures_total", &self.check_failures),
            ("modsynd_panics_total", &self.panics),
            ("modsynd_breaker_rejections_total", &self.breaker_rejections),
            ("modsynd_breaker_opens_total", &self.breaker_opens),
            ("modsynd_retry_recoveries_total", &self.retry_recoveries),
            ("modsynd_injected_faults_total", &self.injected_faults),
            ("modsynd_wal_appends_total", &self.wal_appends),
            ("modsynd_wal_fsyncs_total", &self.wal_fsyncs),
            ("modsynd_checkpoints_total", &self.checkpoints),
            (
                "modsynd_recovery_frames_replayed",
                &self.recovery_frames_replayed,
            ),
            (
                "modsynd_recovery_frames_truncated",
                &self.recovery_frames_truncated,
            ),
            (
                "modsynd_recovery_checksum_failures",
                &self.recovery_checksum_failures,
            ),
            (
                "modsynd_recovery_snapshot_fallbacks",
                &self.recovery_snapshot_fallbacks,
            ),
            ("modsynd_queue_depth", &self.queue_depth),
            ("modsynd_in_flight", &self.in_flight),
            ("modsynd_connections", &self.connections),
            ("modsynd_ready", &self.ready),
        ] {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        for (name, snap) in self.hists.snapshot() {
            let columns = QUANTILES
                .iter()
                .map(|&(q, frac)| (q, snap.percentile(frac)))
                .chain([("max", snap.max()), ("count", snap.count())]);
            for (q, value) in columns {
                out.push_str(&Self::hist_line_name(&name, q));
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// The exposition token for one histogram quantile:
    /// `modsynd_<metric>{key="rest",q="p99"}`, with the `key` label
    /// omitted for an un-keyed name.
    pub fn hist_line_name(registry_name: &str, q: &str) -> String {
        match registry_name.split_once(':') {
            Some((metric, key)) => format!("modsynd_{metric}{{key=\"{key}\",q=\"{q}\"}}"),
            None => format!("modsynd_{registry_name}{{q=\"{q}\"}}"),
        }
    }

    /// Reads one metric back out of a rendered exposition (used by tests
    /// and the loadgen report). Works for plain and histogram lines — the
    /// name is everything before the first space, labels included.
    pub fn parse_line(rendered: &str, name: &str) -> Option<u64> {
        rendered.lines().find_map(|line| {
            let (n, v) = line.split_once(' ')?;
            (n == name).then(|| v.parse().ok())?
        })
    }

    /// Reads one histogram quantile (`q` ∈ p50/p90/p99/max/count) for a
    /// registry name out of a rendered exposition.
    pub fn parse_hist(rendered: &str, registry_name: &str, q: &str) -> Option<u64> {
        Self::parse_line(rendered, &Self::hist_line_name(registry_name, q))
    }
}

/// The three service gauges, for [`GaugeGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// `modsynd_queue_depth`.
    QueueDepth,
    /// `modsynd_in_flight`.
    InFlight,
    /// `modsynd_connections`.
    Connections,
}

impl Gauge {
    fn cell(self, metrics: &Metrics) -> &AtomicU64 {
        match self {
            Gauge::QueueDepth => &metrics.queue_depth,
            Gauge::InFlight => &metrics.in_flight,
            Gauge::Connections => &metrics.connections,
        }
    }
}

/// An RAII increment of one service gauge: the decrement runs on drop, so
/// early returns, contained panics and never-run pool closures all give
/// the increment back. Every gauge update in the serving path goes
/// through one of these — a leaked gauge is a drain that never finishes
/// and an admission queue that slowly chokes.
#[derive(Debug)]
pub struct GaugeGuard {
    metrics: Arc<Metrics>,
    gauge: Gauge,
}

impl GaugeGuard {
    /// Increments `gauge` now; decrements it on drop.
    pub fn enter(metrics: Arc<Metrics>, gauge: Gauge) -> GaugeGuard {
        gauge.cell(&metrics).fetch_add(1, Ordering::AcqRel);
        GaugeGuard { metrics, gauge }
    }

    /// Adopts an increment the caller already made (e.g. via a bounded
    /// `fetch_update`), decrementing it on drop without a second
    /// increment.
    pub fn adopt(metrics: Arc<Metrics>, gauge: Gauge) -> GaugeGuard {
        GaugeGuard { metrics, gauge }
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge
            .cell(&self.metrics)
            .fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let m = Metrics::new();
        m.requests.store(7, Ordering::Relaxed);
        m.queue_depth.store(3, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(
            Metrics::parse_line(&text, "modsynd_requests_total"),
            Some(7)
        );
        assert_eq!(Metrics::parse_line(&text, "modsynd_queue_depth"), Some(3));
        assert_eq!(
            Metrics::parse_line(&text, "modsynd_cache_hits_total"),
            Some(0)
        );
        assert_eq!(Metrics::parse_line(&text, "no_such_metric"), None);
    }

    #[test]
    fn count_mirrors_into_tracer() {
        let tracer = Tracer::enabled();
        let m = Metrics::new();
        m.count(&m.shed, &tracer, "shed");
        m.count(&m.shed, &tracer, "shed");
        assert_eq!(m.shed.load(Ordering::Relaxed), 2);
        assert_eq!(tracer.report().total_counter("shed"), 2);
    }

    #[test]
    fn histogram_lines_render_and_parse() {
        let m = Metrics::new();
        for v in [100u64, 200, 300] {
            m.hists.record("request_us:synth:modular", v);
        }
        let text = m.render();
        assert_eq!(
            Metrics::parse_hist(&text, "request_us:synth:modular", "count"),
            Some(3)
        );
        assert_eq!(
            Metrics::parse_hist(&text, "request_us:synth:modular", "max"),
            Some(300)
        );
        let p50 = Metrics::parse_hist(&text, "request_us:synth:modular", "p50").unwrap();
        assert!((190..=210).contains(&p50), "p50 ≈ 200, got {p50}");
        // Un-keyed names render without the key label.
        assert!(text.contains("modsynd_queue_wait_us{q=\"p50\"} 0\n"));
    }

    /// The full exposition of a fresh server is pinned: adding, removing
    /// or reordering lines is a contract change for scrapers and must be
    /// deliberate (update this test when it is).
    #[test]
    fn fresh_exposition_format_is_pinned() {
        let counter_lines = "\
modsynd_requests_total 0
modsynd_cache_hits_total 0
modsynd_cache_misses_total 0
modsynd_cache_evictions_total 0
modsynd_store_hits_total 0
modsynd_store_misses_total 0
modsynd_store_dirty_total 0
modsynd_shed_total 0
modsynd_aborted_total 0
modsynd_certified_total 0
modsynd_http_errors_total 0
modsynd_synth_failures_total 0
modsynd_check_failures_total 0
modsynd_panics_total 0
modsynd_breaker_rejections_total 0
modsynd_breaker_opens_total 0
modsynd_retry_recoveries_total 0
modsynd_injected_faults_total 0
modsynd_wal_appends_total 0
modsynd_wal_fsyncs_total 0
modsynd_checkpoints_total 0
modsynd_recovery_frames_replayed 0
modsynd_recovery_frames_truncated 0
modsynd_recovery_checksum_failures 0
modsynd_recovery_snapshot_fallbacks 0
modsynd_queue_depth 0
modsynd_in_flight 0
modsynd_connections 0
modsynd_ready 0
";
        let mut expected = String::from(counter_lines);
        let mut names: Vec<&str> = STANDARD_HISTOGRAMS.to_vec();
        names.sort_unstable();
        for name in names {
            for q in ["p50", "p90", "p99", "max", "count"] {
                expected.push_str(&Metrics::hist_line_name(name, q));
                expected.push_str(" 0\n");
            }
        }
        assert_eq!(Metrics::new().render(), expected);
    }

    #[test]
    fn gauge_guards_enter_adopt_and_release() {
        let m = Arc::new(Metrics::new());
        {
            let _a = GaugeGuard::enter(Arc::clone(&m), Gauge::Connections);
            let _b = GaugeGuard::enter(Arc::clone(&m), Gauge::Connections);
            assert_eq!(m.connections.load(Ordering::Relaxed), 2);
        }
        assert_eq!(m.connections.load(Ordering::Relaxed), 0);
        // Adopt: the increment happened elsewhere; the guard only releases.
        m.queue_depth.fetch_add(1, Ordering::AcqRel);
        drop(GaugeGuard::adopt(Arc::clone(&m), Gauge::QueueDepth));
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn gauge_guard_releases_on_unwind() {
        let m = Arc::new(Metrics::new());
        let metrics = Arc::clone(&m);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = GaugeGuard::enter(metrics, Gauge::InFlight);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(m.in_flight.load(Ordering::Relaxed), 0);
    }
}
