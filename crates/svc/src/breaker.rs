//! A per-method circuit breaker for the `/synth` path.
//!
//! Each synthesis method gets its own breaker, because they fail
//! independently: `direct` hitting its backtrack limit on every large STG
//! says nothing about `modular`'s health. The state machine is the classic
//! three states:
//!
//! * **Closed** — requests flow. Failures accumulate into an
//!   *exponentially decaying* score (half-life
//!   [`BreakerConfig::half_life`]), so a burst of failures trips the
//!   breaker while the same count spread over an hour does not. When the
//!   score reaches [`BreakerConfig::failure_threshold`], the breaker
//!   opens.
//! * **Open** — requests are rejected immediately (the server answers
//!   `503` with `Retry-After`) for [`BreakerConfig::cooldown`]; the
//!   backend gets air instead of a retry storm.
//! * **Half-open** — after the cooldown, exactly one probe request is
//!   admitted. Success closes the breaker and clears the score; failure
//!   re-opens it for another cooldown.
//!
//! What counts as failure is the *server's* problem set: handler panics,
//! deadline aborts and oracle rejections. A `422` (the STG is unsolvable
//! under the method) is the client's problem and counts as success — a
//! stream of bad inputs must not lock healthy clients out.
//!
//! Every method takes `now: Instant` from the caller instead of reading
//! the clock, so tests drive the state machine through a synthetic
//! timeline without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Decayed failure score at which the breaker opens.
    pub failure_threshold: f64,
    /// Half-life of the failure score while closed.
    pub half_life: Duration,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5.0,
            half_life: Duration::from_secs(30),
            cooldown: Duration::from_secs(5),
        }
    }
}

/// What the breaker says about one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: let it through.
    Allowed,
    /// Half-open: let it through as the single trial request.
    Probe,
    /// Open (or a probe is already in flight): reject with `Retry-After`.
    Rejected {
        /// Whole seconds the client should wait, at least 1.
        retry_after: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: State,
    score: f64,
    scored_at: Instant,
}

/// One breaker; the server holds one per [`modsyn::Method`].
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    opens: AtomicU64,
    rejections: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with `config`, scoring from `now`.
    pub fn new(config: BreakerConfig, now: Instant) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: State::Closed,
                score: 0.0,
                scored_at: now,
            }),
            opens: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn decay(&self, inner: &mut Inner, now: Instant) {
        let dt = now.saturating_duration_since(inner.scored_at);
        if dt > Duration::ZERO && inner.score > 0.0 {
            let half_lives = dt.as_secs_f64() / self.config.half_life.as_secs_f64().max(1e-9);
            inner.score *= 0.5_f64.powf(half_lives);
            if inner.score < 1e-6 {
                inner.score = 0.0;
            }
        }
        inner.scored_at = now;
    }

    /// Asks whether a request arriving at `now` may proceed.
    ///
    /// An `Open` breaker whose cooldown has elapsed transitions to
    /// half-open and admits this request as the probe; while a probe is in
    /// flight, further requests are rejected.
    pub fn admit(&self, now: Instant) -> Admission {
        let mut inner = self.lock();
        self.decay(&mut inner, now);
        match inner.state {
            State::Closed => Admission::Allowed,
            State::HalfOpen => {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                Admission::Rejected {
                    retry_after: retry_after_secs(self.config.cooldown),
                }
            }
            State::Open { until } => {
                if now >= until {
                    inner.state = State::HalfOpen;
                    Admission::Probe
                } else {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    Admission::Rejected {
                        retry_after: retry_after_secs(until.saturating_duration_since(now)),
                    }
                }
            }
        }
    }

    /// Whether the breaker is open (and its cooldown has not yet elapsed)
    /// at `now` — the readiness probe's view; admission paths keep using
    /// [`CircuitBreaker::admit`], which also advances the state machine.
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(self.lock().state, State::Open { until } if now < until)
    }

    /// Records the outcome of an admitted request. Returns `true` when
    /// this record *opened* the breaker (for the `breaker_opens` metric).
    pub fn record(&self, now: Instant, success: bool) -> bool {
        let mut inner = self.lock();
        self.decay(&mut inner, now);
        match (inner.state, success) {
            (State::HalfOpen, true) => {
                inner.state = State::Closed;
                inner.score = 0.0;
                false
            }
            (State::HalfOpen, false) => {
                inner.state = State::Open {
                    until: now + self.config.cooldown,
                };
                self.opens.fetch_add(1, Ordering::Relaxed);
                true
            }
            (State::Closed, false) => {
                inner.score += 1.0;
                if inner.score >= self.config.failure_threshold {
                    inner.state = State::Open {
                        until: now + self.config.cooldown,
                    };
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            // Success while closed: decay alone recovers the score.
            // Records while open can only come from requests admitted
            // before the trip; they change nothing.
            _ => false,
        }
    }

    /// Times the breaker has transitioned to open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Requests rejected while open or probing.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Whether the breaker is currently letting ordinary traffic through.
    pub fn is_closed(&self) -> bool {
        self.lock().state == State::Closed
    }
}

fn retry_after_secs(wait: Duration) -> u64 {
    wait.as_secs_f64().ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3.0,
            half_life: Duration::from_secs(10),
            cooldown: Duration::from_secs(5),
        }
    }

    #[test]
    fn a_failure_burst_opens_and_cooldown_probes() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(fast(), t0);
        assert_eq!(b.admit(t0), Admission::Allowed);
        assert!(!b.record(t0, false));
        assert!(!b.record(t0, false));
        assert!(b.record(t0, false), "third failure should trip");
        assert_eq!(b.opens(), 1);

        // Open: rejected with the remaining cooldown.
        match b.admit(t0 + Duration::from_secs(1)) {
            Admission::Rejected { retry_after } => assert!((1..=5).contains(&retry_after)),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(b.rejections(), 1);

        // After the cooldown: exactly one probe, then rejection again.
        let t1 = t0 + Duration::from_secs(6);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert!(matches!(b.admit(t1), Admission::Rejected { .. }));

        // Probe success closes and clears.
        assert!(!b.record(t1, true));
        assert!(b.is_closed());
        assert_eq!(b.admit(t1), Admission::Allowed);
    }

    #[test]
    fn a_failed_probe_reopens() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(fast(), t0);
        for _ in 0..3 {
            b.record(t0, false);
        }
        let t1 = t0 + Duration::from_secs(6);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert!(b.record(t1, false), "failed probe re-opens");
        assert_eq!(b.opens(), 2);
        assert!(matches!(b.admit(t1), Admission::Rejected { .. }));
        // …and the next cooldown admits a fresh probe.
        assert_eq!(b.admit(t1 + Duration::from_secs(6)), Admission::Probe);
    }

    #[test]
    fn slow_failures_decay_instead_of_tripping() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(fast(), t0);
        // One failure per 20s = two half-lives of decay between failures;
        // the score never reaches 3.
        for i in 0..20u64 {
            let t = t0 + Duration::from_secs(20 * i);
            assert_eq!(b.admit(t), Admission::Allowed, "failure #{i}");
            assert!(!b.record(t, false), "failure #{i} must not trip");
        }
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn successes_never_open() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(fast(), t0);
        for i in 0..100u64 {
            let t = t0 + Duration::from_millis(i);
            assert_eq!(b.admit(t), Admission::Allowed);
            b.record(t, true);
        }
        assert_eq!(b.opens(), 0);
        assert_eq!(b.rejections(), 0);
    }

    #[test]
    fn retry_after_is_at_least_one_second() {
        assert_eq!(retry_after_secs(Duration::from_millis(10)), 1);
        assert_eq!(retry_after_secs(Duration::from_millis(1500)), 2);
        assert_eq!(retry_after_secs(Duration::ZERO), 1);
    }
}
