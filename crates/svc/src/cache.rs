//! A sharded, size-bounded LRU cache for rendered synthesis responses.
//!
//! Keys are 128-bit content identities (the canonical
//! [`modsyn_stg::stg_digest`] of the request STG combined with the method
//! tag); values are immutable `Arc` blobs, so a hit is a clone of a
//! pointer, never a copy of the body. The map is split into
//! power-of-two shards, each behind its own mutex, so concurrent handler
//! threads only contend when they land on the same shard.
//!
//! Bounds are enforced **per shard** (total ÷ shards, at least one entry):
//! on insert, a shard evicts its least-recently-used entries until both
//! its entry and byte budgets hold. Recency is a monotonically increasing
//! stamp bumped on every hit; eviction scans the shard for the minimum
//! stamp, which is O(shard size) but shards are small by construction
//! (default 1024 entries across 8 shards). Two threads that miss on the
//! same key concurrently will both compute and insert; the synthesis
//! pipeline is deterministic, so both insert byte-identical values and
//! last-writer-wins is harmless (no request coalescing is needed for
//! correctness, only for economy).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use modsyn_fault::{site, FaultHook, Faults};

/// Cache bounds.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of shards, rounded up to a power of two, at least 1.
    pub shards: usize,
    /// Total entry budget across all shards.
    pub max_entries: usize,
    /// Total byte budget (sum of value costs) across all shards.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            max_entries: 1024,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

struct Entry<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

struct Shard<V> {
    map: HashMap<u128, Entry<V>>,
    bytes: usize,
}

/// The cache. `V` is cheap to clone (an `Arc` in the service).
pub struct ShardedLru<V: Clone> {
    shards: Vec<Mutex<Shard<V>>>,
    mask: usize,
    per_shard_entries: usize,
    per_shard_bytes: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
    faults: Faults,
}

impl<V: Clone> ShardedLru<V> {
    /// An empty cache with `config` bounds.
    pub fn new(config: &CacheConfig) -> ShardedLru<V> {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            mask: shards - 1,
            per_shard_entries: (config.max_entries / shards).max(1),
            per_shard_bytes: (config.max_bytes / shards).max(1),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            faults: Faults::none(),
        }
    }

    /// Attaches a fault-injection handle: an armed `cache.evict-storm`
    /// rule empties the target shard on insert, modelling a pathological
    /// eviction cascade. Harmless to correctness — the cache is an
    /// economy, not a source of truth — but visible in the eviction
    /// metric, which is exactly what chaos runs assert on.
    pub fn with_faults(mut self, faults: Faults) -> ShardedLru<V> {
        self.faults = faults;
        self
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        // High bits pick the shard; the digest is already well-mixed.
        &self.shards[(key >> 64) as usize & self.mask]
    }

    fn lock(&self, key: u128) -> std::sync::MutexGuard<'_, Shard<V>> {
        self.shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: u128) -> Option<V> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.lock(key);
        let entry = shard.map.get_mut(&key)?;
        entry.stamp = stamp;
        Some(entry.value.clone())
    }

    /// Inserts `key → value` costing `bytes`, evicting LRU entries from the
    /// key's shard until its budgets hold. Returns how many entries were
    /// evicted. A value whose cost alone exceeds the per-shard byte budget
    /// is not cached at all.
    pub fn insert(&self, key: u128, value: V, bytes: usize) -> usize {
        if bytes > self.per_shard_bytes {
            return 0;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.lock(key);
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        let mut evicted = 0;
        if self.faults.fire(site::CACHE_EVICT_STORM) {
            evicted += shard.map.len();
            shard.map.clear();
            shard.bytes = 0;
        }
        while shard.map.len() + 1 > self.per_shard_entries
            || shard.bytes + bytes > self.per_shard_bytes
        {
            let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            let old = shard.map.remove(&victim).expect("victim came from the map");
            shard.bytes -= old.bytes;
            evicted += 1;
        }
        shard.bytes += bytes;
        shard.map.insert(
            key,
            Entry {
                value,
                bytes,
                stamp,
            },
        );
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// Current entry count across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current byte cost across shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes
            })
            .sum()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Every live entry, sorted by key — the persistence walk used by the
    /// daemon's `--store-snapshot` save. Recency stamps are not preserved:
    /// a reloaded cache starts with fresh LRU history, which only costs
    /// eviction-order fidelity, never correctness.
    pub fn entries(&self) -> Vec<(u128, V)> {
        let mut out: Vec<(u128, V)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .iter()
                    .map(|(&k, e)| (k, e.value.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// The per-shard entry budget (exposed for capacity assertions in
    /// tests: `len() <= shard_count() * entry_budget()` always holds).
    pub fn entry_budget(&self) -> usize {
        self.per_shard_entries
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl<V: Clone> std::fmt::Debug for ShardedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .field("bytes", &self.bytes())
            .finish()
    }
}

/// Combines an STG content digest and a method tag into one cache key.
/// The digest fills the high 64 bits (they also pick the shard); the tag
/// keeps the same STG synthesised under different methods distinct.
pub fn cache_key(digest: u64, method_tag: u8) -> u128 {
    (u128::from(digest) << 64) | u128::from(method_tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tiny(shards: usize, entries: usize, bytes: usize) -> ShardedLru<Arc<Vec<u8>>> {
        ShardedLru::new(&CacheConfig {
            shards,
            max_entries: entries,
            max_bytes: bytes,
        })
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = tiny(1, 8, 1024);
        assert!(cache.get(cache_key(1, 0)).is_none());
        cache.insert(cache_key(1, 0), Arc::new(b"x".to_vec()), 1);
        assert_eq!(*cache.get(cache_key(1, 0)).unwrap(), b"x".to_vec());
        // Same digest, different method: distinct entries.
        assert!(cache.get(cache_key(1, 1)).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = tiny(1, 2, 1024);
        cache.insert(cache_key(1, 0), Arc::new(vec![]), 1);
        cache.insert(cache_key(2, 0), Arc::new(vec![]), 1);
        // Touch 1 so 2 is the LRU victim.
        cache.get(cache_key(1, 0));
        let evicted = cache.insert(cache_key(3, 0), Arc::new(vec![]), 1);
        assert_eq!(evicted, 1);
        assert!(cache.get(cache_key(1, 0)).is_some());
        assert!(cache.get(cache_key(2, 0)).is_none());
        assert!(cache.get(cache_key(3, 0)).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn byte_budget_holds() {
        let cache = tiny(1, 100, 10);
        cache.insert(cache_key(1, 0), Arc::new(vec![]), 6);
        cache.insert(cache_key(2, 0), Arc::new(vec![]), 6);
        assert!(cache.bytes() <= 10, "bytes = {}", cache.bytes());
        assert_eq!(cache.len(), 1);
        // An oversized value is refused outright.
        assert_eq!(cache.insert(cache_key(3, 0), Arc::new(vec![]), 11), 0);
        assert!(cache.get(cache_key(3, 0)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = tiny(1, 4, 100);
        cache.insert(cache_key(1, 0), Arc::new(vec![]), 40);
        cache.insert(cache_key(1, 0), Arc::new(vec![]), 10);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 10);
    }

    #[test]
    fn an_eviction_storm_empties_the_shard_but_stays_correct() {
        use modsyn_fault::FaultPlan;
        let faults = FaultPlan::new("storm", 7)
            .rule(
                modsyn_fault::FaultRule::at(site::CACHE_EVICT_STORM)
                    .skip(2)
                    .times(1),
            )
            .arm();
        let cache = tiny(1, 8, 1024).with_faults(faults.clone());
        cache.insert(cache_key(1, 0), Arc::new(vec![]), 1);
        cache.insert(cache_key(2, 0), Arc::new(vec![]), 1);
        // The storm fires on this insert: both prior entries are dumped,
        // the new one still lands, and lookups stay consistent.
        cache.insert(cache_key(3, 0), Arc::new(b"v".to_vec()), 1);
        assert_eq!(faults.total_injected(), 1);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.get(cache_key(1, 0)).is_none());
        assert_eq!(*cache.get(cache_key(3, 0)).unwrap(), b"v".to_vec());
        assert_eq!(cache.bytes(), 1);
    }

    #[test]
    fn sharding_keeps_totals_bounded() {
        let cache = tiny(4, 8, 8 * 1024);
        for k in 0..1000u64 {
            cache.insert(
                cache_key(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), 0),
                Arc::new(vec![]),
                1,
            );
        }
        assert!(cache.len() <= cache.shard_count() * cache.entry_budget());
        assert!(cache.evictions() > 0);
    }
}
