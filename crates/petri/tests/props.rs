//! Property tests (gated): enable with `--features proptest-tests` after
//! re-adding the proptest dev-dependency (needs network; see Cargo.toml).
#![cfg(feature = "proptest-tests")]
//! Property-based tests for the Petri-net substrate.

use modsyn_petri::{PetriNet, PlaceId, ReachabilityOptions, TransitionId};
use proptest::prelude::*;

/// Builds a ring of `n` places/transitions with extra chord arcs — always a
/// connected, bounded net when only one token circulates.
fn ring(n: usize, chords: &[(usize, usize)]) -> PetriNet {
    let mut net = PetriNet::new();
    let places: Vec<PlaceId> = (0..n).map(|i| net.add_place(format!("p{i}"))).collect();
    let transitions: Vec<TransitionId> = (0..n)
        .map(|i| net.add_transition(format!("t{i}")))
        .collect();
    for i in 0..n {
        net.add_arc_place_to_transition(places[i], transitions[i])
            .unwrap();
        net.add_arc_transition_to_place(transitions[i], places[(i + 1) % n])
            .unwrap();
    }
    // Chords: transition i also deposits into a second place j and consumes
    // it back at j's transition — these keep the net a marked graph.
    for &(i, j) in chords {
        let (i, j) = (i % n, j % n);
        if i == j {
            continue;
        }
        let extra = net.add_place(format!("c{i}_{j}"));
        let _ = net.add_arc_transition_to_place(transitions[i], extra);
        let _ = net.add_arc_place_to_transition(extra, transitions[j]);
    }
    net.set_initial_tokens(places[0], 1).unwrap();
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_token_rings_have_n_markings(n in 2usize..12) {
        let net = ring(n, &[]);
        let g = net.reachability(&ReachabilityOptions::default()).unwrap();
        prop_assert_eq!(g.markings.len(), n);
        prop_assert!(g.is_safe());
        prop_assert!(g.deadlocks().is_empty());
        // Exactly one outgoing edge per marking in a plain ring.
        prop_assert_eq!(g.edges.len(), n);
    }

    #[test]
    fn firing_preserves_token_count_in_rings(n in 2usize..10, steps in 0usize..30) {
        let net = ring(n, &[]);
        let mut m = net.initial_marking();
        for _ in 0..steps {
            let enabled = m.enabled_transitions(&net);
            prop_assert_eq!(enabled.len(), 1, "ring has one enabled transition");
            m = m.fire(&net, enabled[0]).unwrap();
            prop_assert_eq!(m.total_tokens(), 1);
        }
    }

    #[test]
    fn reachability_never_panics_on_chorded_rings(
        n in 3usize..8,
        chords in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let net = ring(n, &chords);
        // Chorded rings can deadlock (a chord place may starve) but must
        // never panic or report inconsistent graphs.
        if let Ok(g) = net.reachability(&ReachabilityOptions::default()) {
            prop_assert!(!g.markings.is_empty());
            for e in &g.edges {
                prop_assert!(e.from < g.markings.len());
                prop_assert!(e.to < g.markings.len());
                // Edge endpoints really are one firing apart.
                let fired = g.markings[e.from].fire(&net, e.transition).unwrap();
                prop_assert_eq!(&fired, &g.markings[e.to]);
            }
        }
    }

    #[test]
    fn classification_is_stable_under_arc_insertion_order(
        n in 3usize..7,
        seed in 0u64..1000,
    ) {
        // Build the same ring twice with chords added in different orders;
        // the structural class must match.
        let c1 = [(seed as usize % n, (seed as usize + 1) % n)];
        let a = ring(n, &c1);
        let b = ring(n, &c1);
        prop_assert_eq!(a.classify(), b.classify());
    }
}
