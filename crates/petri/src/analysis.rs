//! Structural classification of nets (marked graph / free choice / general).
//!
//! The paper positions its method against comparators that are restricted to
//! marked graphs (Lin, Vanbekbergen '92 journal, Yu) or to safe free-choice
//! nets (Lavagno & Moon). These predicates let the synthesis layers reproduce
//! those restrictions.

use crate::PetriNet;

/// Structural class of a Petri net, from most to least restricted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetClass {
    /// Every place has at most one fan-in and one fan-out transition
    /// (pure concurrency, no choice).
    MarkedGraph,
    /// Every arc from a place with multiple fan-out leads to a transition
    /// with that place as its sole fan-in (choice and concurrency never
    /// interfere).
    FreeChoice,
    /// Anything else.
    General,
}

impl std::fmt::Display for NetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetClass::MarkedGraph => "marked graph",
            NetClass::FreeChoice => "free choice",
            NetClass::General => "general",
        };
        f.write_str(s)
    }
}

/// Structural facts about a net relevant to synthesis method applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralReport {
    /// The net's structural class.
    pub class: NetClass,
    /// Number of places with more than one fan-out transition (choice
    /// places).
    pub choice_places: usize,
    /// Number of transitions with more than one fan-in place
    /// (synchronisations).
    pub merge_transitions: usize,
}

impl PetriNet {
    /// Classifies the net structurally.
    ///
    /// ```
    /// use modsyn_petri::{NetClass, PetriNet};
    /// # fn main() -> Result<(), modsyn_petri::PetriError> {
    /// let mut net = PetriNet::new();
    /// let p = net.add_place("p");
    /// let t = net.add_transition("t");
    /// net.add_arc_place_to_transition(p, t)?;
    /// net.add_arc_transition_to_place(t, p)?;
    /// net.set_initial_tokens(p, 1)?;
    /// assert_eq!(net.classify(), NetClass::MarkedGraph);
    /// # Ok(())
    /// # }
    /// ```
    pub fn classify(&self) -> NetClass {
        self.structural_report().class
    }

    /// Full structural report (class plus choice/merge counts).
    pub fn structural_report(&self) -> StructuralReport {
        let mut choice_places = 0usize;
        let mut merge_transitions = 0usize;
        let mut marked_graph = true;
        let mut free_choice = true;

        for p in self.place_ids() {
            let place = self.place(p);
            if place.fanout().len() > 1 {
                choice_places += 1;
                marked_graph = false;
                // Free choice: every successor of a choice place must have
                // this place as its unique fan-in.
                for &t in place.fanout() {
                    if self.transition(t).fanin().len() != 1 {
                        free_choice = false;
                    }
                }
            }
            if place.fanin().len() > 1 {
                marked_graph = false;
            }
        }
        for t in self.transition_ids() {
            if self.transition(t).fanin().len() > 1 {
                merge_transitions += 1;
            }
        }

        let class = if marked_graph {
            NetClass::MarkedGraph
        } else if free_choice {
            NetClass::FreeChoice
        } else {
            NetClass::General
        };
        StructuralReport {
            class,
            choice_places,
            merge_transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlaceId, TransitionId};

    fn seq(net: &mut PetriNet, from: PlaceId, t: TransitionId, to: PlaceId) {
        net.add_arc_place_to_transition(from, t).unwrap();
        net.add_arc_transition_to_place(t, to).unwrap();
    }

    #[test]
    fn cycle_is_marked_graph() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        seq(&mut net, p0, t0, p1);
        seq(&mut net, p1, t1, p0);
        assert_eq!(net.classify(), NetClass::MarkedGraph);
    }

    #[test]
    fn pure_choice_is_free_choice() {
        // p0 chooses between t0 and t1; both return via p1/p2.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        let t3 = net.add_transition("t3");
        seq(&mut net, p0, t0, p1);
        seq(&mut net, p0, t1, p2);
        seq(&mut net, p1, t2, p0);
        seq(&mut net, p2, t3, p0);
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::FreeChoice);
        assert_eq!(report.choice_places, 1);
    }

    #[test]
    fn confusion_is_general() {
        // Choice place p0 feeds t0 which also synchronises on p1:
        // non-free-choice.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_place_to_transition(p1, t0).unwrap();
        net.add_arc_place_to_transition(p0, t1).unwrap();
        net.add_arc_transition_to_place(t0, p2).unwrap();
        net.add_arc_transition_to_place(t1, p2).unwrap();
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::General);
        assert_eq!(report.merge_transitions, 1);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(NetClass::MarkedGraph.to_string(), "marked graph");
        assert_eq!(NetClass::FreeChoice.to_string(), "free choice");
        assert_eq!(NetClass::General.to_string(), "general");
    }
}
