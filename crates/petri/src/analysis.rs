//! Structural classification of nets (marked graph / free choice /
//! asymmetric choice / general).
//!
//! The paper positions its method against comparators that are restricted to
//! marked graphs (Lin, Vanbekbergen '92 journal, Yu) or to safe free-choice
//! nets (Lavagno & Moon). These predicates let the synthesis layers reproduce
//! those restrictions. The asymmetric-choice tier (Wimmel's class: every two
//! conflicting places have *nested* successor sets) marks exactly where the
//! free-choice theory stops, so the corpus engine can generate beyond-theory
//! probes and pin their typed rejection.

use crate::PetriNet;

/// Structural class of a Petri net, from most to least restricted. The
/// derived order follows class inclusion: every marked graph is free-choice,
/// every free-choice net is asymmetric-choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetClass {
    /// Every place has at most one fan-in and one fan-out transition
    /// (pure concurrency, no choice).
    MarkedGraph,
    /// Every arc from a place with multiple fan-out leads to a transition
    /// with that place as its sole fan-in (choice and concurrency never
    /// interfere).
    FreeChoice,
    /// Not free-choice, but every pair of places sharing a successor
    /// transition has nested successor sets (`p• ⊆ q•` or `q• ⊆ p•`):
    /// choice and synchronisation mix, but confusion stays one-sided.
    AsymmetricChoice,
    /// Anything else (symmetric confusion).
    General,
}

impl std::fmt::Display for NetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetClass::MarkedGraph => "marked graph",
            NetClass::FreeChoice => "free choice",
            NetClass::AsymmetricChoice => "asymmetric choice",
            NetClass::General => "general",
        };
        f.write_str(s)
    }
}

/// Structural facts about a net relevant to synthesis method applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralReport {
    /// The net's structural class.
    pub class: NetClass,
    /// Number of places with more than one fan-out transition (choice
    /// places).
    pub choice_places: usize,
    /// Number of transitions with more than one fan-in place
    /// (synchronisations).
    pub merge_transitions: usize,
    /// Number of unordered place pairs that share a successor transition,
    /// have nested successor sets (`p• ⊆ q•` or `q• ⊆ p•`), and involve at
    /// least one real choice place (fanout > 1) — the witnesses that put a
    /// non-free-choice net in the asymmetric-choice class. Always zero for
    /// marked graphs and free-choice nets (a free-choice place's successors
    /// have singleton fan-in, so a choice place never shares a successor).
    pub nested_choice_pairs: usize,
}

impl PetriNet {
    /// Classifies the net structurally.
    ///
    /// ```
    /// use modsyn_petri::{NetClass, PetriNet};
    /// # fn main() -> Result<(), modsyn_petri::PetriError> {
    /// let mut net = PetriNet::new();
    /// let p = net.add_place("p");
    /// let t = net.add_transition("t");
    /// net.add_arc_place_to_transition(p, t)?;
    /// net.add_arc_transition_to_place(t, p)?;
    /// net.set_initial_tokens(p, 1)?;
    /// assert_eq!(net.classify(), NetClass::MarkedGraph);
    /// # Ok(())
    /// # }
    /// ```
    pub fn classify(&self) -> NetClass {
        self.structural_report().class
    }

    /// Full structural report (class plus choice/merge counts).
    pub fn structural_report(&self) -> StructuralReport {
        let mut choice_places = 0usize;
        let mut merge_transitions = 0usize;
        let mut marked_graph = true;
        let mut free_choice = true;

        for p in self.place_ids() {
            let place = self.place(p);
            if place.fanout().len() > 1 {
                choice_places += 1;
                marked_graph = false;
                // Free choice: every successor of a choice place must have
                // this place as its unique fan-in.
                for &t in place.fanout() {
                    if self.transition(t).fanin().len() != 1 {
                        free_choice = false;
                    }
                }
            }
            if place.fanin().len() > 1 {
                marked_graph = false;
            }
        }
        // Asymmetric-choice test: every pair of places that can conflict
        // (shares a successor transition) must have nested successor sets.
        // Any conflicting pair lives inside some transition's fan-in, so
        // scanning merge transitions' fan-in pairs covers all of them.
        let mut asymmetric = true;
        let mut nested_pairs = std::collections::BTreeSet::new();
        for t in self.transition_ids() {
            let fanin = self.transition(t).fanin();
            if fanin.len() > 1 {
                merge_transitions += 1;
            }
            for (i, &p) in fanin.iter().enumerate() {
                for &q in &fanin[i + 1..] {
                    let (po, qo) = (self.place(p).fanout(), self.place(q).fanout());
                    let subset = |a: &[crate::TransitionId], b: &[crate::TransitionId]| {
                        a.iter().all(|x| b.contains(x))
                    };
                    if subset(po, qo) || subset(qo, po) {
                        if po.len() > 1 || qo.len() > 1 {
                            nested_pairs.insert((p.min(q), p.max(q)));
                        }
                    } else {
                        asymmetric = false;
                    }
                }
            }
        }

        let class = if marked_graph {
            NetClass::MarkedGraph
        } else if free_choice {
            NetClass::FreeChoice
        } else if asymmetric {
            NetClass::AsymmetricChoice
        } else {
            NetClass::General
        };
        StructuralReport {
            class,
            choice_places,
            merge_transitions,
            nested_choice_pairs: nested_pairs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlaceId, TransitionId};

    fn seq(net: &mut PetriNet, from: PlaceId, t: TransitionId, to: PlaceId) {
        net.add_arc_place_to_transition(from, t).unwrap();
        net.add_arc_transition_to_place(t, to).unwrap();
    }

    #[test]
    fn cycle_is_marked_graph() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        seq(&mut net, p0, t0, p1);
        seq(&mut net, p1, t1, p0);
        assert_eq!(net.classify(), NetClass::MarkedGraph);
    }

    #[test]
    fn pure_choice_is_free_choice() {
        // p0 chooses between t0 and t1; both return via p1/p2.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        let t3 = net.add_transition("t3");
        seq(&mut net, p0, t0, p1);
        seq(&mut net, p0, t1, p2);
        seq(&mut net, p1, t2, p0);
        seq(&mut net, p2, t3, p0);
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::FreeChoice);
        assert_eq!(report.choice_places, 1);
    }

    #[test]
    fn one_sided_confusion_is_asymmetric_choice() {
        // Choice place p0 feeds t0 which also synchronises on p1; p1 only
        // feeds t0, so p1• ⊆ p0•: non-free-choice but asymmetric.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_place_to_transition(p1, t0).unwrap();
        net.add_arc_place_to_transition(p0, t1).unwrap();
        net.add_arc_transition_to_place(t0, p2).unwrap();
        net.add_arc_transition_to_place(t1, p2).unwrap();
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::AsymmetricChoice);
        assert_eq!(report.merge_transitions, 1);
        assert_eq!(report.nested_choice_pairs, 1);
    }

    #[test]
    fn symmetric_confusion_is_general() {
        // p0• = {t0, t1} and p1• = {t0, t2} share t0 but neither successor
        // set contains the other: symmetric confusion, the general class.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        let t2 = net.add_transition("t2");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_place_to_transition(p1, t0).unwrap();
        net.add_arc_place_to_transition(p0, t1).unwrap();
        net.add_arc_place_to_transition(p1, t2).unwrap();
        net.add_arc_transition_to_place(t0, p2).unwrap();
        net.add_arc_transition_to_place(t1, p2).unwrap();
        net.add_arc_transition_to_place(t2, p2).unwrap();
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::General);
        assert_eq!(report.merge_transitions, 1);
    }

    #[test]
    fn plain_join_is_not_a_nested_choice_witness() {
        // A marked-graph join: t0 synchronises p0 and p1, both with
        // singleton fan-outs — nested, but no choice place involved.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_place_to_transition(p1, t0).unwrap();
        net.add_arc_transition_to_place(t0, p2).unwrap();
        let report = net.structural_report();
        assert_eq!(report.class, NetClass::MarkedGraph);
        assert_eq!(report.nested_choice_pairs, 0);
    }

    #[test]
    fn class_order_follows_inclusion() {
        assert!(NetClass::MarkedGraph < NetClass::FreeChoice);
        assert!(NetClass::FreeChoice < NetClass::AsymmetricChoice);
        assert!(NetClass::AsymmetricChoice < NetClass::General);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(NetClass::MarkedGraph.to_string(), "marked graph");
        assert_eq!(NetClass::FreeChoice.to_string(), "free choice");
        assert_eq!(NetClass::AsymmetricChoice.to_string(), "asymmetric choice");
        assert_eq!(NetClass::General.to_string(), "general");
    }
}
