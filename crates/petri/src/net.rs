//! The static structure of a Petri net: places, transitions, flow relation.

use std::fmt;

use crate::{PetriError, PlaceId, TransitionId};

/// A place (condition holder) in a [`PetriNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    name: String,
    pub(crate) fanin: Vec<TransitionId>,
    pub(crate) fanout: Vec<TransitionId>,
    pub(crate) initial_tokens: u32,
}

impl Place {
    /// Human-readable name of this place.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Transitions depositing tokens into this place.
    pub fn fanin(&self) -> &[TransitionId] {
        &self.fanin
    }

    /// Transitions consuming tokens from this place.
    pub fn fanout(&self) -> &[TransitionId] {
        &self.fanout
    }

    /// Tokens on this place in the initial marking.
    pub fn initial_tokens(&self) -> u32 {
        self.initial_tokens
    }
}

/// A transition (event) in a [`PetriNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    name: String,
    pub(crate) fanin: Vec<PlaceId>,
    pub(crate) fanout: Vec<PlaceId>,
}

impl Transition {
    /// Human-readable name of this transition.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Places that must be marked for this transition to be enabled.
    pub fn fanin(&self) -> &[PlaceId] {
        &self.fanin
    }

    /// Places that receive a token when this transition fires.
    pub fn fanout(&self) -> &[PlaceId] {
        &self.fanout
    }
}

/// A Petri net `<P, T, F, M0>`: places, transitions, flow relation and
/// initial marking.
///
/// Arcs carry weight 1 (sufficient for STG work, where nets are 1-safe in
/// practice); multiplicities can be modelled by duplicate places if ever
/// needed.
///
/// # Example
///
/// ```
/// use modsyn_petri::PetriNet;
///
/// # fn main() -> Result<(), modsyn_petri::PetriError> {
/// let mut net = PetriNet::new();
/// let p = net.add_place("idle");
/// let t = net.add_transition("go");
/// net.add_arc_place_to_transition(p, t)?;
/// net.add_arc_transition_to_place(t, p)?;
/// net.set_initial_tokens(p, 1)?;
/// assert!(net.initial_marking().enables(&net, t));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place with the given name and returns its handle.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(Place {
            name: name.into(),
            fanin: Vec::new(),
            fanout: Vec::new(),
            initial_tokens: 0,
        });
        id
    }

    /// Adds a transition with the given name and returns its handle.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition {
            name: name.into(),
            fanin: Vec::new(),
            fanout: Vec::new(),
        });
        id
    }

    /// Adds an arc from `place` to `transition` (the place becomes part of
    /// the transition's precondition).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateArc`] if the arc already exists.
    pub fn add_arc_place_to_transition(
        &mut self,
        place: PlaceId,
        transition: TransitionId,
    ) -> Result<(), PetriError> {
        if self.transitions[transition.index()].fanin.contains(&place) {
            return Err(PetriError::DuplicateArc { place, transition });
        }
        self.transitions[transition.index()].fanin.push(place);
        self.places[place.index()].fanout.push(transition);
        Ok(())
    }

    /// Adds an arc from `transition` to `place` (the place becomes part of
    /// the transition's postcondition).
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateArc`] if the arc already exists.
    pub fn add_arc_transition_to_place(
        &mut self,
        transition: TransitionId,
        place: PlaceId,
    ) -> Result<(), PetriError> {
        if self.transitions[transition.index()].fanout.contains(&place) {
            return Err(PetriError::DuplicateArc { place, transition });
        }
        self.transitions[transition.index()].fanout.push(place);
        self.places[place.index()].fanin.push(transition);
        Ok(())
    }

    /// Sets the number of tokens on `place` in the initial marking.
    ///
    /// # Errors
    ///
    /// This method currently always succeeds; the `Result` is kept so
    /// capacity policies can be added without breaking callers.
    pub fn set_initial_tokens(&mut self, place: PlaceId, tokens: u32) -> Result<(), PetriError> {
        self.places[place.index()].initial_tokens = tokens;
        Ok(())
    }

    /// The place behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this net.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.index()]
    }

    /// The transition behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this net.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Iterator over all place handles.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len() as u32).map(PlaceId)
    }

    /// Iterator over all transition handles.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// Looks up a transition by name. Linear scan, intended for parsers and
    /// tests, not hot paths.
    pub fn find_transition(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransitionId(i as u32))
    }

    /// Looks up a place by name. Linear scan.
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(|i| PlaceId(i as u32))
    }

    /// The initial marking `M0` recorded on the places.
    pub fn initial_marking(&self) -> crate::Marking {
        crate::Marking::from_tokens(self.places.iter().map(|p| p.initial_tokens))
    }

    /// Validates basic well-formedness used by the synthesis layers.
    ///
    /// # Errors
    ///
    /// * [`PetriError::EmptyInitialMarking`] if no place carries a token.
    /// * [`PetriError::SourceTransition`] if some transition has no fan-in.
    pub fn validate(&self) -> Result<(), PetriError> {
        if self.places.iter().all(|p| p.initial_tokens == 0) {
            return Err(PetriError::EmptyInitialMarking);
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if t.fanin.is_empty() {
                return Err(PetriError::SourceTransition {
                    transition: TransitionId(i as u32),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "petri net: {} places, {} transitions",
            self.places.len(),
            self.transitions.len()
        )?;
        for t in &self.transitions {
            let ins: Vec<_> = t
                .fanin
                .iter()
                .map(|p| self.places[p.index()].name.as_str())
                .collect();
            let outs: Vec<_> = t
                .fanout
                .iter()
                .map(|p| self.places[p.index()].name.as_str())
                .collect();
            writeln!(f, "  {} : {:?} -> {:?}", t.name, ins, outs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> (PetriNet, PlaceId, PlaceId, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("a+");
        let t1 = net.add_transition("a-");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_transition_to_place(t0, p1).unwrap();
        net.add_arc_place_to_transition(p1, t1).unwrap();
        net.add_arc_transition_to_place(t1, p0).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        (net, p0, p1, t0, t1)
    }

    #[test]
    fn arcs_update_fanin_fanout() {
        let (net, p0, p1, t0, t1) = two_cycle();
        assert_eq!(net.transition(t0).fanin(), &[p0]);
        assert_eq!(net.transition(t0).fanout(), &[p1]);
        assert_eq!(net.place(p0).fanout(), &[t0]);
        assert_eq!(net.place(p0).fanin(), &[t1]);
        assert_eq!(net.place(p1).fanin(), &[t0]);
    }

    #[test]
    fn duplicate_arc_is_rejected() {
        let (mut net, p0, _p1, t0, _t1) = two_cycle();
        let err = net.add_arc_place_to_transition(p0, t0).unwrap_err();
        assert_eq!(
            err,
            PetriError::DuplicateArc {
                place: p0,
                transition: t0
            }
        );
    }

    #[test]
    fn find_by_name() {
        let (net, p0, _p1, t0, _t1) = two_cycle();
        assert_eq!(net.find_place("p0"), Some(p0));
        assert_eq!(net.find_transition("a+"), Some(t0));
        assert_eq!(net.find_transition("nope"), None);
    }

    #[test]
    fn validate_accepts_live_cycle() {
        let (net, ..) = two_cycle();
        net.validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty_marking() {
        let (mut net, p0, ..) = two_cycle();
        net.set_initial_tokens(p0, 0).unwrap();
        assert_eq!(net.validate(), Err(PetriError::EmptyInitialMarking));
    }

    #[test]
    fn validate_rejects_source_transition() {
        let (mut net, ..) = two_cycle();
        let t = net.add_transition("orphan");
        assert_eq!(
            net.validate(),
            Err(PetriError::SourceTransition { transition: t })
        );
    }

    #[test]
    fn display_mentions_structure() {
        let (net, ..) = two_cycle();
        let s = net.to_string();
        assert!(s.contains("2 places"));
        assert!(s.contains("a+"));
    }
}
