//! Typed index handles into a [`crate::PetriNet`].

use std::fmt;

/// Handle to a place in a [`crate::PetriNet`].
///
/// Obtained from [`crate::PetriNet::add_place`]; only meaningful for the net
/// that created it.
///
/// ```
/// use modsyn_petri::PetriNet;
/// let mut net = PetriNet::new();
/// let p = net.add_place("req_waiting");
/// assert_eq!(net.place(p).name(), "req_waiting");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

/// Handle to a transition in a [`crate::PetriNet`].
///
/// Obtained from [`crate::PetriNet::add_transition`].
///
/// ```
/// use modsyn_petri::PetriNet;
/// let mut net = PetriNet::new();
/// let t = net.add_transition("req+");
/// assert_eq!(net.transition(t).name(), "req+");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Raw index of this place, usable for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a raw index.
    ///
    /// The caller is responsible for the index being in range for the net it
    /// is used with; out-of-range handles cause a panic on lookup.
    pub fn from_index(index: usize) -> Self {
        PlaceId(index as u32)
    }
}

impl TransitionId {
    /// Raw index of this transition, usable for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a raw index.
    ///
    /// The caller is responsible for the index being in range for the net it
    /// is used with; out-of-range handles cause a panic on lookup.
    pub fn from_index(index: usize) -> Self {
        TransitionId(index as u32)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_round_trips_index() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn transition_id_round_trips_index() {
        let t = TransitionId::from_index(3);
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "t3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(PlaceId::from_index(1) < PlaceId::from_index(2));
        assert!(TransitionId::from_index(0) < TransitionId::from_index(9));
    }
}
