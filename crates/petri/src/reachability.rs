//! Exhaustive marking enumeration (the reachability graph).

use std::collections::HashMap;

use crate::{Marking, PetriError, PetriNet, TransitionId};

/// Limits applied while exploring the marking space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Abort once this many distinct markings have been found. Protects
    /// against unbounded nets and state-space blow-ups.
    pub max_markings: usize,
    /// Per-place token capacity; exceeding it means the net is not
    /// `capacity`-bounded. STG work uses 1-safe nets, but 2 leaves headroom
    /// to detect safety violations rather than mask them.
    pub capacity: u32,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_markings: 1_000_000,
            capacity: 1,
        }
    }
}

/// One edge of the reachability graph: marking `from` fires `transition`
/// reaching marking `to` (indices into [`ReachabilityGraph::markings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReachedEdge {
    /// Index of the source marking.
    pub from: usize,
    /// The fired transition.
    pub transition: TransitionId,
    /// Index of the target marking.
    pub to: usize,
}

/// The reachability graph of a net: every reachable marking plus the firing
/// edges between them. Index 0 is always the initial marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityGraph {
    /// All distinct reachable markings; index 0 is the initial marking.
    pub markings: Vec<Marking>,
    /// All firing edges between markings.
    pub edges: Vec<ReachedEdge>,
}

impl ReachabilityGraph {
    /// Whether every reachable marking is 1-safe.
    pub fn is_safe(&self) -> bool {
        self.markings.iter().all(|m| m.max_tokens_on_a_place() <= 1)
    }

    /// Indices of markings with no outgoing edge (deadlocks).
    pub fn deadlocks(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.markings.len()];
        for e in &self.edges {
            has_out[e.from] = true;
        }
        has_out
            .iter()
            .enumerate()
            .filter_map(|(i, &h)| (!h).then_some(i))
            .collect()
    }
}

impl PetriNet {
    /// Enumerates all reachable markings by breadth-first search.
    ///
    /// # Errors
    ///
    /// * [`PetriError::EmptyInitialMarking`] / [`PetriError::SourceTransition`]
    ///   if the net fails [`PetriNet::validate`].
    /// * [`PetriError::MarkingBudgetExceeded`] if more than
    ///   `options.max_markings` markings are reachable.
    /// * [`PetriError::CapacityExceeded`] if any place exceeds
    ///   `options.capacity` tokens.
    pub fn reachability(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<ReachabilityGraph, PetriError> {
        self.validate()?;
        let initial = self.initial_marking();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings = vec![initial.clone()];
        index.insert(initial, 0);
        let mut edges = Vec::new();
        let mut frontier = 0usize;

        while frontier < markings.len() {
            let m = markings[frontier].clone();
            for t in self.transition_ids() {
                let Some(next) = m.fire(self, t) else {
                    continue;
                };
                if next.max_tokens_on_a_place() > options.capacity {
                    let place = next
                        .as_slice()
                        .iter()
                        .position(|&tok| tok > options.capacity)
                        .map(crate::PlaceId::from_index)
                        .expect("some place exceeded capacity");
                    return Err(PetriError::CapacityExceeded {
                        place,
                        capacity: options.capacity,
                    });
                }
                let to = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= options.max_markings {
                            return Err(PetriError::MarkingBudgetExceeded {
                                budget: options.max_markings,
                            });
                        }
                        let i = markings.len();
                        markings.push(next.clone());
                        index.insert(next, i);
                        i
                    }
                };
                edges.push(ReachedEdge {
                    from: frontier,
                    transition: t,
                    to,
                });
            }
            frontier += 1;
        }

        Ok(ReachabilityGraph { markings, edges })
    }

    /// [`PetriNet::reachability`] wrapped in a `petri.reach` observability
    /// span recording the explored marking and edge counts. With a disabled
    /// tracer this is exactly [`PetriNet::reachability`].
    pub fn reachability_traced(
        &self,
        options: &ReachabilityOptions,
        tracer: &modsyn_obs::Tracer,
    ) -> Result<ReachabilityGraph, PetriError> {
        if !tracer.is_enabled() {
            return self.reachability(options);
        }
        let _span = tracer.span("petri.reach");
        let result = self.reachability(options);
        match &result {
            Ok(graph) => {
                tracer.gauge("markings", graph.markings.len() as f64);
                tracer.gauge("edges", graph.edges.len() as f64);
            }
            Err(e) => tracer.note("error", &e.to_string()),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaceId;

    #[test]
    fn reachability_traced_records_graph_size() {
        let net = two_independent_cycles();
        let tracer = modsyn_obs::Tracer::enabled();
        let graph = net
            .reachability_traced(&ReachabilityOptions::default(), &tracer)
            .unwrap();
        let report = tracer.report();
        let spans = report.spans_with_prefix("petri.reach");
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].gauge("markings"),
            Some(graph.markings.len() as f64)
        );
        assert_eq!(spans[0].gauge("edges"), Some(graph.edges.len() as f64));
    }

    /// Two independent 2-cycles: 2 x 2 = 4 reachable markings.
    fn two_independent_cycles() -> PetriNet {
        let mut net = PetriNet::new();
        for i in 0..2 {
            let a = net.add_place(format!("a{i}"));
            let b = net.add_place(format!("b{i}"));
            let up = net.add_transition(format!("s{i}+"));
            let dn = net.add_transition(format!("s{i}-"));
            net.add_arc_place_to_transition(a, up).unwrap();
            net.add_arc_transition_to_place(up, b).unwrap();
            net.add_arc_place_to_transition(b, dn).unwrap();
            net.add_arc_transition_to_place(dn, a).unwrap();
            net.set_initial_tokens(a, 1).unwrap();
        }
        net
    }

    #[test]
    fn concurrent_cycles_multiply_states() {
        let net = two_independent_cycles();
        let g = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(g.markings.len(), 4);
        assert_eq!(g.edges.len(), 8); // 2 enabled transitions per marking
        assert!(g.is_safe());
        assert!(g.deadlocks().is_empty());
    }

    #[test]
    fn initial_marking_is_index_zero() {
        let net = two_independent_cycles();
        let g = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(g.markings[0], net.initial_marking());
    }

    #[test]
    fn budget_is_enforced() {
        let net = two_independent_cycles();
        let err = net
            .reachability(&ReachabilityOptions {
                max_markings: 2,
                capacity: 1,
            })
            .unwrap_err();
        assert_eq!(err, PetriError::MarkingBudgetExceeded { budget: 2 });
    }

    #[test]
    fn unsafe_net_is_detected() {
        // t pumps tokens into p without bound: p0 -> t -> p0 + p1.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t = net.add_transition("t");
        net.add_arc_place_to_transition(p0, t).unwrap();
        net.add_arc_transition_to_place(t, p0).unwrap();
        net.add_arc_transition_to_place(t, p1).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        let err = net
            .reachability(&ReachabilityOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            PetriError::CapacityExceeded {
                place: PlaceId::from_index(1),
                capacity: 1
            }
        );
    }

    #[test]
    fn deadlock_is_reported() {
        // One-shot: p0 -> t -> p1, nothing leaves p1.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t = net.add_transition("t");
        net.add_arc_place_to_transition(p0, t).unwrap();
        net.add_arc_transition_to_place(t, p1).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        let g = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(g.markings.len(), 2);
        assert_eq!(g.deadlocks(), vec![1]);
    }
}
