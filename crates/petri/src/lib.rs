//! Petri-net substrate for asynchronous circuit synthesis.
//!
//! This crate provides the bipartite-graph formalism underlying signal
//! transition graphs (STGs): a [`PetriNet`] is a set of *places* and
//! *transitions* connected by a flow relation, with dynamics given by
//! [`Marking`]s and the token-game firing rule.
//!
//! The API is deliberately index-based: [`PlaceId`] and [`TransitionId`] are
//! small copyable handles into the net, which keeps higher layers (state
//! graphs with hundreds of thousands of edges) cheap to build.
//!
//! # Example
//!
//! Build a two-transition cycle (a minimal live net) and enumerate its
//! reachable markings:
//!
//! ```
//! use modsyn_petri::{PetriNet, ReachabilityOptions};
//!
//! # fn main() -> Result<(), modsyn_petri::PetriError> {
//! let mut net = PetriNet::new();
//! let p0 = net.add_place("p0");
//! let p1 = net.add_place("p1");
//! let t0 = net.add_transition("t0");
//! let t1 = net.add_transition("t1");
//! net.add_arc_place_to_transition(p0, t0)?;
//! net.add_arc_transition_to_place(t0, p1)?;
//! net.add_arc_place_to_transition(p1, t1)?;
//! net.add_arc_transition_to_place(t1, p0)?;
//! net.set_initial_tokens(p0, 1)?;
//!
//! let reach = net.reachability(&ReachabilityOptions::default())?;
//! assert_eq!(reach.markings.len(), 2);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod error;
mod ids;
mod invariants;
mod liveness;
mod marking;
mod net;
mod reachability;

pub use analysis::{NetClass, StructuralReport};
pub use error::PetriError;
pub use ids::{PlaceId, TransitionId};
pub use liveness::LivenessReport;
pub use marking::Marking;
pub use net::{PetriNet, Place, Transition};
pub use reachability::{ReachabilityGraph, ReachabilityOptions, ReachedEdge};
