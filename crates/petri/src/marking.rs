//! Markings and the token-game firing rule.

use std::fmt;

use crate::{PetriNet, PlaceId, TransitionId};

/// A marking: the number of tokens on every place of a net.
///
/// Markings are value types (hashable, comparable) so they can key the
/// visited-set during reachability analysis.
///
/// ```
/// use modsyn_petri::{Marking, PetriNet};
///
/// # fn main() -> Result<(), modsyn_petri::PetriError> {
/// let mut net = PetriNet::new();
/// let p = net.add_place("p");
/// let t = net.add_transition("t");
/// net.add_arc_place_to_transition(p, t)?;
/// net.add_arc_transition_to_place(t, p)?;
/// net.set_initial_tokens(p, 1)?;
///
/// let m = net.initial_marking();
/// assert!(m.enables(&net, t));
/// let m2 = m.fire(&net, t).expect("enabled");
/// assert_eq!(m, m2); // self-loop: firing returns to the same marking
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// Builds a marking from per-place token counts (place order).
    pub fn from_tokens(tokens: impl IntoIterator<Item = u32>) -> Self {
        Marking {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// Tokens on `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for the net this marking belongs to.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.tokens[place.index()]
    }

    /// Total number of tokens in the marking.
    pub fn total_tokens(&self) -> u32 {
        self.tokens.iter().sum()
    }

    /// Whether `place` holds at least one token.
    pub fn is_marked(&self, place: PlaceId) -> bool {
        self.tokens[place.index()] > 0
    }

    /// Whether transition `t` is enabled: every fan-in place is marked.
    pub fn enables(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.transition(t)
            .fanin()
            .iter()
            .all(|p| self.tokens[p.index()] > 0)
    }

    /// All transitions enabled in this marking, in id order.
    pub fn enabled_transitions(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transition_ids()
            .filter(|&t| self.enables(net, t))
            .collect()
    }

    /// Fires `t`, producing the successor marking, or `None` if `t` is not
    /// enabled. Firing removes one token from each fan-in place and deposits
    /// one token in each fan-out place.
    pub fn fire(&self, net: &PetriNet, t: TransitionId) -> Option<Marking> {
        if !self.enables(net, t) {
            return None;
        }
        let mut next = self.clone();
        for p in net.transition(t).fanin() {
            next.tokens[p.index()] -= 1;
        }
        for p in net.transition(t).fanout() {
            next.tokens[p.index()] += 1;
        }
        Some(next)
    }

    /// Maximum token count on any single place (1 for safe nets).
    pub fn max_tokens_on_a_place(&self) -> u32 {
        self.tokens.iter().copied().max().unwrap_or(0)
    }

    /// Raw per-place token vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p0 -> t0 -> p1 -> t1 -> p0, concurrent branch p2 -> t2 -> p2.
    fn net_with_choice() -> (PetriNet, Vec<PlaceId>, Vec<TransitionId>) {
        let mut net = PetriNet::new();
        let p: Vec<_> = (0..3).map(|i| net.add_place(format!("p{i}"))).collect();
        let t: Vec<_> = (0..3)
            .map(|i| net.add_transition(format!("t{i}")))
            .collect();
        net.add_arc_place_to_transition(p[0], t[0]).unwrap();
        net.add_arc_transition_to_place(t[0], p[1]).unwrap();
        net.add_arc_place_to_transition(p[1], t[1]).unwrap();
        net.add_arc_transition_to_place(t[1], p[0]).unwrap();
        net.add_arc_place_to_transition(p[2], t[2]).unwrap();
        net.add_arc_transition_to_place(t[2], p[2]).unwrap();
        net.set_initial_tokens(p[0], 1).unwrap();
        net.set_initial_tokens(p[2], 1).unwrap();
        (net, p, t)
    }

    #[test]
    fn enabled_transitions_reflect_marking() {
        let (net, _p, t) = net_with_choice();
        let m = net.initial_marking();
        assert_eq!(m.enabled_transitions(&net), vec![t[0], t[2]]);
    }

    #[test]
    fn fire_moves_tokens() {
        let (net, p, t) = net_with_choice();
        let m = net.initial_marking();
        let m2 = m.fire(&net, t[0]).unwrap();
        assert_eq!(m2.tokens(p[0]), 0);
        assert_eq!(m2.tokens(p[1]), 1);
        assert_eq!(m2.tokens(p[2]), 1);
        assert!(m2.enables(&net, t[1]));
        assert!(!m2.enables(&net, t[0]));
    }

    #[test]
    fn fire_disabled_returns_none() {
        let (net, _p, t) = net_with_choice();
        let m = net.initial_marking();
        assert!(m.fire(&net, t[1]).is_none());
    }

    #[test]
    fn firing_cycle_returns_to_initial() {
        let (net, _p, t) = net_with_choice();
        let m = net.initial_marking();
        let back = m.fire(&net, t[0]).unwrap().fire(&net, t[1]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn totals_and_max() {
        let (net, ..) = net_with_choice();
        let m = net.initial_marking();
        assert_eq!(m.total_tokens(), 2);
        assert_eq!(m.max_tokens_on_a_place(), 1);
        assert_eq!(m.to_string(), "[1 0 1]");
    }
}
