//! Liveness analysis over the reachability graph.
//!
//! A transition is *live* when it can eventually fire from every reachable
//! marking; a net is live when all transitions are. STG specifications must
//! be live (every signal edge keeps recurring), so this check validates
//! the benchmark generators beyond deadlock-freedom.

use crate::{PetriError, PetriNet, ReachabilityGraph, ReachabilityOptions, TransitionId};

/// Result of [`PetriNet::liveness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessReport {
    /// Transitions that are not live, with one witness marking index (into
    /// the reachability graph) from which they can never fire again.
    pub dead: Vec<(TransitionId, usize)>,
    /// Number of reachable markings examined.
    pub markings: usize,
}

impl LivenessReport {
    /// Whether every transition is live.
    pub fn is_live(&self) -> bool {
        self.dead.is_empty()
    }
}

impl PetriNet {
    /// Checks liveness of every transition by backward reachability on the
    /// marking graph: a transition `t` is live iff every marking can reach
    /// some marking enabling `t`.
    ///
    /// # Errors
    ///
    /// Propagates [`PetriError`] from reachability analysis.
    pub fn liveness(&self, options: &ReachabilityOptions) -> Result<LivenessReport, PetriError> {
        let graph = self.reachability(options)?;
        Ok(self.liveness_of(&graph))
    }

    /// [`PetriNet::liveness`] on an already-computed reachability graph.
    pub fn liveness_of(&self, graph: &ReachabilityGraph) -> LivenessReport {
        let n = graph.markings.len();
        // Reverse adjacency.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &graph.edges {
            preds[e.to].push(e.from);
        }

        let mut dead = Vec::new();
        for t in self.transition_ids() {
            // Markings where t is enabled.
            let mut can_reach = vec![false; n];
            let mut stack: Vec<usize> = graph
                .edges
                .iter()
                .filter(|e| e.transition == t)
                .map(|e| e.from)
                .collect();
            for &s in &stack {
                can_reach[s] = true;
            }
            if stack.is_empty() {
                dead.push((t, 0));
                continue;
            }
            while let Some(s) = stack.pop() {
                for &p in &preds[s] {
                    if !can_reach[p] {
                        can_reach[p] = true;
                        stack.push(p);
                    }
                }
            }
            if let Some(witness) = can_reach.iter().position(|&r| !r) {
                dead.push((t, witness));
            }
        }
        LivenessReport { dead, markings: n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_simple_cycle_is_live() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_place_to_transition(p0, t0).unwrap();
        net.add_arc_transition_to_place(t0, p1).unwrap();
        net.add_arc_place_to_transition(p1, t1).unwrap();
        net.add_arc_transition_to_place(t1, p0).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        let report = net.liveness(&ReachabilityOptions::default()).unwrap();
        assert!(report.is_live());
        assert_eq!(report.markings, 2);
    }

    #[test]
    fn a_one_shot_transition_is_dead() {
        // p0 -> t_once -> p1, and p1 -> t_loop -> p1: t_once fires once.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let once = net.add_transition("once");
        let looping = net.add_transition("loop");
        net.add_arc_place_to_transition(p0, once).unwrap();
        net.add_arc_transition_to_place(once, p1).unwrap();
        net.add_arc_place_to_transition(p1, looping).unwrap();
        net.add_arc_transition_to_place(looping, p1).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        let report = net.liveness(&ReachabilityOptions::default()).unwrap();
        assert!(!report.is_live());
        assert_eq!(report.dead.len(), 1);
        assert_eq!(report.dead[0].0, once);
    }

    #[test]
    fn free_choice_alternatives_are_both_live() {
        // p0 chooses t_a or t_b; both return to p0.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let ta = net.add_transition("ta");
        let tb = net.add_transition("tb");
        let ra = net.add_transition("ra");
        let rb = net.add_transition("rb");
        net.add_arc_place_to_transition(p0, ta).unwrap();
        net.add_arc_place_to_transition(p0, tb).unwrap();
        net.add_arc_transition_to_place(ta, pa).unwrap();
        net.add_arc_transition_to_place(tb, pb).unwrap();
        net.add_arc_place_to_transition(pa, ra).unwrap();
        net.add_arc_place_to_transition(pb, rb).unwrap();
        net.add_arc_transition_to_place(ra, p0).unwrap();
        net.add_arc_transition_to_place(rb, p0).unwrap();
        net.set_initial_tokens(p0, 1).unwrap();
        let report = net.liveness(&ReachabilityOptions::default()).unwrap();
        assert!(report.is_live(), "{:?}", report.dead);
    }
}
