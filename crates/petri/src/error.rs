//! Error type for Petri-net construction and analysis.

use std::error::Error;
use std::fmt;

use crate::{PlaceId, TransitionId};

/// Errors raised while building or analysing a [`crate::PetriNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A duplicate arc between the same place and transition was added.
    DuplicateArc {
        /// Place endpoint of the offending arc.
        place: PlaceId,
        /// Transition endpoint of the offending arc.
        transition: TransitionId,
    },
    /// Reachability exploration exceeded the configured marking budget.
    MarkingBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A place accumulated more tokens than the configured capacity allows,
    /// i.e. the net is not `capacity`-bounded.
    CapacityExceeded {
        /// The offending place.
        place: PlaceId,
        /// The configured per-place token capacity.
        capacity: u32,
    },
    /// The net has no tokens anywhere, so nothing can ever fire.
    EmptyInitialMarking,
    /// A transition has no fan-in places, which would make it fire
    /// unboundedly from every marking.
    SourceTransition {
        /// The offending transition.
        transition: TransitionId,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::DuplicateArc { place, transition } => {
                write!(f, "duplicate arc between {place} and {transition}")
            }
            PetriError::MarkingBudgetExceeded { budget } => {
                write!(f, "reachability exceeded the budget of {budget} markings")
            }
            PetriError::CapacityExceeded { place, capacity } => {
                write!(f, "place {place} exceeded token capacity {capacity}")
            }
            PetriError::EmptyInitialMarking => {
                write!(f, "initial marking is empty, no transition can fire")
            }
            PetriError::SourceTransition { transition } => {
                write!(f, "transition {transition} has no input places")
            }
        }
    }
}

impl Error for PetriError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = PetriError::MarkingBudgetExceeded { budget: 10 };
        assert_eq!(
            err.to_string(),
            "reachability exceeded the budget of 10 markings"
        );
        let err = PetriError::DuplicateArc {
            place: PlaceId::from_index(1),
            transition: TransitionId::from_index(2),
        };
        assert!(err.to_string().contains("p1"));
        assert!(err.to_string().contains("t2"));
    }
}
