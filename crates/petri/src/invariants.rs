//! Place (S-) and transition (T-) invariants.
//!
//! An S-invariant is a weighting `y` of the places with `yᵀ·C = 0` for the
//! incidence matrix `C`: the weighted token count is conserved by every
//! firing. An S-invariant with weight 1 on its places and weighted initial
//! marking 1 certifies that those places are 1-bounded and mutually
//! exclusive — the structural safety certificates behind the STG
//! benchmarks. A T-invariant is a firing-count vector `x` with `C·x = 0`
//! (a cycle returning to the same marking).

use crate::PetriNet;

impl PetriNet {
    /// The incidence matrix `C[p][t] = post(p, t) − pre(p, t)`.
    pub fn incidence_matrix(&self) -> Vec<Vec<i64>> {
        let mut c = vec![vec![0i64; self.transition_count()]; self.place_count()];
        for t in self.transition_ids() {
            for p in self.transition(t).fanin() {
                c[p.index()][t.index()] -= 1;
            }
            for p in self.transition(t).fanout() {
                c[p.index()][t.index()] += 1;
            }
        }
        c
    }

    /// A basis of the left kernel of the incidence matrix: the S-invariants
    /// (each a weight per place, scaled to integers with positive leading
    /// weight).
    pub fn place_invariants(&self) -> Vec<Vec<i64>> {
        kernel_basis(&transpose(&self.incidence_matrix()))
    }

    /// A basis of the right kernel of the incidence matrix: the
    /// T-invariants (each a firing count per transition).
    pub fn transition_invariants(&self) -> Vec<Vec<i64>> {
        kernel_basis(&self.incidence_matrix())
    }

    /// Whether every place is covered by some *non-negative* S-invariant
    /// whose weighted initial marking equals 1 — a structural certificate
    /// that the net is 1-safe.
    ///
    /// Conservative: the basis returned by [`PetriNet::place_invariants`]
    /// may miss non-negative combinations, so `false` does not prove the
    /// net unsafe.
    pub fn covered_by_unit_invariants(&self) -> bool {
        let invariants = self.place_invariants();
        let m0 = self.initial_marking();
        let mut covered = vec![false; self.place_count()];
        for y in &invariants {
            if y.iter().any(|&w| w < 0) {
                continue;
            }
            let weighted: i64 = y
                .iter()
                .enumerate()
                .map(|(p, &w)| w * i64::from(m0.as_slice()[p]))
                .sum();
            if weighted != 1 {
                continue;
            }
            for (p, &w) in y.iter().enumerate() {
                if w > 0 {
                    covered[p] = true;
                }
            }
        }
        covered.iter().all(|&c| c)
    }
}

fn transpose(m: &[Vec<i64>]) -> Vec<Vec<i64>> {
    if m.is_empty() {
        return Vec::new();
    }
    let rows = m.len();
    let cols = m[0].len();
    (0..cols)
        .map(|c| (0..rows).map(|r| m[r][c]).collect())
        .collect()
}

/// Basis of `{ x : M·x = 0 }` over the rationals, returned as primitive
/// integer vectors via fraction-free elimination.
fn kernel_basis(matrix: &[Vec<i64>]) -> Vec<Vec<i64>> {
    if matrix.is_empty() {
        return Vec::new();
    }
    let rows = matrix.len();
    let cols = matrix[0].len();
    let mut m: Vec<Vec<i128>> = matrix
        .iter()
        .map(|r| r.iter().map(|&x| x as i128).collect())
        .collect();

    // Fraction-free Gaussian elimination tracking pivot columns.
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut row = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let Some(pr) = (row..rows).find(|&r| m[r][col] != 0) else {
            continue;
        };
        m.swap(row, pr);
        let pivot = m[row][col];
        for r in 0..rows {
            if r == row || m[r][col] == 0 {
                continue;
            }
            let factor = m[r][col];
            #[allow(clippy::needless_range_loop)] // indexes two rows of `m` at once
            for c in 0..cols {
                m[r][c] = m[r][c] * pivot - m[row][c] * factor;
            }
            normalise(&mut m[r]);
        }
        pivot_cols.push(col);
        row += 1;
        if row == rows {
            break;
        }
    }

    // Free columns parameterise the kernel.
    let mut basis = Vec::new();
    for free in 0..cols {
        if pivot_cols.contains(&free) {
            continue;
        }
        // x[free] = 1; solve pivot entries.
        let mut x = vec![0i128; cols];
        x[free] = 1;
        // Each pivot row r with pivot column pc: pivot·x[pc] + row[free]·1 = 0
        // (all other free vars zero, other pivots eliminated).
        let mut denom_lcm: i128 = 1;
        for (r, &pc) in pivot_cols.iter().enumerate() {
            let pivot = m[r][pc];
            let rhs = -m[r][free];
            if rhs == 0 {
                continue;
            }
            // x[pc] = rhs / pivot — keep exact by scaling with lcm.
            let g = gcd(rhs.abs(), pivot.abs());
            let denom = (pivot / g).abs();
            denom_lcm = lcm(denom_lcm, denom);
        }
        for (r, &pc) in pivot_cols.iter().enumerate() {
            let pivot = m[r][pc];
            let rhs = -m[r][free] * denom_lcm;
            debug_assert_eq!(rhs % pivot, 0);
            x[pc] = rhs / pivot;
        }
        x[free] = denom_lcm;
        normalise(&mut x);
        // Positive leading entry for canonical form.
        if let Some(first) = x.iter().find(|&&v| v != 0) {
            if *first < 0 {
                for v in &mut x {
                    *v = -*v;
                }
            }
        }
        basis.push(x.iter().map(|&v| v as i64).collect());
    }
    basis
}

fn normalise(row: &mut [i128]) {
    let g = row.iter().fold(0i128, |acc, &v| gcd(acc, v.abs()));
    if g > 1 {
        for v in row {
            *v /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

#[cfg(test)]
mod tests {
    use crate::{PetriNet, PlaceId, TransitionId};

    fn ring(n: usize) -> PetriNet {
        let mut net = PetriNet::new();
        let places: Vec<PlaceId> = (0..n).map(|i| net.add_place(format!("p{i}"))).collect();
        let ts: Vec<TransitionId> = (0..n)
            .map(|i| net.add_transition(format!("t{i}")))
            .collect();
        for i in 0..n {
            net.add_arc_place_to_transition(places[i], ts[i]).unwrap();
            net.add_arc_transition_to_place(ts[i], places[(i + 1) % n])
                .unwrap();
        }
        net.set_initial_tokens(places[0], 1).unwrap();
        net
    }

    #[test]
    fn ring_has_the_all_ones_invariants() {
        let net = ring(4);
        let s = net.place_invariants();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0], vec![1, 1, 1, 1]);
        let t = net.transition_invariants();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], vec![1, 1, 1, 1]);
        assert!(net.covered_by_unit_invariants());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // t/p are matrix coordinates
    fn invariants_are_actually_invariant() {
        let net = ring(5);
        let c = net.incidence_matrix();
        for y in net.place_invariants() {
            for t in 0..net.transition_count() {
                let dot: i64 = (0..net.place_count()).map(|p| y[p] * c[p][t]).sum();
                assert_eq!(dot, 0);
            }
        }
        for x in net.transition_invariants() {
            for p in 0..net.place_count() {
                let dot: i64 = (0..net.transition_count()).map(|t| x[t] * c[p][t]).sum();
                assert_eq!(dot, 0);
            }
        }
    }

    #[test]
    fn two_independent_rings_have_two_invariants() {
        let mut net = PetriNet::new();
        for k in 0..2 {
            let a = net.add_place(format!("a{k}"));
            let b = net.add_place(format!("b{k}"));
            let up = net.add_transition(format!("u{k}"));
            let dn = net.add_transition(format!("d{k}"));
            net.add_arc_place_to_transition(a, up).unwrap();
            net.add_arc_transition_to_place(up, b).unwrap();
            net.add_arc_place_to_transition(b, dn).unwrap();
            net.add_arc_transition_to_place(dn, a).unwrap();
            net.set_initial_tokens(a, 1).unwrap();
        }
        let s = net.place_invariants();
        assert_eq!(s.len(), 2);
        assert!(net.covered_by_unit_invariants());
    }

    #[test]
    fn weighted_conservation_holds_along_firings() {
        let net = ring(3);
        let invariants = net.place_invariants();
        let mut m = net.initial_marking();
        let weight = |m: &crate::Marking, y: &[i64]| -> i64 {
            y.iter()
                .enumerate()
                .map(|(p, &w)| w * i64::from(m.as_slice()[p]))
                .sum()
        };
        let initial: Vec<i64> = invariants.iter().map(|y| weight(&m, y)).collect();
        for _ in 0..7 {
            let enabled = m.enabled_transitions(&net);
            m = m.fire(&net, enabled[0]).unwrap();
            for (y, &w0) in invariants.iter().zip(&initial) {
                assert_eq!(weight(&m, y), w0);
            }
        }
    }
}
