//! Log-scale fixed-bucket latency histograms (HDR-style).
//!
//! A [`Histogram`] is a fixed array of `AtomicU64` buckets covering the
//! full `u64` range with bounded relative error: values below
//! [`SUB_BUCKETS`] land in exact unit buckets, larger values are grouped
//! by magnitude (position of the most significant bit) and split into
//! [`SUB_BUCKETS`] sub-buckets per power of two, so any recorded value is
//! reconstructed to within `1 / SUB_BUCKETS` (≈3%) of its true magnitude.
//! Recording is lock-free — one `fetch_add` on the bucket plus three
//! bookkeeping atomics — and never allocates, which is what lets the
//! serving path keep request-latency distributions always on.
//!
//! [`HistogramSnapshot`] is the frozen, mergeable form: snapshots from
//! different histograms (or scrape intervals) add bucket-wise, and
//! [`HistogramSnapshot::percentile`] walks the cumulative counts to a
//! bucket midpoint. A [`HistogramRegistry`] names histograms on demand so
//! call sites can record by string key without plumbing handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Sub-buckets per power of two; also the count of exact unit buckets at
/// the bottom of the range. Must be a power of two.
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count: `SUB_BUCKETS` exact unit buckets plus one group of
/// `SUB_BUCKETS` for each magnitude (MSB position) from `SUB_BITS` to 63
/// inclusive.
pub const BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1);

/// Maps a value to its bucket index. Total over all of `u64`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS) as usize;
    // Keep the SUB_BITS bits below the MSB; the MSB itself contributes
    // the implicit `SUB_BUCKETS` offset subtracted here.
    let sub = ((value >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// The smallest value that maps to bucket `index` (inverse of
/// [`bucket_index`] on bucket lower bounds).
pub fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) as u64) << group
}

/// The representative value reported for bucket `index`: its midpoint
/// (exact for the unit buckets at the bottom).
fn bucket_mid(index: usize) -> u64 {
    let floor = bucket_floor(index);
    if index + 1 >= BUCKETS {
        return floor;
    }
    let width = bucket_floor(index + 1) - floor;
    floor + width / 2
}

/// A concurrent log-scale histogram. See the module docs for the bucket
/// scheme. All methods are lock-free; `record` is safe to call from any
/// number of threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current contents. Concurrent `record` calls may or may
    /// not be included; the snapshot is internally consistent enough for
    /// reporting (counts are read bucket-by-bucket, not torn).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: plain `u64` counts, mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Adds `other` bucket-wise. Merging snapshots from two histograms is
    /// equivalent to having recorded every observation into one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the observation of rank `ceil(q · count)` (the exact value
    /// for small observations, within ≈3% above). Returns 0 when empty;
    /// `q >= 1` reports the exact recorded max.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the recorded max (the top bucket's
                // midpoint may overshoot it).
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard quantile summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("max", Json::from(self.max)),
            ("p50", Json::from(self.percentile(0.50))),
            ("p90", Json::from(self.percentile(0.90))),
            ("p99", Json::from(self.percentile(0.99))),
        ])
    }
}

/// A shared name → [`Histogram`] map. `record` creates histograms on
/// demand; the registry mutex guards only the map, never the buckets, so
/// pre-registered hot paths ([`HistogramRegistry::handle`]) record without
/// taking it.
#[derive(Debug, Clone, Default)]
pub struct HistogramRegistry {
    inner: Arc<Mutex<BTreeMap<String, Arc<Histogram>>>>,
}

impl HistogramRegistry {
    /// An empty registry.
    pub fn new() -> HistogramRegistry {
        HistogramRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Histogram>>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The histogram registered under `name`, created empty if absent.
    /// Hot paths should call this once and keep the `Arc`.
    pub fn handle(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Records one observation into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        self.handle(name).record(value);
    }

    /// Snapshots every registered histogram, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_floor_inverts_bucket_index() {
        // Every bucket's floor maps back to that bucket, and floors are
        // strictly increasing.
        let mut prev = None;
        for i in 0..BUCKETS {
            let f = bucket_floor(i);
            assert_eq!(bucket_index(f), i, "floor of bucket {i}");
            if let Some(p) = prev {
                assert!(f > p, "floors not increasing at {i}");
            }
            prev = Some(f);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // A pseudo-random sweep over magnitudes: the reported midpoint is
        // within one sub-bucket width (1/SUB_BUCKETS) of the true value.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x >> (x % 60); // spread across magnitudes
            let mid = bucket_mid(bucket_index(v));
            let err = mid.abs_diff(v) as f64;
            let bound = (v as f64) / SUB_BUCKETS as f64 + 1.0;
            assert!(err <= bound, "v={v} mid={mid} err={err} bound={bound}");
        }
    }

    #[test]
    fn extremes_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.percentile(1.0), u64::MAX);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        for (q, want) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = s.percentile(q);
            let slack = want / SUB_BUCKETS as u64 + 1;
            assert!(
                got.abs_diff(want) <= slack,
                "p{q}: got {got}, want {want}±{slack}"
            );
        }
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(1.0), 1000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        let mut x = 7u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x >> 40;
            if i % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_names_and_snapshots() {
        let reg = HistogramRegistry::new();
        reg.record("b", 10);
        reg.record("a", 20);
        reg.record("a", 30);
        let snaps = reg.snapshot();
        let names: Vec<&str> = snaps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"], "sorted by name");
        assert_eq!(snaps[0].1.count(), 2);
        assert_eq!(snaps[1].1.count(), 1);
        // `handle` returns the same histogram for the same name.
        let h = reg.handle("a");
        h.record(40);
        assert_eq!(reg.handle("a").count(), 3);
    }

    #[test]
    fn snapshot_json_has_the_quantile_summary() {
        let h = Histogram::new();
        for v in [5u64, 10, 15] {
            h.record(v);
        }
        let json = h.snapshot().to_json();
        assert_eq!(json.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(json.get("max").and_then(Json::as_f64), Some(15.0));
        assert!(json.get("p50").is_some() && json.get("p99").is_some());
    }
}
