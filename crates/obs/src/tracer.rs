//! The span tracer and its thread-safe event sink.
//!
//! A [`Tracer`] is a cheap clonable handle. [`Tracer::disabled`] (the
//! default) carries no sink at all: every recording method starts with a
//! branch on `inner.is_none()` and returns before any formatting or
//! allocation happens, which is what keeps instrumented hot paths zero-cost
//! when observability is off. [`Tracer::enabled`] shares one mutex-guarded
//! event log between all clones.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::flight::{FlightKind, FlightRecorder};
use crate::hist::HistogramRegistry;
use crate::report::Report;

/// One recorded observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Span id, unique within the tracer.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Span name.
        name: String,
        /// Microseconds since the tracer was created.
        at_us: u64,
    },
    /// A span closed (its guard dropped).
    SpanEnd {
        /// The span that closed.
        id: u64,
        /// Microseconds since the tracer was created.
        at_us: u64,
    },
    /// A named counter increment, attributed to the innermost open span.
    Counter {
        /// Owning span (`None` at top level).
        span: Option<u64>,
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A named gauge sample (last write wins per span).
    Gauge {
        /// Owning span (`None` at top level).
        span: Option<u64>,
        /// Gauge name.
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// A key/value annotation.
    Note {
        /// Owning span (`None` at top level).
        span: Option<u64>,
        /// Annotation key.
        key: String,
        /// Annotation value.
        value: String,
    },
}

#[derive(Debug)]
struct State {
    events: Vec<Event>,
    /// Open-span stacks, one per thread; metrics recorded by a thread
    /// attach to the top of *that thread's* stack. Keeping the stacks
    /// per-thread is what lets worker-pool threads trace concurrently
    /// without corrupting each other's span nesting.
    stacks: HashMap<ThreadId, Vec<u64>>,
    next_span: u64,
}

impl State {
    fn current_span(&self) -> Option<u64> {
        self.stacks
            .get(&std::thread::current().id())
            .and_then(|s| s.last().copied())
    }
}

#[derive(Debug)]
struct Sink {
    epoch: Instant,
    state: Mutex<State>,
}

impl Sink {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panicking instrumented thread must not take observability down
        // with it; the event log stays usable.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A clonable tracing handle. See the module docs for the enabled/disabled
/// design.
///
/// Beyond the PR-1 event sink, a tracer can carry three always-on
/// attachments, each independent of whether the sink is enabled:
///
/// * a [`FlightRecorder`] ([`Tracer::with_flight`]) receiving compact
///   span/counter/fault events on a lock-free ring;
/// * a [`HistogramRegistry`] ([`Tracer::with_histograms`]) receiving
///   latency/size observations via [`Tracer::record_hist`];
/// * a trace id ([`Tracer::with_trace`]) stamped onto every flight event,
///   which is how one request's events are found again in the shared ring.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Sink>>,
    flight: Option<FlightRecorder>,
    hists: Option<HistogramRegistry>,
    trace_id: u64,
}

impl Tracer {
    /// A tracer that records events (shared by all clones).
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Sink {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    events: Vec::new(),
                    stacks: HashMap::new(),
                    next_span: 0,
                }),
            })),
            ..Tracer::default()
        }
    }

    /// The no-op tracer: every method returns immediately without locking,
    /// formatting or allocating.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether events are being recorded. Callers computing anything
    /// non-trivial purely for tracing should branch on this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether *any* observability is attached: the event sink, a flight
    /// recorder, or a histogram registry. Instrumented paths that would
    /// skip tracing entirely must branch on this, not [`Tracer::is_enabled`],
    /// or always-on telemetry silently disappears.
    pub fn is_observed(&self) -> bool {
        self.inner.is_some() || self.flight.is_some() || self.hists.is_some()
    }

    /// This tracer with `recorder` attached; all derived clones record
    /// flight events into it.
    pub fn with_flight(&self, recorder: FlightRecorder) -> Tracer {
        Tracer {
            flight: Some(recorder),
            ..self.clone()
        }
    }

    /// This tracer with `hists` attached; [`Tracer::record_hist`] calls on
    /// derived clones land in it.
    pub fn with_histograms(&self, hists: HistogramRegistry) -> Tracer {
        Tracer {
            hists: Some(hists),
            ..self.clone()
        }
    }

    /// This tracer stamped with `trace_id` (a cheap clone; the serving
    /// path makes one per request and threads it through the job).
    pub fn with_trace(&self, trace_id: u64) -> Tracer {
        Tracer {
            trace_id,
            ..self.clone()
        }
    }

    /// The trace id stamped on flight events; 0 when untraced.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The attached histogram registry, if any.
    pub fn histograms(&self) -> Option<&HistogramRegistry> {
        self.hists.as_ref()
    }

    /// Records `value` into the named histogram; a no-op without a
    /// registry attached.
    pub fn record_hist(&self, name: &str, value: u64) {
        if let Some(hists) = &self.hists {
            hists.record(name, value);
        }
    }

    /// Records one flight event; a no-op without a recorder attached.
    pub fn flight_event(&self, kind: FlightKind, name: &'static str, value: u64) {
        if let Some(flight) = &self.flight {
            flight.record(kind, name, self.trace_id, value);
        }
    }

    /// Opens a flight-recorder span: a `SpanOpen` event now, a `SpanClose`
    /// carrying the duration in µs when the guard drops (also on unwind).
    /// Independent of [`Tracer::span`] — flight spans survive in the ring
    /// after the sink's unbounded log would be unaffordable.
    pub fn flight_span(&self, name: &'static str) -> FlightSpanGuard {
        let Some(flight) = &self.flight else {
            return FlightSpanGuard {
                flight: None,
                name,
                trace: 0,
                opened_us: 0,
            };
        };
        flight.record(FlightKind::SpanOpen, name, self.trace_id, 0);
        FlightSpanGuard {
            flight: Some(flight.clone()),
            name,
            trace: self.trace_id,
            opened_us: flight.now_us(),
        }
    }

    /// Opens a nested span; it closes when the returned guard drops (also
    /// on unwind).
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(sink) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: None,
            };
        };
        let at_us = sink.now_us();
        let mut st = sink.lock();
        let id = st.next_span;
        st.next_span += 1;
        let parent = st.current_span();
        st.events.push(Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            at_us,
        });
        st.stacks
            .entry(std::thread::current().id())
            .or_default()
            .push(id);
        SpanGuard {
            tracer: self.clone(),
            id: Some(id),
        }
    }

    /// Adds `delta` to the named counter of the innermost open span.
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = sink.lock();
        let span = st.current_span();
        st.events.push(Event::Counter {
            span,
            name: name.to_string(),
            delta,
        });
    }

    /// Samples the named gauge on the innermost open span.
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(sink) = &self.inner else { return };
        let mut st = sink.lock();
        let span = st.current_span();
        st.events.push(Event::Gauge {
            span,
            name: name.to_string(),
            value,
        });
    }

    /// Attaches a key/value annotation to the innermost open span.
    pub fn note(&self, key: &str, value: &str) {
        let Some(sink) = &self.inner else { return };
        let mut st = sink.lock();
        let span = st.current_span();
        st.events.push(Event::Note {
            span,
            key: key.to_string(),
            value: value.to_string(),
        });
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(sink) => sink.lock().events.clone(),
        }
    }

    /// Builds the aggregated [`Report`] (span tree + metrics) from the
    /// events recorded so far.
    pub fn report(&self) -> Report {
        match &self.inner {
            None => Report::from_events(&[], 0),
            Some(sink) => {
                let now = sink.now_us();
                Report::from_events(&sink.lock().events, now)
            }
        }
    }
}

/// Closes its flight span on drop, recording the duration. Returned by
/// [`Tracer::flight_span`].
#[derive(Debug)]
pub struct FlightSpanGuard {
    flight: Option<FlightRecorder>,
    name: &'static str,
    trace: u64,
    opened_us: u64,
}

impl Drop for FlightSpanGuard {
    fn drop(&mut self) {
        if let Some(flight) = &self.flight {
            let dur_us = flight.now_us().saturating_sub(self.opened_us);
            flight.record(FlightKind::SpanClose, self.name, self.trace, dur_us);
        }
    }
}

/// Closes its span on drop. Returned by [`Tracer::span`].
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: Option<u64>,
}

impl SpanGuard {
    /// The span id, `None` for a disabled tracer.
    pub fn id(&self) -> Option<u64> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let Some(sink) = &self.tracer.inner else {
            return;
        };
        let at_us = sink.now_us();
        let mut st = sink.lock();
        // Guards are usually dropped LIFO on the thread that opened them,
        // but tolerate out-of-order and cross-thread drops: prefer the
        // dropping thread's stack, then search the others.
        let tid = std::thread::current().id();
        let mut removed = false;
        if let Some(stack) = st.stacks.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.remove(pos);
                removed = true;
            }
        }
        if !removed {
            for stack in st.stacks.values_mut() {
                if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                    stack.remove(pos);
                    break;
                }
            }
        }
        st.stacks.retain(|_, stack| !stack.is_empty());
        st.events.push(Event::SpanEnd { id, at_us });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let _span = t.span("x");
        t.counter("c", 1);
        t.gauge("g", 1.0);
        t.note("k", "v");
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_and_attribute_metrics() {
        let t = Tracer::enabled();
        {
            let _outer = t.span("outer");
            t.counter("top", 1);
            {
                let _inner = t.span("inner");
                t.counter("deep", 2);
            }
        }
        let events = t.events();
        let ids: Vec<(u64, Option<u64>)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { id, parent, .. } => Some((*id, *parent)),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![(0, None), (1, Some(0))]);
        assert!(events.iter().any(
            |e| matches!(e, Event::Counter { span: Some(0), name, delta: 1 } if name == "top")
        ));
        assert!(events.iter().any(
            |e| matches!(e, Event::Counter { span: Some(1), name, delta: 2 } if name == "deep")
        ));
        let ends = events
            .iter()
            .filter(|e| matches!(e, Event::SpanEnd { .. }))
            .count();
        assert_eq!(ends, 2);
    }

    #[test]
    fn span_closes_on_unwind() {
        let t = Tracer::enabled();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = t.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        let events = t.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanEnd { id: 0, .. })),
            "span did not close on unwind: {events:?}"
        );
        // The stack unwound too: a new span is a root again.
        let _after = t.span("after");
        assert!(t
            .events()
            .iter()
            .any(|e| matches!(e, Event::SpanStart { parent: None, name, .. } if name == "after")));
    }

    #[test]
    fn clones_share_the_sink_across_threads() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        let handle = std::thread::spawn(move || {
            t2.counter("thread", 5);
        });
        handle.join().unwrap();
        t.counter("main", 1);
        let events = t.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::Counter { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn worker_threads_get_independent_span_stacks() {
        let t = Tracer::enabled();
        let _main = t.span("main");
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _w = t2.span("worker");
            t2.counter("work", 1);
        })
        .join()
        .unwrap();
        t.counter("steps", 1);
        let events = t.events();
        // The worker span roots at its own thread, not under "main"...
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::SpanStart { parent: None, name, .. } if name == "worker")));
        // ...its counter attaches to it...
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Counter { span: Some(1), name, .. } if name == "work")));
        // ...and the main thread's stack is untouched by the worker.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Counter { span: Some(0), name, .. } if name == "steps")));
    }

    #[test]
    fn attachments_work_with_a_disabled_sink() {
        let flight = FlightRecorder::with_capacity(1, 32);
        let hists = HistogramRegistry::new();
        let t = Tracer::disabled()
            .with_flight(flight.clone())
            .with_histograms(hists.clone())
            .with_trace(0xabcd);
        assert!(!t.is_enabled());
        assert!(t.is_observed());
        {
            let _fs = t.flight_span("work");
            t.flight_event(FlightKind::Counter, "steps", 3);
            t.record_hist("latency_us", 120);
        }
        assert!(t.events().is_empty(), "the sink stays off");
        let events = flight.events_for_trace(0xabcd);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["work", "steps", "work"]);
        assert_eq!(events[0].kind, FlightKind::SpanOpen);
        assert_eq!(events[2].kind, FlightKind::SpanClose);
        assert_eq!(hists.snapshot()[0].1.count(), 1);
    }

    #[test]
    fn with_trace_isolates_requests_in_the_shared_ring() {
        let flight = FlightRecorder::with_capacity(1, 32);
        let base = Tracer::disabled().with_flight(flight.clone());
        assert_eq!(base.trace_id(), 0);
        let a = base.with_trace(1);
        let b = base.with_trace(2);
        a.flight_event(FlightKind::Counter, "a", 0);
        b.flight_event(FlightKind::Counter, "b", 0);
        assert_eq!(flight.events_for_trace(1).len(), 1);
        assert_eq!(flight.events_for_trace(2).len(), 1);
        assert_eq!(flight.events_for_trace(1)[0].name, "a");
    }

    #[test]
    fn flight_span_closes_on_unwind() {
        let flight = FlightRecorder::with_capacity(1, 8);
        let t = Tracer::disabled().with_flight(flight.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _fs = t.flight_span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        let kinds: Vec<FlightKind> = flight.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, [FlightKind::SpanOpen, FlightKind::SpanClose]);
    }

    #[test]
    fn out_of_order_guard_drop_is_tolerated() {
        let t = Tracer::enabled();
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // drop outer first
        t.counter("after", 1);
        drop(b);
        // "after" attaches to b, the only still-open span.
        assert!(t
            .events()
            .iter()
            .any(|e| matches!(e, Event::Counter { span: Some(1), .. })));
    }
}
