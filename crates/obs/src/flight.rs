//! The always-on flight recorder: sharded, fixed-capacity ring buffers of
//! compact events, lock-free on the record path.
//!
//! The PR-1 [`crate::Tracer`] sink is a mutex around an unbounded `Vec` —
//! right for a single CLI run, wrong for a daemon that must record every
//! request forever. The recorder trades detail for a hard bound: each
//! shard is a ring of fixed slots, a writer claims a slot with one
//! `fetch_add` on the shard head and publishes it seqlock-style (stamp set
//! to a sentinel, fields stored, stamp set to `seq + 1` with `Release`),
//! so recording never locks, never allocates, and old events are simply
//! overwritten. A drain ([`FlightRecorder::snapshot`]) reads the stamp
//! before and after the fields (with the matching fences) and skips any
//! slot a concurrent writer tore. One benign race remains: if a writer is
//! lapped by an entire ring's worth of events mid-publish, a slot can pair
//! fields from two events — events are diagnostics, not transactions, and
//! a sanely sized ring makes the window astronomically small.
//!
//! Threads are spread across shards by a lazily assigned per-thread index,
//! so writers on different cores rarely contend even on the `fetch_add`.
//! Event names must be `&'static str`: they are interned to small ids by
//! pointer in a lock-free probe table (a mutex is taken only the first
//! time a given name is ever seen), and resolved back to strings at drain
//! time. Every event carries the recording tracer's trace id, which is
//! what lets `GET /debug/flight?trace=…` reconstruct one request's span
//! chain out of the shared ring.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Slot stamp sentinel meaning "a writer is mid-publish".
const WRITING: u64 = u64::MAX;

/// Name-table capacity. Instrumentation sites use a fixed vocabulary of
/// `&'static` names, so a small table suffices; overflow degrades to the
/// reserved `"?"` name rather than failing.
const NAME_SLOTS: usize = 512;

/// What happened. The recorder's whole vocabulary — kept deliberately
/// small so a slot packs into five `u64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened (`value` unused).
    SpanOpen,
    /// A span closed (`value` = duration in µs).
    SpanClose,
    /// A counter-style observation (`value` = the amount).
    Counter,
    /// An armed fault site fired (`value` = how many times so far).
    Fault,
}

impl FlightKind {
    fn from_u64(v: u64) -> FlightKind {
        match v & 0x3 {
            0 => FlightKind::SpanOpen,
            1 => FlightKind::SpanClose,
            2 => FlightKind::Counter,
            _ => FlightKind::Fault,
        }
    }

    /// The kebab-case label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::SpanOpen => "span-open",
            FlightKind::SpanClose => "span-close",
            FlightKind::Counter => "counter",
            FlightKind::Fault => "fault",
        }
    }
}

/// One drained event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Per-shard sequence number (monotone within a shard; gaps mean the
    /// ring wrapped past older events).
    pub seq: u64,
    /// Which shard recorded it.
    pub shard: u32,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Trace id of the request that recorded it; 0 when untraced.
    pub trace: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Interned event name (`"?"` if the name table overflowed).
    pub name: &'static str,
    /// Kind-dependent payload (see [`FlightKind`]).
    pub value: u64,
}

impl FlightEvent {
    /// The event as a JSON object (trace rendered as 16-digit hex, the
    /// same form the `X-Modsyn-Trace` header uses).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("shard", Json::from(self.shard as u64)),
            ("at_us", Json::from(self.at_us)),
            ("trace", Json::from(format!("{:016x}", self.trace))),
            ("kind", Json::from(self.kind.label())),
            ("name", Json::from(self.name)),
            ("value", Json::from(self.value)),
        ])
    }
}

/// One ring slot: a seqlock of plain atomics. `stamp` is 0 (never
/// written), [`WRITING`], or `seq + 1` once published.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    at_us: AtomicU64,
    trace: AtomicU64,
    value: AtomicU64,
    /// Packed `(name_id << 2) | kind`.
    meta: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            at_us: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            value: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct Shard {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// Lock-free `&'static str` → id interner, keyed by the string's data
/// pointer (distinct literals with equal text simply get distinct ids).
#[derive(Debug)]
struct NameTable {
    /// Open-addressed probe table: `keys[i]` holds the string's data
    /// pointer (0 = empty), `ids[i]` its id + 1. `ids` is published
    /// before `keys`, so a reader that sees the key sees the id.
    keys: Box<[AtomicUsize]>,
    ids: Box<[AtomicUsize]>,
    /// id → name, appended under the mutex on first registration only.
    names: Mutex<Vec<&'static str>>,
}

impl NameTable {
    fn new() -> NameTable {
        NameTable {
            keys: (0..NAME_SLOTS).map(|_| AtomicUsize::new(0)).collect(),
            ids: (0..NAME_SLOTS).map(|_| AtomicUsize::new(0)).collect(),
            // id 0 is the reserved overflow name.
            names: Mutex::new(vec!["?"]),
        }
    }

    fn lock_names(&self) -> std::sync::MutexGuard<'_, Vec<&'static str>> {
        self.names
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The id for `name`; lock-free after the first call with this
    /// particular `&'static str`.
    fn intern(&self, name: &'static str) -> u64 {
        let ptr = name.as_ptr() as usize;
        let mask = NAME_SLOTS - 1;
        let mut i =
            ptr.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (usize::BITS - NAME_SLOTS.trailing_zeros());
        for _ in 0..NAME_SLOTS {
            i &= mask;
            let key = self.keys[i].load(Ordering::Acquire);
            if key == ptr {
                return (self.ids[i].load(Ordering::Acquire) - 1) as u64;
            }
            if key == 0 {
                // Cold path: register under the mutex, re-checking the
                // slot (a racing writer may have claimed it meanwhile).
                let mut names = self.lock_names();
                if self.keys[i].load(Ordering::Acquire) == 0 {
                    if names.len() >= NAME_SLOTS {
                        return 0; // table full: degrade to "?"
                    }
                    let id = names.len();
                    names.push(name);
                    self.ids[i].store(id + 1, Ordering::Release);
                    self.keys[i].store(ptr, Ordering::Release);
                    return id as u64;
                }
                continue; // slot was claimed: re-examine it
            }
            i += 1;
        }
        0
    }

    fn resolve(&self, id: u64) -> &'static str {
        self.lock_names().get(id as usize).copied().unwrap_or("?")
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    shards: Box<[Shard]>,
    names: NameTable,
}

/// A cheap clonable handle to the shared ring buffers. See the module
/// docs for the memory model.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

/// Default shard count (power of two; threads hash onto shards).
pub const DEFAULT_SHARDS: usize = 8;
/// Default slots per shard.
pub const DEFAULT_SLOTS: usize = 4096;

thread_local! {
    /// This thread's shard assignment, drawn once from a global
    /// round-robin counter so writer threads spread evenly.
    static SHARD_SEAT: Cell<u64> = const { Cell::new(u64::MAX) };
}

static NEXT_SEAT: AtomicU64 = AtomicU64::new(0);

fn thread_seat() -> u64 {
    SHARD_SEAT.with(|seat| {
        let mut s = seat.get();
        if s == u64::MAX {
            s = NEXT_SEAT.fetch_add(1, Ordering::Relaxed);
            seat.set(s);
        }
        s
    })
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_SHARDS, DEFAULT_SLOTS)
    }
}

impl FlightRecorder {
    /// A recorder with the default geometry (8 shards × 4096 slots).
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder with `shards` rings of `slots` slots each. Both are
    /// clamped to at least 1; `shards` is rounded up to a power of two.
    pub fn with_capacity(shards: usize, slots: usize) -> FlightRecorder {
        let shards = shards.max(1).next_power_of_two();
        let slots = slots.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                shards: (0..shards)
                    .map(|_| Shard {
                        head: AtomicU64::new(0),
                        slots: (0..slots).map(|_| Slot::empty()).collect(),
                    })
                    .collect(),
                names: NameTable::new(),
            }),
        }
    }

    /// Microseconds since the recorder was created (the `at_us` clock).
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Total event capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.slots.len())
            .sum::<usize>()
    }

    /// Total events ever recorded (including ones already overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Records one event. Lock-free: one `fetch_add` to claim the slot
    /// plus plain atomic stores to fill it. Never allocates.
    pub fn record(&self, kind: FlightKind, name: &'static str, trace: u64, value: u64) {
        let name_id = self.inner.names.intern(name);
        let at_us = self.now_us();
        let shards = &self.inner.shards;
        let shard = &shards[(thread_seat() as usize) & (shards.len() - 1)];
        let seq = shard.head.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[(seq % shard.slots.len() as u64) as usize];
        // Seqlock publish: sentinel, release fence (sentinel becomes
        // visible before any field), fields, then the real stamp with
        // Release so a reader that sees it sees every field.
        slot.stamp.store(WRITING, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.at_us.store(at_us, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.meta
            .store((name_id << 2) | kind as u64, Ordering::Relaxed);
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// Drains every published slot into a list sorted by time (ties broken
    /// by shard and sequence). Slots a concurrent writer is mid-publish on
    /// are skipped, never torn. May be called at any moment, including
    /// while writers are recording.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for (shard_ix, shard) in self.inner.shards.iter().enumerate() {
            for slot in shard.slots.iter() {
                let before = slot.stamp.load(Ordering::Acquire);
                if before == 0 || before == WRITING {
                    continue;
                }
                let at_us = slot.at_us.load(Ordering::Relaxed);
                let trace = slot.trace.load(Ordering::Relaxed);
                let value = slot.value.load(Ordering::Relaxed);
                let meta = slot.meta.load(Ordering::Relaxed);
                // Acquire fence: the field loads above cannot drift past
                // the stamp re-check below.
                std::sync::atomic::fence(Ordering::Acquire);
                let after = slot.stamp.load(Ordering::Relaxed);
                if before != after {
                    continue; // a writer reused the slot mid-read
                }
                out.push(FlightEvent {
                    seq: before - 1,
                    shard: shard_ix as u32,
                    at_us,
                    trace,
                    kind: FlightKind::from_u64(meta),
                    name: self.inner.names.resolve(meta >> 2),
                    value,
                });
            }
        }
        out.sort_by_key(|e| (e.at_us, e.shard, e.seq));
        out
    }

    /// [`FlightRecorder::snapshot`] filtered to one trace id.
    pub fn events_for_trace(&self, trace: u64) -> Vec<FlightEvent> {
        let mut out = self.snapshot();
        out.retain(|e| e.trace == trace);
        out
    }

    /// Renders events as the `/debug/flight` JSON document.
    pub fn to_json(events: &[FlightEvent]) -> Json {
        Json::obj([
            ("count", Json::from(events.len())),
            (
                "events",
                Json::Arr(events.iter().map(FlightEvent::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_order() {
        let rec = FlightRecorder::with_capacity(1, 16);
        rec.record(FlightKind::SpanOpen, "a", 7, 0);
        rec.record(FlightKind::Counter, "b", 7, 42);
        rec.record(FlightKind::SpanClose, "a", 7, 3);
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.name).collect::<Vec<_>>(),
            ["a", "b", "a"]
        );
        assert_eq!(events[1].kind, FlightKind::Counter);
        assert_eq!(events[1].value, 42);
        assert!(events.iter().all(|e| e.trace == 7));
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let rec = FlightRecorder::with_capacity(1, 8);
        for i in 0..50u64 {
            rec.record(FlightKind::Counter, "tick", 0, i);
        }
        assert_eq!(rec.recorded(), 50);
        let events = rec.snapshot();
        assert_eq!(events.len(), 8, "bounded by capacity");
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, (42..50).collect::<Vec<_>>(), "newest survive");
    }

    #[test]
    fn trace_filter_selects_one_request() {
        let rec = FlightRecorder::with_capacity(2, 32);
        for i in 0..10u64 {
            rec.record(FlightKind::Counter, "x", i % 3, i);
        }
        let ours = rec.events_for_trace(1);
        assert!(!ours.is_empty());
        assert!(ours.iter().all(|e| e.trace == 1));
        assert!(rec.events_for_trace(99).is_empty());
    }

    #[test]
    fn concurrent_writers_and_drains_stay_well_formed() {
        let rec = FlightRecorder::with_capacity(4, 64);
        let writers: Vec<_> = (0..8)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        rec.record(FlightKind::Counter, "spin", t, i);
                    }
                })
            })
            .collect();
        // Drain repeatedly while writers hammer the rings.
        for _ in 0..50 {
            for e in rec.snapshot() {
                assert_eq!(e.name, "spin");
                assert_eq!(e.kind, FlightKind::Counter);
                assert!(e.trace < 8 && e.value < 500, "torn slot leaked: {e:?}");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.recorded(), 8 * 500);
        assert!(rec.snapshot().len() <= rec.capacity());
    }

    #[test]
    fn name_table_overflow_degrades_to_question_mark() {
        let rec = FlightRecorder::with_capacity(1, 4);
        // Leak distinct strings to exhaust the table; instrumentation
        // never does this (fixed vocabulary), but overflow must be safe.
        for i in 0..(NAME_SLOTS + 10) {
            let name: &'static str = Box::leak(format!("n{i}").into_boxed_str());
            rec.record(FlightKind::Counter, name, 0, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.name == "?"));
    }

    #[test]
    fn json_dump_round_trips() {
        let rec = FlightRecorder::with_capacity(1, 8);
        rec.record(FlightKind::SpanOpen, "svc.request", 0xdead_beef, 0);
        let json = FlightRecorder::to_json(&rec.snapshot());
        let text = json.pretty();
        let parsed = crate::parse_json(&text).unwrap();
        let events = parsed.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("trace").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            events[0].get("kind").and_then(Json::as_str),
            Some("span-open")
        );
    }
}
