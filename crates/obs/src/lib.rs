//! Zero-dependency observability for the modsyn pipeline.
//!
//! Per the workspace §5 dependency policy this crate uses the standard
//! library only — no `tracing`, no `serde`. It provides:
//!
//! * [`Tracer`] — a clonable handle recording nested spans with monotonic
//!   timings, named counters, gauges and notes into a thread-safe sink.
//!   [`Tracer::disabled`] is a true no-op: every recording method branches
//!   on an `Option` and returns before any formatting or allocation, so
//!   instrumented code paths cost one branch when observability is off.
//! * [`Report`] — the aggregated span tree with a human-readable summary
//!   renderer ([`Report::render`]) and a machine-readable dump
//!   ([`Report::to_json`]).
//! * [`Json`] — a small hand-rolled JSON value with correct string
//!   escaping, a writer (compact and pretty) and a parser for round-trip
//!   tests and downstream tooling.
//! * [`FlightRecorder`] — the always-on flight recorder: sharded
//!   fixed-capacity rings of compact trace-tagged events, lock-free on the
//!   record path, drainable at any moment (`/debug/flight` in `modsynd`).
//! * [`Histogram`] / [`HistogramRegistry`] — log-scale fixed-bucket
//!   latency histograms with mergeable snapshots and percentile queries
//!   (the `p50/p90/p99/max` lines on `GET /metrics`).
//!
//! A [`Tracer`] ties the three planes together: the PR-1 event sink is
//! opt-in, while a flight recorder, histogram registry and per-request
//! trace id ([`Tracer::with_flight`], [`Tracer::with_histograms`],
//! [`Tracer::with_trace`]) ride on any tracer — including a disabled one —
//! at a cost low enough to leave on in production.
//!
//! # Example
//!
//! ```
//! use modsyn_obs::Tracer;
//!
//! let tracer = Tracer::enabled();
//! {
//!     let _solve = tracer.span("sat.solve");
//!     tracer.gauge("vars", 120.0);
//!     tracer.counter("conflicts", 17);
//! }
//! let report = tracer.report();
//! assert_eq!(report.roots[0].name, "sat.solve");
//! assert_eq!(report.roots[0].counter("conflicts"), Some(17));
//! println!("{}", report.render());
//! let json = report.to_json().pretty();
//! assert!(modsyn_obs::parse_json(&json).is_ok());
//! ```

mod flight;
mod hist;
mod json;
mod report;
mod tracer;

pub use flight::{FlightEvent, FlightKind, FlightRecorder, DEFAULT_SHARDS, DEFAULT_SLOTS};
pub use hist::{
    bucket_floor, bucket_index, Histogram, HistogramRegistry, HistogramSnapshot, BUCKETS,
    SUB_BUCKETS,
};
pub use json::{escape_into, parse_json, Json, JsonError};
pub use report::{Report, SpanNode};
pub use tracer::{Event, FlightSpanGuard, SpanGuard, Tracer};
