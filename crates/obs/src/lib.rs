//! Zero-dependency observability for the modsyn pipeline.
//!
//! Per the workspace §5 dependency policy this crate uses the standard
//! library only — no `tracing`, no `serde`. It provides:
//!
//! * [`Tracer`] — a clonable handle recording nested spans with monotonic
//!   timings, named counters, gauges and notes into a thread-safe sink.
//!   [`Tracer::disabled`] is a true no-op: every recording method branches
//!   on an `Option` and returns before any formatting or allocation, so
//!   instrumented code paths cost one branch when observability is off.
//! * [`Report`] — the aggregated span tree with a human-readable summary
//!   renderer ([`Report::render`]) and a machine-readable dump
//!   ([`Report::to_json`]).
//! * [`Json`] — a small hand-rolled JSON value with correct string
//!   escaping, a writer (compact and pretty) and a parser for round-trip
//!   tests and downstream tooling.
//!
//! # Example
//!
//! ```
//! use modsyn_obs::Tracer;
//!
//! let tracer = Tracer::enabled();
//! {
//!     let _solve = tracer.span("sat.solve");
//!     tracer.gauge("vars", 120.0);
//!     tracer.counter("conflicts", 17);
//! }
//! let report = tracer.report();
//! assert_eq!(report.roots[0].name, "sat.solve");
//! assert_eq!(report.roots[0].counter("conflicts"), Some(17));
//! println!("{}", report.render());
//! let json = report.to_json().pretty();
//! assert!(modsyn_obs::parse_json(&json).is_ok());
//! ```

mod json;
mod report;
mod tracer;

pub use json::{escape_into, parse_json, Json, JsonError};
pub use report::{Report, SpanNode};
pub use tracer::{Event, SpanGuard, Tracer};
