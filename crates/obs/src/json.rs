//! A hand-rolled JSON value with writer and parser.
//!
//! The §5 dependency policy rules out `serde`; the trace files and
//! `BENCH_*.json` records only need a small value tree with correct string
//! escaping, so we carry our own. The parser exists mainly so tests (and
//! downstream tooling) can round-trip what the writer produces.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, emitted without a fractional part.
    Int(i64),
    /// An unsigned integer, emitted without a fractional part.
    UInt(u64),
    /// A double. Non-finite values are emitted as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value pairs if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Writes the compact form into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The indented (2 spaces per level) form, ending with a newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Appends `s` as a quoted, escaped JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "bad number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\r\u{08}\u{0c}\u{01}\u{1f}ü");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\r\\b\\f\\u0001\\u001fü\"");
    }

    #[test]
    fn writer_parser_round_trip() {
        let value = Json::obj([
            (
                "name",
                Json::from("mmu0 \"quoted\" \\ slash\nnewline\u{07}bell"),
            ),
            ("count", Json::from(42u64)),
            ("neg", Json::Int(-7)),
            ("ratio", Json::from(0.125)),
            ("ok", Json::from(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1u64), Json::from("two"), Json::Arr(vec![])]),
            ),
            ("empty", Json::obj::<String>([])),
        ]);
        let compact = value.to_string();
        assert_eq!(parse_json(&compact).unwrap(), value);
        let pretty = value.pretty();
        assert_eq!(parse_json(&pretty).unwrap(), value);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse_json("\"\\u00fc\"").unwrap(), Json::Str("ü".into()));
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        assert!(parse_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"\\x\"", "1 2"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse_json("{\"a\": [1, \"x\"], \"b\": 2.5}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("x"));
        assert!(v.get("c").is_none());
    }
}
