//! Aggregating raw events into a span tree, the human-readable summary
//! renderer, and the machine-readable JSON dump.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::tracer::Event;

/// One span with its aggregated metrics and children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id from the tracer.
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Start time, µs since tracer creation.
    pub start_us: u64,
    /// End time, `None` if still open at capture.
    pub end_us: Option<u64>,
    /// Nested spans in chronological order.
    pub children: Vec<SpanNode>,
    /// Counters summed over the span (insertion order).
    pub counters: Vec<(String, u64)>,
    /// Gauges, last write wins (insertion order).
    pub gauges: Vec<(String, f64)>,
    /// Annotations in recording order.
    pub notes: Vec<(String, String)>,
}

impl SpanNode {
    /// Span duration in µs; open spans run until `capture_us`.
    pub fn duration_us(&self, capture_us: u64) -> u64 {
        self.end_us
            .unwrap_or(capture_us)
            .saturating_sub(self.start_us)
    }

    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a note, if recorded.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first spans of this subtree (self included) satisfying `pred`.
    pub fn spans_where<'a>(&'a self, pred: &dyn Fn(&SpanNode) -> bool) -> Vec<&'a SpanNode> {
        let mut out = Vec::new();
        if pred(self) {
            out.push(self);
        }
        for c in &self.children {
            out.extend(c.spans_where(pred));
        }
        out
    }
}

/// The aggregated run report: the span forest plus top-level metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Top-level spans in chronological order.
    pub roots: Vec<SpanNode>,
    /// Counters recorded outside any span.
    pub counters: Vec<(String, u64)>,
    /// Gauges recorded outside any span.
    pub gauges: Vec<(String, f64)>,
    /// Notes recorded outside any span.
    pub notes: Vec<(String, String)>,
    /// Capture time, µs since tracer creation.
    pub capture_us: u64,
}

fn add_counter(counters: &mut Vec<(String, u64)>, name: &str, delta: u64) {
    match counters.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v += delta,
        None => counters.push((name.to_string(), delta)),
    }
}

fn set_gauge(gauges: &mut Vec<(String, f64)>, name: &str, value: f64) {
    match gauges.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value,
        None => gauges.push((name.to_string(), value)),
    }
}

impl Report {
    /// Builds the report from a raw event log. `capture_us` bounds the
    /// duration of spans still open.
    pub fn from_events(events: &[Event], capture_us: u64) -> Report {
        let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
        let mut parent_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        let mut report = Report {
            capture_us,
            ..Report::default()
        };

        for event in events {
            match event {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    at_us,
                } => {
                    parent_of.insert(*id, *parent);
                    nodes.insert(
                        *id,
                        SpanNode {
                            id: *id,
                            name: name.clone(),
                            start_us: *at_us,
                            end_us: None,
                            children: Vec::new(),
                            counters: Vec::new(),
                            gauges: Vec::new(),
                            notes: Vec::new(),
                        },
                    );
                }
                Event::SpanEnd { id, at_us } => {
                    if let Some(node) = nodes.get_mut(id) {
                        node.end_us = Some(*at_us);
                    }
                }
                Event::Counter { span, name, delta } => {
                    match span.and_then(|s| nodes.get_mut(&s)) {
                        Some(node) => add_counter(&mut node.counters, name, *delta),
                        None => add_counter(&mut report.counters, name, *delta),
                    }
                }
                Event::Gauge { span, name, value } => match span.and_then(|s| nodes.get_mut(&s)) {
                    Some(node) => set_gauge(&mut node.gauges, name, *value),
                    None => set_gauge(&mut report.gauges, name, *value),
                },
                Event::Note { span, key, value } => match span.and_then(|s| nodes.get_mut(&s)) {
                    Some(node) => node.notes.push((key.clone(), value.clone())),
                    None => report.notes.push((key.clone(), value.clone())),
                },
            }
        }

        // Ids increase with creation time, so every parent has a smaller id
        // than its children; folding children in reverse id order keeps
        // each child's subtree complete when it moves into its parent.
        let ids: Vec<u64> = nodes.keys().rev().copied().collect();
        for id in ids {
            let Some(Some(parent)) = parent_of.get(&id) else {
                continue;
            };
            let node = nodes.remove(&id).expect("node exists");
            if let Some(p) = nodes.get_mut(parent) {
                p.children.insert(0, node);
            }
        }
        report.roots = nodes.into_values().collect();
        report
    }

    /// Depth-first spans whose name satisfies `pred`.
    pub fn spans_where<'a>(&'a self, pred: &dyn Fn(&SpanNode) -> bool) -> Vec<&'a SpanNode> {
        fn walk<'a>(
            node: &'a SpanNode,
            pred: &dyn Fn(&SpanNode) -> bool,
            out: &mut Vec<&'a SpanNode>,
        ) {
            if pred(node) {
                out.push(node);
            }
            for c in &node.children {
                walk(c, pred, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, pred, &mut out);
        }
        out
    }

    /// Depth-first spans whose name starts with `prefix`.
    pub fn spans_with_prefix<'a>(&'a self, prefix: &str) -> Vec<&'a SpanNode> {
        self.spans_where(&|n| n.name.starts_with(prefix))
    }

    /// Sum of the named counter over the top level and every span — the
    /// natural aggregate when concurrent workers each recorded into their
    /// own span.
    pub fn total_counter(&self, name: &str) -> u64 {
        let top = self
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v);
        top + self
            .spans_where(&|_| true)
            .iter()
            .map(|s| s.counter(name).unwrap_or(0))
            .sum::<u64>()
    }

    /// Renders the human-readable summary tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            self.render_node(root, "", true, true, &mut out);
        }
        let mut top = String::new();
        push_metrics(&mut top, &self.counters, &self.gauges, &self.notes);
        if !top.is_empty() {
            out.push_str("top-level:");
            out.push_str(&top);
            out.push('\n');
        }
        out
    }

    fn render_node(&self, node: &SpanNode, prefix: &str, last: bool, root: bool, out: &mut String) {
        let (branch, child_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let label = format!("{branch}{}", node.name);
        let duration = format_us(node.duration_us(self.capture_us));
        let pad = 48usize.saturating_sub(label.chars().count()).max(1);
        out.push_str(&label);
        out.push(' ');
        for _ in 0..pad {
            out.push('·');
        }
        out.push(' ');
        out.push_str(&duration);
        if node.end_us.is_none() {
            out.push_str(" (open)");
        }
        push_metrics(out, &node.counters, &node.gauges, &node.notes);
        out.push('\n');
        for (i, c) in node.children.iter().enumerate() {
            self.render_node(c, &child_prefix, i + 1 == node.children.len(), false, out);
        }
    }

    /// The full machine-readable dump: span tree with timings and metrics.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(1u64)),
            ("capture_us", Json::from(self.capture_us)),
            (
                "spans",
                Json::Arr(self.roots.iter().map(|r| self.span_json(r)).collect()),
            ),
            ("counters", metrics_json(&self.counters, |&v| Json::from(v))),
            ("gauges", metrics_json(&self.gauges, |&v| Json::from(v))),
            ("notes", notes_json(&self.notes)),
        ])
    }

    fn span_json(&self, node: &SpanNode) -> Json {
        Json::obj([
            ("name", Json::from(node.name.as_str())),
            ("id", Json::from(node.id)),
            ("start_us", Json::from(node.start_us)),
            ("end_us", node.end_us.map_or(Json::Null, Json::from)),
            ("duration_us", Json::from(node.duration_us(self.capture_us))),
            ("counters", metrics_json(&node.counters, |&v| Json::from(v))),
            ("gauges", metrics_json(&node.gauges, |&v| Json::from(v))),
            ("notes", notes_json(&node.notes)),
            (
                "children",
                Json::Arr(node.children.iter().map(|c| self.span_json(c)).collect()),
            ),
        ])
    }
}

fn metrics_json<T>(metrics: &[(String, T)], value: impl Fn(&T) -> Json) -> Json {
    Json::Obj(metrics.iter().map(|(k, v)| (k.clone(), value(v))).collect())
}

fn notes_json(notes: &[(String, String)]) -> Json {
    // Notes may repeat a key, so they dump as [key, value] pairs.
    Json::Arr(
        notes
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::from(k.as_str()), Json::from(v.as_str())]))
            .collect(),
    )
}

fn push_metrics(
    out: &mut String,
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    notes: &[(String, String)],
) {
    for (k, v) in counters {
        out.push_str(&format!(" {k}={v}"));
    }
    for (k, v) in gauges {
        out.push_str(&format!(" {k}={v}"));
    }
    for (k, v) in notes {
        out.push_str(&format!(" {k}={v}"));
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use crate::json::parse_json;
    use crate::tracer::Tracer;

    fn sample() -> Tracer {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            {
                let _a = t.span("phase-a");
                t.counter("items", 3);
                t.counter("items", 2);
                t.gauge("size", 10.0);
                t.gauge("size", 12.5);
            }
            {
                let _b = t.span("phase-b");
                t.note("outcome", "ok");
            }
        }
        t.counter("loose", 1);
        t
    }

    #[test]
    fn tree_structure_and_aggregation() {
        let report = sample().report();
        assert_eq!(report.roots.len(), 1);
        let run = &report.roots[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.children.len(), 2);
        let a = &run.children[0];
        assert_eq!(a.counter("items"), Some(5), "counters sum");
        assert_eq!(a.gauge("size"), Some(12.5), "last gauge wins");
        assert_eq!(run.children[1].note("outcome"), Some("ok"));
        assert_eq!(report.counters, vec![("loose".to_string(), 1)]);
        assert!(run.end_us.is_some());
    }

    #[test]
    fn render_shows_every_span_and_metric() {
        let text = sample().report().render();
        for needle in [
            "run",
            "phase-a",
            "phase-b",
            "items=5",
            "size=12.5",
            "outcome=ok",
            "loose=1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn json_dump_round_trips_and_has_spans() {
        let json = sample().report().to_json();
        let parsed = parse_json(&json.pretty()).unwrap();
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        let children = spans[0].get("children").unwrap().as_arr().unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(
            children[0]
                .get("counters")
                .unwrap()
                .get("items")
                .unwrap()
                .as_f64(),
            Some(5.0)
        );
    }

    #[test]
    fn spans_with_prefix_walks_depth_first() {
        let report = sample().report();
        assert_eq!(report.spans_with_prefix("phase-").len(), 2);
        assert_eq!(report.spans_with_prefix("run").len(), 1);
        assert!(report.spans_with_prefix("nope").is_empty());
    }

    #[test]
    fn open_spans_render_with_capture_bound() {
        let t = Tracer::enabled();
        let _open = t.span("still-open");
        let report = t.report();
        assert_eq!(report.roots.len(), 1);
        assert!(report.roots[0].end_us.is_none());
        assert!(report.render().contains("(open)"));
    }
}
