//! `modsat` — solve a DIMACS CNF file.
//!
//! ```text
//! modsat <file.cnf | -> [--engine dpll|cdcl|cnc] [--cube-depth N]
//!        [--cube-cutoff N] [--jobs N] [--chrono]
//!        [--heuristic first|jw|moms|activity] [--max-backtracks N]
//!        [--timeout-ms T] [--portfolio] [--stats]
//! ```
//!
//! Prints `s SATISFIABLE` + a `v` model line, `s UNSATISFIABLE`, or
//! `s UNKNOWN` (limit reached or timed out), following the
//! SAT-competition output conventions. Exit codes follow suit: 10 for
//! SAT, 20 for UNSAT, 0 for UNKNOWN, 1 for usage or input errors.
//!
//! `--engine` selects the SAT core: `cdcl` (default) is the modern
//! conflict-driven core, `dpll` the classic chronological engine
//! (`--chrono`/`--heuristic` apply only there), and `cnc` lookahead
//! cube-and-conquer over the CDCL core (`--cube-depth`, `--cube-cutoff`
//! shape the cubes; `--jobs` sizes the conquer pool, 0 = all cores).
//! `--portfolio` races the selected engine against the classic
//! configuration portfolio; `--timeout-ms` aborts cooperatively after
//! `T` milliseconds. With `--engine cnc`, `--max-backtracks` is a
//! *per-cube* conflict budget (cubes partition the search space).

use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

use modsyn_cnc::{solve_engine_portfolio_traced, solve_with_engine, Engine};
use modsyn_fault::Faults;
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;
use modsyn_sat::{
    parse_dimacs, solve_portfolio, standard_portfolio, Heuristic, Lit, Outcome, SolverOptions, Var,
};

const USAGE: &str = "usage: modsat <file.cnf | -> [--engine dpll|cdcl|cnc] [--cube-depth N] \
                     [--cube-cutoff N] [--jobs N] [--chrono] \
                     [--heuristic first|jw|moms|activity] [--max-backtracks N] [--timeout-ms T] \
                     [--portfolio] [--stats]";

fn main() -> ExitCode {
    let mut source = String::new();
    let mut options = SolverOptions::default();
    let mut engine = Engine::default();
    let mut cube_depth: Option<u32> = None;
    let mut cube_cutoff: Option<u32> = None;
    let mut jobs: Option<u32> = None;
    let mut show_stats = false;
    let mut portfolio = false;
    let mut timeout_ms: Option<u64> = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                let Some(v) = it.next() else {
                    eprintln!("--engine needs a value (dpll, cdcl or cnc)");
                    return ExitCode::FAILURE;
                };
                engine = match Engine::parse(&v) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--cube-depth" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--cube-depth needs a number");
                    return ExitCode::FAILURE;
                };
                cube_depth = Some(v);
            }
            "--cube-cutoff" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--cube-cutoff needs a number");
                    return ExitCode::FAILURE;
                };
                cube_cutoff = Some(v);
            }
            "--jobs" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs needs a number");
                    return ExitCode::FAILURE;
                };
                jobs = Some(v);
            }
            "--chrono" => options.learning = false,
            "--heuristic" => {
                let Some(v) = it.next() else {
                    eprintln!("--heuristic needs a value");
                    return ExitCode::FAILURE;
                };
                options.heuristic = match v.as_str() {
                    "first" => Heuristic::FirstUnassigned,
                    "jw" => Heuristic::JeroslowWang,
                    "moms" => Heuristic::Moms,
                    "activity" => Heuristic::Activity,
                    other => {
                        eprintln!("unknown heuristic {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--max-backtracks" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-backtracks needs a number");
                    return ExitCode::FAILURE;
                };
                options.max_backtracks = Some(v);
            }
            "--timeout-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--timeout-ms needs a number");
                    return ExitCode::FAILURE;
                };
                timeout_ms = Some(v);
            }
            "--portfolio" => portfolio = true,
            "--stats" => show_stats = true,
            other if source.is_empty() => source = other.to_string(),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if source.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Engine::Cnc {
        depth,
        cutoff,
        jobs: j,
    } = &mut engine
    {
        if let Some(d) = cube_depth {
            *depth = d;
        }
        if let Some(c) = cube_cutoff {
            *cutoff = c;
        }
        if let Some(n) = jobs {
            *j = n;
        }
    } else if cube_depth.is_some() || cube_cutoff.is_some() {
        eprintln!("--cube-depth/--cube-cutoff require --engine cnc");
        return ExitCode::FAILURE;
    }

    let text = if source == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error reading stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let formula = match parse_dimacs(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cancel = match timeout_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::never(),
    };
    let outcome = if portfolio && engine == Engine::Dpll {
        let result = solve_portfolio(&formula, &standard_portfolio(options), &cancel);
        if show_stats {
            for (i, run) in result.runs.iter().enumerate() {
                let mark = if result.winner == Some(i) { " *" } else { "" };
                eprintln!("c [{i}{mark}] {:?}: {}", run.options.heuristic, run.stats);
            }
        }
        result.outcome
    } else if portfolio {
        let (outcome, stats) =
            solve_engine_portfolio_traced(&formula, options, &cancel, &Tracer::disabled());
        if show_stats {
            eprintln!("c [portfolio winner] {stats}");
        }
        outcome
    } else {
        let (outcome, stats) =
            solve_with_engine(engine, &formula, options, &cancel, &Faults::none());
        if show_stats {
            eprintln!("c [{engine}] {stats}");
        }
        outcome
    };
    match outcome {
        Outcome::Satisfiable(model) => {
            println!("s SATISFIABLE");
            let line: Vec<String> = (0..formula.num_vars())
                .map(|i| {
                    let v = Var::new(i);
                    Lit::with_polarity(v, model.value(v))
                        .to_dimacs()
                        .to_string()
                })
                .collect();
            println!("v {} 0", line.join(" "));
            ExitCode::from(10)
        }
        Outcome::Unsatisfiable => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        Outcome::BacktrackLimit | Outcome::DecisionLimit | Outcome::Aborted => {
            println!("s UNKNOWN");
            ExitCode::SUCCESS
        }
    }
}
