//! Cube-and-conquer SAT subsystem: a modern CDCL core plus a lookahead
//! cuber that decomposes hard CSC instances into independently solvable
//! cubes for the `modsyn-par` worker pool.
//!
//! The paper's direct (no-decomposition) method deliberately reproduces
//! the 1994 experience: its monolithic CSC formulas blow the SAT backtrack
//! limit. This crate is the modern counterpoint (ROADMAP item 1, grounded
//! in Kondratiev/Gribanova/Semenov's parallel CircuitSAT decomposition):
//!
//! * [`Cdcl`] — conflict-driven clause learning with two-watched-literal
//!   propagation (blocker lists), 1-UIP analysis with deep clause
//!   minimisation, heap-backed VSIDS, LBD-aware clause-database reduction
//!   with glue protection, Luby restarts, phase saving, and assumptions;
//! * [`cube_formula`] — a measured-reduction lookahead cuber with failed
//!   literal detection;
//! * [`solve_cnc`] — the conquer stage on a [`modsyn_par::WorkerPool`]
//!   with a deterministic lowest-index-SAT aggregation contract
//!   (DESIGN.md §15);
//! * [`Engine`] / [`solve_with_engine_traced`] — the dispatch point the
//!   synthesis loop and the `modsat`/`modsyn` CLIs share.
//!
//! Everything honours the workspace-wide cancellation and fault
//! discipline: cancel tokens are polled every few hundred propagations,
//! and the `sat.abort` / `sat.conflict-storm` sites are probed at the same
//! cadence, so existing chaos plans cover this core unchanged.

mod cdcl;
mod conquer;
mod cube;
mod engine;

pub use cdcl::{Cdcl, CdclExtra, CdclOptions};
pub use conquer::{solve_cnc, solve_cnc_traced, CncOptions, CncResult};
pub use cube::{cube_formula, CubeOptions, CubeSet};
pub use engine::{
    classic_portfolio, solve_engine_portfolio_traced, solve_with_engine, solve_with_engine_traced,
    Engine,
};
