//! Engine selection: one dispatch point the synthesis loop and the CLIs
//! share, so "which SAT core answered" is a first-class, serialisable
//! option instead of a scatter of booleans.

use modsyn_fault::Faults;
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;
use modsyn_sat::{
    solve_portfolio_traced, standard_portfolio, CnfFormula, Heuristic, Outcome, Solver,
    SolverOptions, SolverStats,
};

use crate::cdcl::{Cdcl, CdclOptions};
use crate::conquer::{solve_cnc_traced, CncOptions};
use crate::cube::CubeOptions;

/// Which SAT core decides the CSC formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The classic `modsyn-sat` engine (CDCL-light with learning, or pure
    /// chronological branch-and-bound per `SolverOptions::learning`) — the
    /// paper-faithful baseline and ablation reference.
    Dpll,
    /// The `modsyn-cnc` CDCL core: heap VSIDS, deep clause minimisation,
    /// LBD-aware deletion, Luby restarts. The default.
    #[default]
    Cdcl,
    /// Lookahead cube-and-conquer over the CDCL core on a worker pool.
    Cnc {
        /// Maximum cube depth (≤ `2^depth` cubes).
        depth: u32,
        /// Free-variable cutoff below which a branch stops splitting.
        cutoff: u32,
        /// Conquer workers; 0 = all available cores.
        jobs: u32,
    },
}

impl Engine {
    /// The cube-and-conquer engine with default cube shape.
    pub fn cnc() -> Engine {
        let cube = CubeOptions::default();
        Engine::Cnc {
            depth: cube.depth,
            cutoff: cube.cutoff,
            jobs: 0,
        }
    }

    /// Parses a CLI engine name (`dpll`, `cdcl`, `cnc`).
    pub fn parse(name: &str) -> Result<Engine, String> {
        match name {
            "dpll" => Ok(Engine::Dpll),
            "cdcl" => Ok(Engine::Cdcl),
            "cnc" => Ok(Engine::cnc()),
            other => Err(format!(
                "unknown engine {other:?} (expected dpll, cdcl or cnc)"
            )),
        }
    }

    /// Stable name for fingerprints, traces and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Dpll => "dpll",
            Engine::Cdcl => "cdcl",
            Engine::Cnc { .. } => "cnc",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Cnc {
                depth,
                cutoff,
                jobs,
            } => write!(f, "cnc(depth={depth},cutoff={cutoff},jobs={jobs})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Solves `formula` with the selected engine under the caller's tracer,
/// cancel token and fault handle.
///
/// `solver` carries the shared limits: `max_backtracks` maps onto the CDCL
/// core's conflict budget and cube-and-conquer's *per-cube* conflict
/// budget; `heuristic`/`learning` only affect [`Engine::Dpll`].
pub fn solve_with_engine_traced(
    engine: Engine,
    formula: &CnfFormula,
    solver: SolverOptions,
    cancel: &CancelToken,
    faults: &Faults,
    tracer: &Tracer,
) -> (Outcome, SolverStats) {
    match engine {
        Engine::Dpll => {
            let mut s = Solver::new(formula, solver)
                .with_cancel(cancel.clone())
                .with_faults(faults.clone());
            let outcome = s.solve_traced(tracer);
            (outcome, s.stats())
        }
        Engine::Cdcl => {
            let mut s = Cdcl::new(
                formula,
                CdclOptions {
                    max_conflicts: solver.max_backtracks,
                    max_decisions: solver.max_decisions,
                },
            )
            .with_cancel(cancel.clone())
            .with_faults(faults.clone());
            let outcome = s.solve_traced(tracer);
            (outcome, s.stats())
        }
        Engine::Cnc {
            depth,
            cutoff,
            jobs,
        } => {
            let options = CncOptions {
                cube: CubeOptions {
                    depth,
                    cutoff,
                    ..CubeOptions::default()
                },
                jobs: jobs as usize,
                max_conflicts: solver.max_backtracks,
                max_decisions: solver.max_decisions,
            };
            let result = solve_cnc_traced(formula, &options, cancel, faults, tracer);
            (result.outcome, result.stats)
        }
    }
}

/// [`solve_with_engine_traced`] without observability.
pub fn solve_with_engine(
    engine: Engine,
    formula: &CnfFormula,
    solver: SolverOptions,
    cancel: &CancelToken,
    faults: &Faults,
) -> (Outcome, SolverStats) {
    solve_with_engine_traced(engine, formula, solver, cancel, faults, &Tracer::disabled())
}

/// Races the CDCL core against the classic portfolio's strongest two legs
/// — the retry ladder's escape hatch, now with the modern core as a
/// member. Verdict-deterministic, trace-nondeterministic, and (like the
/// classic race) deliberately immune to `sat.*` fault plans: injecting
/// into racing members would make the verdict scheduling-dependent.
///
/// Returns the winning outcome and the winner's stats (default stats when
/// nobody decided).
pub fn solve_engine_portfolio_traced(
    formula: &CnfFormula,
    limits: SolverOptions,
    cancel: &CancelToken,
    tracer: &Tracer,
) -> (Outcome, SolverStats) {
    let race = cancel.child();
    let cdcl_outcome: std::sync::Mutex<Option<(Outcome, SolverStats)>> =
        std::sync::Mutex::new(None);
    let classic = std::thread::scope(|scope| {
        let race_ref = &race;
        let slot = &cdcl_outcome;
        let cdcl_tracer = tracer.clone();
        scope.spawn(move || {
            let _attempt = cdcl_tracer.span("attempt:cdcl-core");
            let mut s = Cdcl::new(
                formula,
                CdclOptions {
                    max_conflicts: limits.max_backtracks,
                    max_decisions: limits.max_decisions,
                },
            )
            .with_cancel(race_ref.child());
            let outcome = s.solve_traced(&cdcl_tracer);
            if outcome.is_decided() {
                race_ref.cancel();
            }
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((outcome, s.stats()));
        });
        // The classic race shares the same race token, so whichever side
        // decides first cancels the other.
        let classic_configs = vec![
            SolverOptions {
                heuristic: Heuristic::Activity,
                learning: true,
                ..limits
            },
            SolverOptions {
                heuristic: Heuristic::JeroslowWang,
                learning: false,
                ..limits
            },
        ];
        solve_portfolio_traced(formula, &classic_configs, &race, tracer)
    });
    let cdcl = cdcl_outcome
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    // Prefer whichever member actually decided; the CDCL core first (its
    // stats feed the report), then the classic race's verdict.
    match cdcl {
        Some((outcome, stats)) if outcome.is_decided() => (outcome, stats),
        cdcl_undecided => {
            if classic.outcome.is_decided() {
                let stats = classic
                    .winner
                    .map(|i| classic.runs[i].stats)
                    .unwrap_or_default();
                (classic.outcome, stats)
            } else if let Some((outcome, stats)) = cdcl_undecided {
                // Nobody decided: prefer a limit verdict over a
                // cancellation, mirroring the classic portfolio.
                if outcome != Outcome::Aborted {
                    (outcome, stats)
                } else {
                    (classic.outcome, stats)
                }
            } else {
                (classic.outcome, SolverStats::default())
            }
        }
    }
}

/// The classic three-config portfolio, re-exported shape for callers that
/// race [`Engine::Dpll`] only.
pub fn classic_portfolio(limits: SolverOptions) -> Vec<SolverOptions> {
    standard_portfolio(limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::{Lit, Var};

    #[test]
    fn parse_roundtrip() {
        assert_eq!(Engine::parse("dpll").unwrap(), Engine::Dpll);
        assert_eq!(Engine::parse("cdcl").unwrap(), Engine::Cdcl);
        assert_eq!(Engine::parse("cnc").unwrap().name(), "cnc");
        assert!(Engine::parse("brute").is_err());
    }

    fn tiny_sat() -> CnfFormula {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::positive(Var::new(0)), Lit::positive(Var::new(1))]);
        f.add_clause([Lit::negative(Var::new(0))]);
        f
    }

    #[test]
    fn all_engines_agree_on_a_tiny_formula() {
        let f = tiny_sat();
        for engine in [Engine::Dpll, Engine::Cdcl, Engine::cnc()] {
            let (outcome, _) = solve_with_engine(
                engine,
                &f,
                SolverOptions::default(),
                &CancelToken::never(),
                &Faults::none(),
            );
            match outcome {
                Outcome::Satisfiable(m) => assert!(m.check(&f), "{engine}"),
                other => panic!("{engine}: {other:?}"),
            }
        }
    }

    #[test]
    fn engine_portfolio_decides() {
        let f = tiny_sat();
        let (outcome, _) = solve_engine_portfolio_traced(
            &f,
            SolverOptions::default(),
            &CancelToken::never(),
            &Tracer::disabled(),
        );
        assert!(outcome.is_sat());
    }

    #[test]
    fn display_includes_cnc_shape() {
        assert_eq!(Engine::Cdcl.to_string(), "cdcl");
        assert_eq!(
            Engine::Cnc {
                depth: 3,
                cutoff: 10,
                jobs: 2
            }
            .to_string(),
            "cnc(depth=3,cutoff=10,jobs=2)"
        );
    }
}
