//! The CDCL core: a conflict-driven clause-learning solver with the full
//! modern toolkit the lighter `modsyn-sat` engine deliberately omits —
//! blocker-literal watch lists, deep (recursive) learned-clause
//! minimisation, a heap-backed VSIDS order, LBD-aware clause-database
//! reduction with glue protection, Luby restarts, phase saving, and
//! assumption solving (the hook the cube-and-conquer layer hangs cubes on).
//!
//! The public surface mirrors `modsyn_sat::Solver` on purpose: borrowed
//! formula in, [`Outcome`] out, [`SolverStats`] counters, builder-style
//! [`Cdcl::with_cancel`] / [`Cdcl::with_faults`], and the same `sat.solve`
//! observability span, so the synthesis loop can dispatch on an engine
//! without caring which core answered.

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_obs::Tracer;
use modsyn_par::CancelToken;
use modsyn_sat::{CnfFormula, Lit, Model, Outcome, SolverStats, Var};

/// Search limits for a [`Cdcl`] solver.
///
/// `max_conflicts` is the CDCL analogue of the paper's SAT backtrack
/// limit: in a learning solver every conflict is one (non-chronological)
/// backtrack, so the two counters coincide and the limit surfaces as
/// [`Outcome::BacktrackLimit`] exactly like the classic engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CdclOptions {
    /// Abort with [`Outcome::BacktrackLimit`] after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Abort with [`Outcome::DecisionLimit`] after this many decisions.
    pub max_decisions: Option<u64>,
}

const UNASSIGNED: u8 = 2;
const NO_REASON: u32 = u32::MAX;

/// Main-loop iterations between cancel polls (a mask, so power of two - 1).
const CANCEL_POLL_MASK: u64 = 0xFF;
/// Propagations between in-propagation cancel polls: long implication
/// chains inside one conflict window stay responsive to deadlines.
const PROP_POLL_MASK: u64 = 0xFFF;
/// Luby restart unit, in conflicts.
const LUBY_UNIT: u64 = 128;
/// Variable activity decay: 1/decay applied to the increment per conflict.
const VAR_DECAY: f64 = 0.95;
/// Clause activity decay, per conflict.
const CLA_DECAY: f64 = 0.999;
/// Learned clauses with LBD at or below this are glue: never deleted.
const GLUE_LBD: u32 = 2;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    /// Any other literal of the clause; if it is already true the clause
    /// is satisfied and the watch scan skips the clause body entirely.
    blocker: Lit,
}

/// Clause header into the shared literal arena.
#[derive(Debug, Clone, Copy)]
struct Header {
    start: u32,
    len: u32,
    lbd: u32,
    activity: f32,
    learned: bool,
    deleted: bool,
}

/// Indexed max-heap over variable activities (the VSIDS order).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// `pos[v]` is the heap slot of variable `v`, or `usize::MAX`.
    pos: Vec<usize>,
}

impl VarOrder {
    fn new(n: usize) -> VarOrder {
        VarOrder {
            heap: Vec::with_capacity(n),
            pos: vec![usize::MAX; n],
        }
    }

    fn contains(&self, v: usize) -> bool {
        self.pos[v] != usize::MAX
    }

    fn up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) >> 1;
            let pv = self.heap[parent];
            if act[pv as usize] >= act[v as usize] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv as usize] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i;
    }

    fn down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                r
            } else {
                l
            };
            let cv = self.heap[child];
            if act[v as usize] >= act[cv as usize] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv as usize] = i;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i;
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v as u32);
        self.up(self.pos[v], act);
    }

    fn bumped(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            self.up(self.pos[v], act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.down(0, act);
        }
        Some(top)
    }
}

/// Conflict-driven clause-learning SAT engine over a borrowed
/// [`CnfFormula`].
#[derive(Debug)]
pub struct Cdcl<'f> {
    formula: &'f CnfFormula,
    options: CdclOptions,
    /// All clause literals, problem clauses first, learned appended.
    arena: Vec<Lit>,
    clauses: Vec<Header>,
    watches: Vec<Vec<Watcher>>,
    values: Vec<u8>,
    levels: Vec<u32>,
    reasons: Vec<u32>,
    trail: Vec<Lit>,
    level_starts: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    order: VarOrder,
    saved_phase: Vec<bool>,
    cla_inc: f64,
    /// Live (non-deleted) learned clause count, driving DB reduction.
    learnt_live: usize,
    max_learnts: f64,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    to_clear: Vec<u32>,
    /// Scratch for level-dedup in LBD computation / backjump selection.
    level_seen: Vec<u32>,
    level_stamp: u32,
    assumptions: Vec<Lit>,
    /// Formula contained the empty clause or conflicting units.
    root_unsat: bool,
    stats: SolverStats,
    extra: CdclExtra,
    cancel: CancelToken,
    tick: u64,
    prop_tick: u64,
    faults: Faults,
    fault_tick: u64,
}

/// Counters specific to the CDCL core, beyond the shared [`SolverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdclExtra {
    /// Learned clauses deleted by DB reduction.
    pub deleted_clauses: u64,
    /// DB reduction passes.
    pub reductions: u64,
    /// Sum of learned-clause LBDs (avg = `lbd_sum / learned_clauses`).
    pub lbd_sum: u64,
    /// Learned glue clauses (LBD ≤ 2, never deleted).
    pub glue_clauses: u64,
    /// Literals removed by learned-clause minimisation.
    pub minimized_literals: u64,
}

impl<'f> Cdcl<'f> {
    /// Prepares a solver for `formula`. Unit clauses are queued at level 0;
    /// an empty clause makes every solve return [`Outcome::Unsatisfiable`].
    pub fn new(formula: &'f CnfFormula, options: CdclOptions) -> Self {
        let n = formula.num_vars();
        // Jeroslow-Wang seeds: informed first decisions and a deterministic
        // initial heap order tuned to the clause-size profile of the CSC
        // encodings (many short consistency clauses, long USC disjunctions).
        let mut activity = vec![0.0f64; n];
        let mut phase_bias = vec![0.0f64; n];
        for clause in formula.clauses() {
            let w = 2f64.powi(-(clause.len().min(30) as i32));
            for &lit in clause {
                activity[lit.var().index()] += w;
                phase_bias[lit.var().index()] += if lit.is_positive() { w } else { -w };
            }
        }
        let mut s = Cdcl {
            formula,
            options,
            arena: Vec::with_capacity(formula.literal_count()),
            clauses: Vec::with_capacity(formula.clause_count()),
            watches: vec![Vec::new(); 2 * n],
            values: vec![UNASSIGNED; n],
            levels: vec![0; n],
            reasons: vec![NO_REASON; n],
            trail: Vec::new(),
            level_starts: Vec::new(),
            qhead: 0,
            activity,
            activity_inc: 1.0,
            order: VarOrder::new(n),
            saved_phase: phase_bias.iter().map(|&b| b > 0.0).collect(),
            cla_inc: 1.0,
            learnt_live: 0,
            max_learnts: (formula.clause_count() as f64 / 3.0).max(2000.0),
            seen: vec![false; n],
            to_clear: Vec::new(),
            level_seen: vec![0; n + 1],
            level_stamp: 0,
            assumptions: Vec::new(),
            root_unsat: formula.contains_empty_clause(),
            stats: SolverStats::default(),
            extra: CdclExtra::default(),
            cancel: CancelToken::never(),
            tick: 0,
            prop_tick: 0,
            faults: Faults::none(),
            fault_tick: 0,
        };
        for clause in formula.clauses() {
            let lits = clause.as_slice();
            match lits.len() {
                0 => s.root_unsat = true,
                1 => match s.lit_value(lits[0]) {
                    0 => s.root_unsat = true,
                    1 => {}
                    _ => s.assign(lits[0], NO_REASON),
                },
                _ => {
                    s.attach_clause(lits, false, 0);
                }
            }
        }
        for v in 0..n {
            s.order.insert(v, &s.activity);
        }
        s
    }

    /// Attaches a cancellation token, polled every [`CANCEL_POLL_MASK`]+1
    /// main-loop iterations and every [`PROP_POLL_MASK`]+1 propagations.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a fault-injection handle: the `sat.abort` and
    /// `sat.conflict-storm` sites are probed at the cancellation cadence,
    /// so chaos plans written for the classic engine cover this core too.
    #[must_use]
    pub fn with_faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }

    /// Statistics of the last solve.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// CDCL-specific counters of the last solve (LBD, deletions).
    pub fn extra(&self) -> CdclExtra {
        self.extra
    }

    /// Average LBD of the learned clauses, rounded; 0 before any learning.
    pub fn avg_lbd(&self) -> u64 {
        self.extra
            .lbd_sum
            .checked_div(self.stats.learned_clauses)
            .unwrap_or(0)
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        let v = self.values[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_negative() {
            v ^ 1
        } else {
            v
        }
    }

    fn current_level(&self) -> u32 {
        self.level_starts.len() as u32
    }

    fn assign(&mut self, lit: Lit, reason: u32) {
        let idx = lit.var().index();
        debug_assert_eq!(self.values[idx], UNASSIGNED);
        self.values[idx] = u8::from(lit.is_positive());
        self.levels[idx] = self.current_level();
        self.reasons[idx] = reason;
        self.trail.push(lit);
        let level = self.current_level() as usize;
        if level > self.stats.max_level {
            self.stats.max_level = level;
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learned: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cid = self.clauses.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(lits);
        self.clauses.push(Header {
            start,
            len: lits.len() as u32,
            lbd,
            activity: 0.0,
            learned,
            deleted: false,
        });
        self.watches[lits[0].index()].push(Watcher {
            clause: cid,
            blocker: lits[1],
        });
        self.watches[lits[1].index()].push(Watcher {
            clause: cid,
            blocker: lits[0],
        });
        if learned {
            self.learnt_live += 1;
        }
        let live = self.clauses.len() - (self.extra.deleted_clauses as usize);
        if live > self.stats.peak_clauses {
            self.stats.peak_clauses = live;
        }
        cid
    }

    fn clause_lits(&self, cid: u32) -> &[Lit] {
        let h = self.clauses[cid as usize];
        &self.arena[h.start as usize..(h.start + h.len) as usize]
    }

    fn poll_cancelled(&mut self) -> bool {
        if !self.cancel.is_cancellable() {
            return false;
        }
        self.tick = self.tick.wrapping_add(1);
        (self.tick & CANCEL_POLL_MASK) == 1 && self.cancel.is_cancelled()
    }

    fn poll_injected(&mut self) -> Option<Outcome> {
        if !self.faults.is_armed() {
            return None;
        }
        self.fault_tick = self.fault_tick.wrapping_add(1);
        if (self.fault_tick & CANCEL_POLL_MASK) != 1 {
            return None;
        }
        if self.faults.fire(site::SAT_ABORT) {
            return Some(Outcome::Aborted);
        }
        if self.faults.fire(site::SAT_CONFLICT_STORM) {
            return Some(Outcome::BacktrackLimit);
        }
        None
    }

    /// Two-watched-literal propagation with blocker skipping. Returns the
    /// conflicting clause id, or `None` when a fixpoint is reached.
    /// `Err(())` means the cancel token fired mid-chain.
    fn propagate(&mut self) -> Result<Option<u32>, ()> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            if self.cancel.is_cancellable() {
                self.prop_tick = self.prop_tick.wrapping_add(1);
                if (self.prop_tick & PROP_POLL_MASK) == 1 && self.cancel.is_cancelled() {
                    return Err(());
                }
            }
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0usize;
            let mut j = 0usize;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == 1 {
                    ws[j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let cid = w.clause;
                let h = self.clauses[cid as usize];
                let start = h.start as usize;
                let len = h.len as usize;
                let lits = &mut self.arena[start..start + len];
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                let first_val = {
                    let v = self.values[first.var().index()];
                    if v == UNASSIGNED {
                        UNASSIGNED
                    } else if first.is_negative() {
                        v ^ 1
                    } else {
                        v
                    }
                };
                if first_val == 1 {
                    ws[j] = Watcher {
                        clause: cid,
                        blocker: first,
                    };
                    i += 1;
                    j += 1;
                    continue;
                }
                for k in 2..len {
                    let cand = lits[k];
                    let v = self.values[cand.var().index()];
                    let cand_false = v != UNASSIGNED && (v == 0) != cand.is_negative();
                    if !cand_false {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.index()].push(Watcher {
                            clause: cid,
                            blocker: first,
                        });
                        i += 1;
                        continue 'watchers;
                    }
                }
                // No replacement: the clause is unit or conflicting.
                ws[j] = Watcher {
                    clause: cid,
                    blocker: first,
                };
                i += 1;
                j += 1;
                if first_val == 0 {
                    conflict = Some(cid);
                    // Keep the remaining watchers before bailing out.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        i += 1;
                        j += 1;
                    }
                    self.qhead = self.trail.len();
                    break;
                }
                self.assign(first, cid);
                self.stats.propagations += 1;
            }
            ws.truncate(j);
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                return Ok(conflict);
            }
        }
        Ok(None)
    }

    fn bump_var(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.activity_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
        self.order.bumped(var.index(), &self.activity);
    }

    fn bump_clause(&mut self, cid: u32) {
        let h = &mut self.clauses[cid as usize];
        if !h.learned {
            return;
        }
        h.activity += self.cla_inc as f32;
        if h.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Unassigns the trail back to `target` length, saving phases and
    /// re-inserting variables into the decision order.
    fn unassign_to(&mut self, target: usize) {
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("non-empty trail");
            let idx = lit.var().index();
            self.saved_phase[idx] = self.values[idx] == 1;
            self.values[idx] = UNASSIGNED;
            self.reasons[idx] = NO_REASON;
            self.order.insert(idx, &self.activity);
        }
        self.qhead = target;
    }

    /// Backtracks to decision level `level`.
    fn cancel_until(&mut self, level: u32) {
        if self.current_level() <= level {
            return;
        }
        let target = self.level_starts[level as usize];
        self.unassign_to(target);
        self.level_starts.truncate(level as usize);
    }

    /// Number of distinct decision levels among `lits` (the literal block
    /// distance of a learned clause).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.level_stamp += 1;
        let mut lbd = 0;
        for &lit in lits {
            let l = self.levels[lit.var().index()] as usize;
            if self.level_seen[l] != self.level_stamp {
                self.level_seen[l] = self.level_stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// 1-UIP conflict analysis with deep (recursive) minimisation.
    /// Returns the learned clause (asserting literal first) and the
    /// backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cid = conflict;
        let current = self.current_level();
        self.to_clear.clear();

        loop {
            self.bump_clause(cid);
            let h = self.clauses[cid as usize];
            let start = h.start as usize;
            let len = h.len as usize;
            for k in 0..len {
                let q = self.arena[start + k];
                // A reason clause contains its implied literal; skip it.
                if Some(q) == p {
                    continue;
                }
                let vi = q.var().index();
                if self.seen[vi] || self.levels[vi] == 0 {
                    continue;
                }
                self.seen[vi] = true;
                self.to_clear.push(vi as u32);
                self.bump_var(q.var());
                if self.levels[vi] >= current {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            counter -= 1;
            if counter == 0 {
                break;
            }
            cid = self.reasons[lit.var().index()];
            debug_assert_ne!(cid, NO_REASON);
        }
        let uip = p.expect("1-UIP exists");
        learned[0] = !uip;

        // Deep minimisation: drop any literal whose negation is implied by
        // the rest of the clause through the implication graph.
        let mut abstract_levels = 0u32;
        for &lit in &learned[1..] {
            abstract_levels |= 1 << (self.levels[lit.var().index()] & 31);
        }
        let before = learned.len();
        let mut kept = 1;
        for i in 1..learned.len() {
            let lit = learned[i];
            if self.reasons[lit.var().index()] == NO_REASON
                || !self.lit_redundant(lit, abstract_levels)
            {
                learned[kept] = lit;
                kept += 1;
            }
        }
        learned.truncate(kept);
        self.extra.minimized_literals += (before - kept) as u64;

        // Backjump level: highest level below the asserting literal's.
        let backjump = if learned.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.levels[learned[i].var().index()] > self.levels[learned[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            self.levels[learned[1].var().index()]
        };

        for &vi in &self.to_clear {
            self.seen[vi as usize] = false;
        }
        self.to_clear.clear();
        (learned, backjump)
    }

    /// Whether `lit`'s negation is implied by the remaining learned-clause
    /// literals (minisat's `litRedundant`, iterative).
    fn lit_redundant(&mut self, lit: Lit, abstract_levels: u32) -> bool {
        let mut stack: Vec<Lit> = vec![lit];
        let undo_from = self.to_clear.len();
        while let Some(q) = stack.pop() {
            let reason = self.reasons[q.var().index()];
            debug_assert_ne!(reason, NO_REASON);
            let h = self.clauses[reason as usize];
            let start = h.start as usize;
            let len = h.len as usize;
            for k in 0..len {
                let l = self.arena[start + k];
                let vi = l.var().index();
                if vi == q.var().index() || self.seen[vi] || self.levels[vi] == 0 {
                    continue;
                }
                if self.reasons[vi] != NO_REASON
                    && (1u32 << (self.levels[vi] & 31)) & abstract_levels != 0
                {
                    self.seen[vi] = true;
                    self.to_clear.push(vi as u32);
                    stack.push(l);
                } else {
                    // A decision or out-of-clause level: not redundant.
                    // Seen marks added during this probe stay set — they
                    // are cleared with the whole analysis scratch, and
                    // keeping them only makes later probes conservative
                    // in the same (sound) direction as minisat's.
                    for &vi in &self.to_clear[undo_from..] {
                        self.seen[vi as usize] = false;
                    }
                    self.to_clear.truncate(undo_from);
                    return false;
                }
            }
        }
        true
    }

    /// Deletes the worst half of the deletable learned clauses: sorted by
    /// LBD (higher first) then activity (lower first); glue clauses
    /// (LBD ≤ [`GLUE_LBD`]), binary clauses and reason clauses survive.
    fn reduce_db(&mut self) {
        self.extra.reductions += 1;
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&cid| {
                let h = self.clauses[cid as usize];
                h.learned && !h.deleted && h.lbd > GLUE_LBD && h.len > 2 && !self.is_reason(cid)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ha = self.clauses[a as usize];
            let hb = self.clauses[b as usize];
            hb.lbd
                .cmp(&ha.lbd)
                .then(
                    ha.activity
                        .partial_cmp(&hb.activity)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(b.cmp(&a))
        });
        let doomed = candidates.len() / 2;
        for &cid in &candidates[..doomed] {
            self.detach_clause(cid);
        }
    }

    fn is_reason(&self, cid: u32) -> bool {
        let first = self.clause_lits(cid)[0];
        self.values[first.var().index()] != UNASSIGNED && self.reasons[first.var().index()] == cid
    }

    fn detach_clause(&mut self, cid: u32) {
        let (w0, w1) = {
            let lits = self.clause_lits(cid);
            (lits[0], lits[1])
        };
        self.watches[w0.index()].retain(|w| w.clause != cid);
        self.watches[w1.index()].retain(|w| w.clause != cid);
        self.clauses[cid as usize].deleted = true;
        self.learnt_live -= 1;
        self.extra.deleted_clauses += 1;
    }

    /// The reluctant-doubling Luby sequence (1, 1, 2, 1, 1, 2, 4, …).
    fn luby(mut i: u64) -> u64 {
        // Find the smallest complete subsequence (length 2^seq - 1)
        // containing index i, then recurse into it by modulus.
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != i {
            size = (size - 1) / 2;
            seq -= 1;
            i %= size;
        }
        1u64 << seq
    }

    /// Solves the formula. See [`Cdcl::solve_with_assumptions`] for the
    /// assumption-aware variant the cube layer uses.
    pub fn solve(&mut self) -> Outcome {
        self.solve_with_assumptions(&[])
    }

    /// Solves under `assumptions`: each assumed literal is forced as a
    /// pseudo-decision before free decisions start, and restarts re-assume
    /// them. [`Outcome::Unsatisfiable`] then means *unsatisfiable under the
    /// assumptions* — exactly the "cube refuted" verdict cube-and-conquer
    /// aggregates.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Outcome {
        if self.root_unsat {
            return Outcome::Unsatisfiable;
        }
        self.assumptions = assumptions.to_vec();
        self.cancel_until(0);
        match self.propagate() {
            Err(()) => return Outcome::Aborted,
            Ok(Some(_)) => {
                self.root_unsat = true;
                return Outcome::Unsatisfiable;
            }
            Ok(None) => {}
        }

        let mut restart_num = 0u64;
        let mut restart_limit = Self::luby(restart_num) * LUBY_UNIT;
        let mut conflicts_since_restart = 0u64;

        loop {
            if self.poll_cancelled() {
                return Outcome::Aborted;
            }
            if let Some(injected) = self.poll_injected() {
                return injected;
            }
            let conflict = match self.propagate() {
                Err(()) => return Outcome::Aborted,
                Ok(c) => c,
            };
            if let Some(conflict) = conflict {
                self.stats.conflicts += 1;
                self.stats.backtracks += 1;
                conflicts_since_restart += 1;
                if let Some(limit) = self.options.max_conflicts {
                    if self.stats.conflicts > limit {
                        return Outcome::BacktrackLimit;
                    }
                }
                if self.current_level() == 0 {
                    self.root_unsat = true;
                    return Outcome::Unsatisfiable;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.stats.learned_clauses += 1;
                self.stats.learned_literals += learned.len() as u64;
                self.activity_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                self.cancel_until(backjump);
                if learned.len() == 1 {
                    self.assign(learned[0], NO_REASON);
                } else {
                    let lbd = self.compute_lbd(&learned);
                    self.extra.lbd_sum += lbd as u64;
                    if lbd <= GLUE_LBD {
                        self.extra.glue_clauses += 1;
                    }
                    let cid = self.attach_clause(&learned, true, lbd);
                    self.assign(learned[0], cid);
                }
                if self.learnt_live as f64 >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
                continue;
            }

            if conflicts_since_restart >= restart_limit {
                restart_num += 1;
                restart_limit = Self::luby(restart_num) * LUBY_UNIT;
                conflicts_since_restart = 0;
                self.stats.restarts += 1;
                self.cancel_until(0);
                continue;
            }

            // Re-assume the cube prefix, then free decisions.
            let mut next_decision = None;
            while (self.current_level() as usize) < self.assumptions.len() {
                let p = self.assumptions[self.current_level() as usize];
                match self.lit_value(p) {
                    1 => {
                        // Already true: open an empty pseudo-level so the
                        // prefix indices keep lining up.
                        self.level_starts.push(self.trail.len());
                    }
                    0 => return Outcome::Unsatisfiable,
                    _ => {
                        next_decision = Some(p);
                        break;
                    }
                }
            }
            let decision = match next_decision {
                Some(p) => p,
                None => {
                    let mut picked = None;
                    while let Some(v) = self.order.pop_max(&self.activity) {
                        if self.values[v as usize] == UNASSIGNED {
                            picked = Some(v);
                            break;
                        }
                    }
                    match picked {
                        Some(v) => {
                            let var = Var::new(v as usize);
                            Lit::with_polarity(var, self.saved_phase[v as usize])
                        }
                        None => return Outcome::Satisfiable(self.build_model()),
                    }
                }
            };
            self.stats.decisions += 1;
            if let Some(limit) = self.options.max_decisions {
                if self.stats.decisions > limit {
                    return Outcome::DecisionLimit;
                }
            }
            self.level_starts.push(self.trail.len());
            self.assign(decision, NO_REASON);
        }
    }

    /// [`Cdcl::solve`] wrapped in the same `sat.solve` observability span
    /// as the classic engine, plus the CDCL extras: an `engine=cdcl` note,
    /// LBD counters, and a `sat_lbd` histogram sample (the solve's average
    /// learned-clause LBD).
    pub fn solve_traced(&mut self, tracer: &Tracer) -> Outcome {
        self.solve_traced_with_assumptions(&[], tracer)
    }

    /// [`Cdcl::solve_with_assumptions`] with the `sat.solve` span.
    pub fn solve_traced_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        tracer: &Tracer,
    ) -> Outcome {
        if !tracer.is_observed() {
            return self.solve_with_assumptions(assumptions);
        }
        let _span = tracer.span("sat.solve");
        let _flight = tracer.flight_span("sat.solve");
        tracer.note("engine", "cdcl");
        tracer.gauge("vars", self.formula.num_vars() as f64);
        tracer.gauge("clauses", self.formula.clause_count() as f64);
        let fault_sites = [site::SAT_ABORT, site::SAT_CONFLICT_STORM];
        let injected_before = fault_sites.map(|at| self.faults.injected_at(at));
        let outcome = self.solve_with_assumptions(assumptions);
        for (at, before) in fault_sites.into_iter().zip(injected_before) {
            let fired = self.faults.injected_at(at).saturating_sub(before);
            if fired > 0 {
                tracer.flight_event(modsyn_obs::FlightKind::Fault, at, fired);
            }
        }
        let s = self.stats;
        tracer.record_hist("sat_conflicts", s.conflicts);
        tracer.record_hist("sat_decisions", s.decisions);
        tracer.record_hist("sat_lbd", self.avg_lbd());
        tracer.counter("decisions", s.decisions);
        tracer.counter("propagations", s.propagations);
        tracer.counter("backtracks", s.backtracks);
        tracer.counter("conflicts", s.conflicts);
        tracer.counter("learned_clauses", s.learned_clauses);
        tracer.counter("learned_literals", s.learned_literals);
        tracer.counter("restarts", s.restarts);
        tracer.counter("deleted_clauses", self.extra.deleted_clauses);
        tracer.counter("glue_clauses", self.extra.glue_clauses);
        tracer.counter("minimized_literals", self.extra.minimized_literals);
        tracer.gauge("peak_clauses", s.peak_clauses as f64);
        tracer.gauge("max_level", s.max_level as f64);
        tracer.note(
            "outcome",
            match &outcome {
                Outcome::Satisfiable(_) => "sat",
                Outcome::Unsatisfiable => "unsat",
                Outcome::BacktrackLimit => "backtrack-limit",
                Outcome::DecisionLimit => "decision-limit",
                Outcome::Aborted => "aborted",
            },
        );
        outcome
    }

    fn build_model(&self) -> Model {
        let values = self.values.iter().map(|&v| v == 1).collect();
        let model = Model::from_values(values);
        debug_assert!(model.check(self.formula));
        model
    }

    // ----- probing interface for the lookahead cuber -----

    /// Number of assigned variables.
    pub(crate) fn assigned_count(&self) -> usize {
        self.trail.len()
    }

    pub(crate) fn num_vars(&self) -> usize {
        self.values.len()
    }

    pub(crate) fn is_root_unsat(&self) -> bool {
        self.root_unsat
    }

    pub(crate) fn var_unassigned(&self, v: usize) -> bool {
        self.values[v] == UNASSIGNED
    }

    /// Propagates the level-0 units. `Ok(false)` on a root conflict,
    /// `Err(())` if the cancel token fired mid-propagation (the caller
    /// must NOT read a verdict out of that).
    pub(crate) fn propagate_root(&mut self) -> Result<bool, ()> {
        if self.root_unsat {
            return Ok(false);
        }
        match self.propagate() {
            Ok(None) => Ok(true),
            Ok(Some(_)) => {
                self.root_unsat = true;
                Ok(false)
            }
            Err(()) => Err(()),
        }
    }

    /// Opens a new decision level, assigns `lit`, and propagates. Returns
    /// the number of literals the decision implied (itself included), or
    /// `Ok(None)` on a conflict — in which case the level is popped again
    /// and the state is exactly as before the call. `Err(())` means the
    /// cancel token fired; the probe level is popped, but no verdict may
    /// be drawn.
    pub(crate) fn probe_decide(&mut self, lit: Lit) -> Result<Option<usize>, ()> {
        debug_assert_eq!(self.lit_value(lit), UNASSIGNED);
        let before = self.trail.len();
        self.level_starts.push(before);
        self.assign(lit, NO_REASON);
        match self.propagate() {
            Ok(None) => Ok(Some(self.trail.len() - before)),
            Ok(Some(_)) => {
                self.pop_probe();
                Ok(None)
            }
            Err(()) => {
                self.pop_probe();
                Err(())
            }
        }
    }

    /// Pops the most recent probe level.
    pub(crate) fn pop_probe(&mut self) {
        let level = self.current_level();
        debug_assert!(level > 0);
        self.cancel_until(level - 1);
    }

    /// Current full assignment as a model (only valid when every variable
    /// is assigned and propagation is at fixpoint).
    pub(crate) fn full_model(&self) -> Model {
        debug_assert_eq!(self.trail.len(), self.num_vars());
        self.build_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::{solve_exhaustive, CnfFormula, Lit, Var};

    fn lit(i: i32) -> Lit {
        let var = Var::new((i.unsigned_abs() - 1) as usize);
        Lit::with_polarity(var, i > 0)
    }

    #[test]
    fn simple_sat() {
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(1), lit(2)]);
        f.add_clause([lit(-1)]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        match s.solve() {
            Outcome::Satisfiable(m) => {
                assert!(!m.value(Var::new(0)));
                assert!(m.value(Var::new(1)));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_unsat() {
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(1), lit(2)]);
        f.add_clause([lit(1), lit(-2)]);
        f.add_clause([lit(-1), lit(2)]);
        f.add_clause([lit(-1), lit(-2)]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        assert_eq!(s.solve(), Outcome::Unsatisfiable);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause([]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        assert_eq!(s.solve(), Outcome::Unsatisfiable);
    }

    #[test]
    fn conflicting_units_are_unsat() {
        let mut f = CnfFormula::new(1);
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1)]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        assert_eq!(s.solve(), Outcome::Unsatisfiable);
    }

    #[test]
    fn assumptions_refute_a_branch_without_refuting_the_formula() {
        // (a | b) & (-a | b): satisfiable, but not with b = false, a = true.
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(1), lit(2)]);
        f.add_clause([lit(-1), lit(2)]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        assert_eq!(s.solve_with_assumptions(&[lit(-2)]), Outcome::Unsatisfiable);
        // The same solver instance still proves the formula satisfiable.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumption_model_respects_the_cube() {
        let mut f = CnfFormula::new(3);
        f.add_clause([lit(1), lit(2), lit(3)]);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        match s.solve_with_assumptions(&[lit(-1), lit(3)]) {
            Outcome::Satisfiable(m) => {
                assert!(!m.value(Var::new(0)));
                assert!(m.value(Var::new(2)));
                assert!(m.check(&f));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn conflict_limit_surfaces_as_backtrack_limit() {
        // A compact pigeonhole-style UNSAT instance that needs conflicts.
        let f = pigeonhole(5);
        let mut s = Cdcl::new(
            &f,
            CdclOptions {
                max_conflicts: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(s.solve(), Outcome::BacktrackLimit);
    }

    #[test]
    fn cancelled_token_aborts() {
        let f = pigeonhole(7);
        let token = CancelToken::new();
        token.cancel();
        let mut s = Cdcl::new(&f, CdclOptions::default()).with_cancel(token);
        assert_eq!(s.solve(), Outcome::Aborted);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(Cdcl::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    /// `n` pigeons into `n-1` holes: var p*(n-1)+h = pigeon p in hole h.
    fn pigeonhole(n: usize) -> CnfFormula {
        let holes = n - 1;
        let mut f = CnfFormula::new(n * holes);
        let v = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..n {
            f.add_clause((0..holes).map(|h| Lit::positive(v(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..n {
                for p2 in p1 + 1..n {
                    f.add_clause([Lit::negative(v(p1, h)), Lit::negative(v(p2, h))]);
                }
            }
        }
        f
    }

    #[test]
    fn pigeonhole_unsat_with_learning_and_reduction() {
        let f = pigeonhole(7);
        let mut s = Cdcl::new(&f, CdclOptions::default());
        assert_eq!(s.solve(), Outcome::Unsatisfiable);
        assert!(s.stats().learned_clauses > 0);
        assert!(s.extra().lbd_sum > 0);
    }

    #[test]
    fn agrees_with_exhaustive_on_small_random_cnfs() {
        let mut state = 0x5eed_cafe_u64;
        let mut next = move || {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for _ in 0..300 {
            let num_vars = 1 + (next() % 8) as usize;
            let num_clauses = (next() % 24) as usize;
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 4) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as usize);
                        Lit::with_polarity(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let expected = solve_exhaustive(&f).is_sat();
            let mut s = Cdcl::new(&f, CdclOptions::default());
            match s.solve() {
                Outcome::Satisfiable(m) => {
                    assert!(expected, "cdcl sat, exhaustive unsat");
                    assert!(m.check(&f));
                }
                Outcome::Unsatisfiable => assert!(!expected, "cdcl unsat, exhaustive sat"),
                other => panic!("undecided on a tiny formula: {other:?}"),
            }
        }
    }
}
