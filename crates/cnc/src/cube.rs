//! The lookahead cuber: splits a hard instance into a deterministic list
//! of cubes (partial assignments) for the conquer stage to refute or
//! satisfy in parallel.
//!
//! Variable selection is **measured reduction** in the March tradition:
//! for each candidate variable the cuber probes both polarities with a
//! full unit-propagation lookahead and scores the pair by the product of
//! the implied-literal counts (favouring balanced, high-impact splits).
//! A polarity whose probe conflicts is a **failed literal** — its negation
//! is forced at the current node, shrinking every cube below it; when both
//! polarities fail the branch is refuted outright without ever reaching
//! the conquer stage.
//!
//! Cubing is serial and purely propagation-driven, so for a given formula
//! and options the cube list is a deterministic function — the anchor of
//! the cube-and-conquer determinism contract (DESIGN.md §15).

use modsyn_fault::{site, FaultHook, Faults};
use modsyn_par::CancelToken;
use modsyn_sat::{CnfFormula, Lit, Outcome, Var};

use crate::cdcl::{Cdcl, CdclOptions};

/// Shape controls for the cuber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeOptions {
    /// Maximum cube depth: at most `2^depth` cubes (fewer when failed
    /// literals or refuted branches prune the tree).
    pub depth: u32,
    /// Stop splitting a branch once fewer than this many variables remain
    /// unassigned — the subproblem is already easy enough to conquer.
    pub cutoff: u32,
    /// Candidate variables scored per node (top-K by Jeroslow-Wang
    /// weight). Larger = better splits, slower cubing.
    pub candidates: u32,
}

impl Default for CubeOptions {
    fn default() -> Self {
        CubeOptions {
            depth: 4,
            cutoff: 64,
            candidates: 20,
        }
    }
}

/// Output of [`cube_formula`].
#[derive(Debug, Clone)]
pub struct CubeSet {
    /// The cubes, in deterministic DFS order (positive branch first).
    /// Each cube is the literal prefix — lookahead decisions plus any
    /// failed-literal forcings — to assume before conquering.
    pub cubes: Vec<Vec<Lit>>,
    /// Branches the cuber refuted itself (both probe polarities failed).
    pub refuted_branches: u64,
    /// Literals forced by failed-literal detection across all nodes.
    pub forced_literals: u64,
    /// Propagations spent probing.
    pub propagations: u64,
    /// `Some` when cubing alone decided the formula: a root-level
    /// conflict (unsat), every branch refuted (unsat), or a lookahead
    /// that completed a satisfying assignment.
    pub decided: Option<Outcome>,
}

struct Cuber<'f> {
    solver: Cdcl<'f>,
    options: CubeOptions,
    /// Static Jeroslow-Wang variable weights for candidate preselection.
    weights: Vec<f64>,
    cubes: Vec<Vec<Lit>>,
    path: Vec<Lit>,
    refuted: u64,
    forced: u64,
    model: Option<modsyn_sat::Model>,
    cancel: CancelToken,
    faults: Faults,
}

/// Splits `formula` into cubes. The `cancel` token is polled at every
/// tree node and inside long propagations; the `sat.abort` and
/// `sat.conflict-storm` fault sites are probed at every node so chaos
/// plans reach the cuber too.
pub fn cube_formula(
    formula: &CnfFormula,
    options: &CubeOptions,
    cancel: &CancelToken,
    faults: &Faults,
) -> Result<CubeSet, Outcome> {
    let solver = Cdcl::new(formula, CdclOptions::default()).with_cancel(cancel.clone());
    let mut weights = vec![0.0f64; formula.num_vars()];
    for clause in formula.clauses() {
        let w = 2f64.powi(-(clause.len().min(30) as i32));
        for &lit in clause {
            weights[lit.var().index()] += w;
        }
    }
    let mut cuber = Cuber {
        solver,
        options: *options,
        weights,
        cubes: Vec::new(),
        path: Vec::new(),
        refuted: 0,
        forced: 0,
        model: None,
        cancel: cancel.clone(),
        faults: faults.clone(),
    };
    if cuber.solver.is_root_unsat()
        || !cuber
            .solver
            .propagate_root()
            .map_err(|_| Outcome::Aborted)?
    {
        return Ok(decided_set(Outcome::Unsatisfiable));
    }
    if cuber.solver.assigned_count() == cuber.solver.num_vars() {
        let model = cuber.solver.full_model();
        return Ok(decided_set(Outcome::Satisfiable(model)));
    }
    cuber.split(options.depth)?;
    let stats = cuber.solver.stats();
    let decided = if let Some(model) = cuber.model {
        Some(Outcome::Satisfiable(model))
    } else if cuber.cubes.is_empty() {
        // Every branch refuted by lookahead: the formula is unsat.
        Some(Outcome::Unsatisfiable)
    } else {
        None
    };
    Ok(CubeSet {
        cubes: cuber.cubes,
        refuted_branches: cuber.refuted,
        forced_literals: cuber.forced,
        propagations: stats.propagations,
        decided,
    })
}

fn decided_set(outcome: Outcome) -> CubeSet {
    CubeSet {
        cubes: Vec::new(),
        refuted_branches: u64::from(outcome == Outcome::Unsatisfiable),
        forced_literals: 0,
        propagations: 0,
        decided: Some(outcome),
    }
}

impl Cuber<'_> {
    /// Polls cancellation and the `sat.*` fault sites at a tree node.
    fn poll(&mut self) -> Result<(), Outcome> {
        if self.cancel.is_cancellable() && self.cancel.is_cancelled() {
            return Err(Outcome::Aborted);
        }
        if self.faults.is_armed() {
            if self.faults.fire(site::SAT_ABORT) {
                return Err(Outcome::Aborted);
            }
            if self.faults.fire(site::SAT_CONFLICT_STORM) {
                return Err(Outcome::BacktrackLimit);
            }
        }
        Ok(())
    }

    /// Recursive DFS split. On return the solver state is exactly as on
    /// entry (every pushed level popped). Errors abort the whole cube run.
    fn split(&mut self, depth: u32) -> Result<(), Outcome> {
        self.poll()?;
        if self.model.is_some() {
            return Ok(());
        }
        let free = self.solver.num_vars() - self.solver.assigned_count();
        if depth == 0 || free <= self.options.cutoff as usize {
            self.cubes.push(self.path.clone());
            return Ok(());
        }

        // Failed-literal forcing loop: probing can force literals, which
        // changes the propagation landscape, so re-scan until it settles
        // (bounded by the number of variables).
        let mut forced_levels = 0u32;
        let branch = loop {
            match self.pick_branch_var(&mut forced_levels)? {
                PickResult::Refuted => {
                    self.refuted += 1;
                    for _ in 0..forced_levels {
                        self.solver.pop_probe();
                        self.path.pop();
                    }
                    return Ok(());
                }
                PickResult::Saturated => {
                    // Everything assigned or no candidate left to split on:
                    // emit the node as a cube (or take the full model).
                    if self.solver.assigned_count() == self.solver.num_vars() {
                        self.model = Some(self.solver.full_model());
                    } else {
                        self.cubes.push(self.path.clone());
                    }
                    for _ in 0..forced_levels {
                        self.solver.pop_probe();
                        self.path.pop();
                    }
                    return Ok(());
                }
                PickResult::Forced => continue,
                PickResult::Branch(var) => break var,
            }
        };

        for lit in [Lit::positive(branch), Lit::negative(branch)] {
            match self
                .solver
                .probe_decide(lit)
                .map_err(|_| Outcome::Aborted)?
            {
                Some(_) => {
                    self.path.push(lit);
                    let r = self.split(depth - 1);
                    self.path.pop();
                    self.solver.pop_probe();
                    r?;
                }
                None => {
                    // This polarity is dead at this node; the sibling
                    // branch covers the remaining space on its own.
                    self.refuted += 1;
                }
            }
        }
        for _ in 0..forced_levels {
            self.solver.pop_probe();
            self.path.pop();
        }
        Ok(())
    }

    fn pick_branch_var(&mut self, forced_levels: &mut u32) -> Result<PickResult, Outcome> {
        // Top-K unassigned candidates by static weight, index tie-break.
        let k = self.options.candidates.max(1) as usize;
        let mut candidates: Vec<u32> = (0..self.solver.num_vars() as u32)
            .filter(|&v| self.solver.var_unassigned(v as usize))
            .collect();
        if candidates.is_empty() {
            return Ok(PickResult::Saturated);
        }
        candidates.sort_by(|&a, &b| {
            self.weights[b as usize]
                .partial_cmp(&self.weights[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        candidates.truncate(k);

        let mut best: Option<(f64, u32)> = None;
        for &v in &candidates {
            if !self.solver.var_unassigned(v as usize) {
                // A forced literal from an earlier probe assigned it.
                continue;
            }
            let var = Var::new(v as usize);
            let pos = self
                .solver
                .probe_decide(Lit::positive(var))
                .map_err(|_| Outcome::Aborted)?;
            if let Some(n) = pos {
                self.solver.pop_probe();
                let neg = self
                    .solver
                    .probe_decide(Lit::negative(var))
                    .map_err(|_| Outcome::Aborted)?;
                match neg {
                    Some(m) => {
                        self.solver.pop_probe();
                        let score = (n as f64) * (m as f64) + (n + m) as f64;
                        let better = match best {
                            None => true,
                            Some((s, bv)) => score > s || (score == s && v < bv),
                        };
                        if better {
                            best = Some((score, v));
                        }
                    }
                    None => {
                        // var=false conflicts: var must be true here.
                        match self
                            .solver
                            .probe_decide(Lit::positive(var))
                            .map_err(|_| Outcome::Aborted)?
                        {
                            Some(_) => {
                                self.path.push(Lit::positive(var));
                                *forced_levels += 1;
                                self.forced += 1;
                                return Ok(PickResult::Forced);
                            }
                            None => return Ok(PickResult::Refuted),
                        }
                    }
                }
            } else {
                // var=true conflicts: var must be false here.
                match self
                    .solver
                    .probe_decide(Lit::negative(var))
                    .map_err(|_| Outcome::Aborted)?
                {
                    Some(_) => {
                        self.path.push(Lit::negative(var));
                        *forced_levels += 1;
                        self.forced += 1;
                        return Ok(PickResult::Forced);
                    }
                    None => return Ok(PickResult::Refuted),
                }
            }
        }
        Ok(match best {
            Some((_, v)) => PickResult::Branch(Var::new(v as usize)),
            None => PickResult::Saturated,
        })
    }
}

enum PickResult {
    /// Both polarities of some variable fail: the node is unsat.
    Refuted,
    /// A failed literal was forced; re-scan candidates.
    Forced,
    /// Split on this variable.
    Branch(Var),
    /// Nothing left to split on.
    Saturated,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let var = Var::new((i.unsigned_abs() - 1) as usize);
        Lit::with_polarity(var, i > 0)
    }

    fn chain(n: usize) -> CnfFormula {
        // x1 -> x2 -> ... -> xn plus a free tail of unconstrained pairs,
        // so the cuber has something non-trivial to split.
        let mut f = CnfFormula::new(2 * n);
        for i in 1..n {
            f.add_clause([lit(-(i as i32)), lit(i as i32 + 1)]);
        }
        for i in 0..n {
            f.add_clause([
                Lit::positive(Var::new(n + i)),
                Lit::negative(Var::new((n + i + 1) % (2 * n))),
                Lit::positive(Var::new(i)),
            ]);
        }
        f
    }

    #[test]
    fn cubes_are_deterministic() {
        let f = chain(24);
        let opts = CubeOptions {
            depth: 3,
            cutoff: 4,
            candidates: 8,
        };
        let a = cube_formula(&f, &opts, &CancelToken::never(), &Faults::none()).unwrap();
        let b = cube_formula(&f, &opts, &CancelToken::never(), &Faults::none()).unwrap();
        assert_eq!(a.cubes, b.cubes);
        assert!(a.decided.is_none());
        assert!(!a.cubes.is_empty());
        assert!(a.cubes.len() <= 1 << 3);
    }

    #[test]
    fn cube_depth_zero_yields_single_empty_cube() {
        let f = chain(8);
        let opts = CubeOptions {
            depth: 0,
            cutoff: 0,
            candidates: 4,
        };
        let set = cube_formula(&f, &opts, &CancelToken::never(), &Faults::none()).unwrap();
        assert_eq!(set.cubes, vec![Vec::<Lit>::new()]);
    }

    #[test]
    fn root_conflict_is_decided_unsat() {
        let mut f = CnfFormula::new(2);
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1)]);
        let set = cube_formula(
            &f,
            &CubeOptions::default(),
            &CancelToken::never(),
            &Faults::none(),
        )
        .unwrap();
        assert_eq!(set.decided, Some(Outcome::Unsatisfiable));
    }

    #[test]
    fn cancelled_token_aborts_cubing() {
        let f = chain(24);
        let token = CancelToken::new();
        token.cancel();
        let err = cube_formula(
            &f,
            &CubeOptions {
                depth: 4,
                cutoff: 0,
                candidates: 8,
            },
            &token,
            &Faults::none(),
        )
        .unwrap_err();
        assert_eq!(err, Outcome::Aborted);
    }
}
