//! The conquer stage: solve the cubes concurrently on a
//! [`modsyn_par::WorkerPool`] and aggregate the per-cube verdicts into one
//! deterministic [`Outcome`].
//!
//! # Determinism contract
//!
//! The aggregate verdict, the model, and the reported statistics are a
//! pure function of (formula, options) — independent of `jobs`, thread
//! scheduling, and cancellation timing:
//!
//! * the cube list is deterministic (serial lookahead, see [`crate::cube`]);
//! * each cube is solved by a deterministic serial CDCL under its own
//!   child cancel token;
//! * the winner is the **lowest-index satisfiable cube**. A cube that
//!   finds a model cancels only *higher*-index cubes, so a lower-index
//!   cube can never be robbed of a SAT verdict by scheduling — the
//!   minimal SAT index (and hence the model) is schedule-invariant;
//! * aggregated statistics sum the cuber's probes plus the cubes up to
//!   and including the winner (all of which always run uncancelled), or
//!   every cube when none is satisfiable.
//!
//! All-UNSAT aggregates to [`Outcome::Unsatisfiable`]; an uncancelled
//! cube that hit its conflict budget taints the aggregate to
//! [`Outcome::BacktrackLimit`] (the formula stays undecided).

use std::sync::{Arc, Mutex};

use modsyn_fault::{site, Faults};
use modsyn_obs::Tracer;
use modsyn_par::{available_jobs, CancelToken, WorkerPool};
use modsyn_sat::{CnfFormula, Outcome, SolverStats};

use crate::cube::{cube_formula, CubeOptions, CubeSet};

/// Options for a cube-and-conquer solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CncOptions {
    /// Cube shape (depth / cutoff / candidate pool).
    pub cube: CubeOptions,
    /// Worker threads for the conquer stage; `0` means
    /// [`available_jobs`], `1` solves the cubes serially in index order.
    pub jobs: usize,
    /// Per-cube conflict budget ([`Outcome::BacktrackLimit`] when an
    /// uncancelled cube exhausts it). The cubes partition the search
    /// space, so a per-cube budget is the natural analogue of the serial
    /// engines' backtrack limit.
    pub max_conflicts: Option<u64>,
    /// Per-cube decision budget.
    pub max_decisions: Option<u64>,
}

/// Result of [`solve_cnc`].
#[derive(Debug, Clone)]
pub struct CncResult {
    /// The aggregate verdict (see the module docs for the contract).
    pub outcome: Outcome,
    /// Deterministic aggregate statistics: cuber probes plus the cubes up
    /// to and including the winner (or all cubes when none is SAT).
    pub stats: SolverStats,
    /// Cubes handed to the conquer stage.
    pub cubes_spawned: usize,
    /// Cubes refuted (UNSAT under their assumptions), including branches
    /// the cuber refuted by lookahead alone.
    pub cubes_refuted: u64,
    /// Index of the winning (satisfiable) cube, if any.
    pub winner: Option<usize>,
}

fn solve_one_cube(
    formula: &CnfFormula,
    options: &CncOptions,
    cube: &[modsyn_sat::Lit],
    cancel: CancelToken,
    faults: Faults,
) -> (Outcome, SolverStats) {
    let mut solver = crate::cdcl::Cdcl::new(
        formula,
        crate::cdcl::CdclOptions {
            max_conflicts: options.max_conflicts,
            max_decisions: options.max_decisions,
        },
    )
    .with_cancel(cancel)
    .with_faults(faults);
    let outcome = solver.solve_with_assumptions(cube);
    (outcome, solver.stats())
}

/// Aggregates per-cube outcomes per the determinism contract.
fn aggregate(
    cube_set: &CubeSet,
    results: Vec<(Outcome, SolverStats)>,
    mut stats: SolverStats,
) -> CncResult {
    let winner = results.iter().position(|(outcome, _)| outcome.is_sat());
    let mut refuted = cube_set.refuted_branches;
    let mut limit_hit = false;
    let mut decision_hit = false;
    let mut aborted = false;
    let considered = winner.map_or(results.len(), |w| w + 1);
    for (outcome, s) in &results[..considered] {
        stats = sum_stats(stats, *s);
        match outcome {
            Outcome::Unsatisfiable => refuted += 1,
            Outcome::BacktrackLimit => limit_hit = true,
            Outcome::DecisionLimit => decision_hit = true,
            Outcome::Aborted => aborted = true,
            Outcome::Satisfiable(_) => {}
        }
    }
    let outcome = match winner {
        Some(w) => results
            .into_iter()
            .nth(w)
            .map(|(o, _)| o)
            .expect("winner index in range"),
        None => {
            if aborted {
                Outcome::Aborted
            } else if limit_hit {
                Outcome::BacktrackLimit
            } else if decision_hit {
                Outcome::DecisionLimit
            } else {
                Outcome::Unsatisfiable
            }
        }
    };
    CncResult {
        outcome,
        stats,
        cubes_spawned: cube_set.cubes.len(),
        cubes_refuted: refuted,
        winner,
    }
}

fn sum_stats(mut a: SolverStats, b: SolverStats) -> SolverStats {
    a.decisions += b.decisions;
    a.propagations += b.propagations;
    a.backtracks += b.backtracks;
    a.conflicts += b.conflicts;
    a.learned_clauses += b.learned_clauses;
    a.learned_literals += b.learned_literals;
    a.restarts += b.restarts;
    a.peak_clauses = a.peak_clauses.max(b.peak_clauses);
    a.max_level = a.max_level.max(b.max_level);
    a
}

/// Cube-and-conquer solve: lookahead cubing, then concurrent conquering
/// with early cancellation of cubes a lower-index SAT supersedes.
pub fn solve_cnc(
    formula: &CnfFormula,
    options: &CncOptions,
    cancel: &CancelToken,
    faults: &Faults,
) -> CncResult {
    solve_cnc_traced(formula, options, cancel, faults, &Tracer::disabled())
}

/// [`solve_cnc`] under a `sat.solve` span (`engine=cnc`) with aggregate
/// counters, `cnc_cubes` histogram samples, and fault-site flight events.
pub fn solve_cnc_traced(
    formula: &CnfFormula,
    options: &CncOptions,
    cancel: &CancelToken,
    faults: &Faults,
    tracer: &Tracer,
) -> CncResult {
    if !tracer.is_observed() {
        return solve_cnc_inner(formula, options, cancel, faults);
    }
    let _span = tracer.span("sat.solve");
    let _flight = tracer.flight_span("sat.solve");
    tracer.note("engine", "cnc");
    tracer.gauge("vars", formula.num_vars() as f64);
    tracer.gauge("clauses", formula.clause_count() as f64);
    let fault_sites = [site::SAT_ABORT, site::SAT_CONFLICT_STORM];
    let injected_before = fault_sites.map(|at| faults.injected_at(at));
    let result = solve_cnc_inner(formula, options, cancel, faults);
    for (at, before) in fault_sites.into_iter().zip(injected_before) {
        let fired = faults.injected_at(at).saturating_sub(before);
        if fired > 0 {
            tracer.flight_event(modsyn_obs::FlightKind::Fault, at, fired);
        }
    }
    let s = result.stats;
    tracer.record_hist("sat_conflicts", s.conflicts);
    tracer.record_hist("sat_decisions", s.decisions);
    tracer.record_hist("cnc_cubes", result.cubes_spawned as u64);
    tracer.counter("decisions", s.decisions);
    tracer.counter("propagations", s.propagations);
    tracer.counter("backtracks", s.backtracks);
    tracer.counter("conflicts", s.conflicts);
    tracer.counter("learned_clauses", s.learned_clauses);
    tracer.counter("learned_literals", s.learned_literals);
    tracer.counter("restarts", s.restarts);
    tracer.counter("cubes_spawned", result.cubes_spawned as u64);
    tracer.counter("cubes_refuted", result.cubes_refuted);
    tracer.gauge("peak_clauses", s.peak_clauses as f64);
    tracer.gauge("max_level", s.max_level as f64);
    if let Some(w) = result.winner {
        tracer.gauge("winner_cube", w as f64);
    }
    tracer.note(
        "outcome",
        match &result.outcome {
            Outcome::Satisfiable(_) => "sat",
            Outcome::Unsatisfiable => "unsat",
            Outcome::BacktrackLimit => "backtrack-limit",
            Outcome::DecisionLimit => "decision-limit",
            Outcome::Aborted => "aborted",
        },
    );
    result
}

fn solve_cnc_inner(
    formula: &CnfFormula,
    options: &CncOptions,
    cancel: &CancelToken,
    faults: &Faults,
) -> CncResult {
    let cube_set = match cube_formula(formula, &options.cube, cancel, faults) {
        Ok(set) => set,
        Err(outcome) => {
            return CncResult {
                outcome,
                stats: SolverStats::default(),
                cubes_spawned: 0,
                cubes_refuted: 0,
                winner: None,
            }
        }
    };
    let cuber_stats = SolverStats {
        propagations: cube_set.propagations,
        ..SolverStats::default()
    };
    if let Some(outcome) = cube_set.decided.clone() {
        return CncResult {
            outcome,
            stats: cuber_stats,
            cubes_spawned: 0,
            cubes_refuted: cube_set.refuted_branches,
            winner: None,
        };
    }

    let jobs = if options.jobs == 0 {
        available_jobs()
    } else {
        options.jobs
    };
    let jobs = jobs.min(cube_set.cubes.len()).max(1);

    if jobs == 1 {
        // Serial conquer in index order; stopping at the first SAT cube is
        // exactly the lowest-index-winner rule.
        let mut results = Vec::with_capacity(cube_set.cubes.len());
        for cube in &cube_set.cubes {
            let r = solve_one_cube(formula, options, cube, cancel.clone(), faults.clone());
            let sat = r.0.is_sat();
            results.push(r);
            if sat {
                break;
            }
        }
        return aggregate(&cube_set, results, cuber_stats);
    }

    // Parallel conquer: per-cube child tokens; a SAT cube cancels every
    // higher-index cube the moment it finishes.
    let tokens: Arc<Vec<CancelToken>> =
        Arc::new(cube_set.cubes.iter().map(|_| cancel.child()).collect());
    let first_sat: Arc<Mutex<Option<usize>>> = Arc::new(Mutex::new(None));
    let shared = Arc::new(formula.clone());
    let pool = WorkerPool::new(jobs);
    let handles: Vec<_> = cube_set
        .cubes
        .iter()
        .enumerate()
        .map(|(i, cube)| {
            let formula = Arc::clone(&shared);
            let options = *options;
            let cube = cube.clone();
            let tokens = Arc::clone(&tokens);
            let first_sat = Arc::clone(&first_sat);
            let faults = faults.clone();
            pool.submit(&format!("cnc-cube-{i}"), move || {
                let token = tokens[i].clone();
                let r = solve_one_cube(&formula, &options, &cube, token, faults);
                if r.0.is_sat() {
                    let mut lock = first_sat.lock().expect("first-sat lock");
                    let supersedes = lock.is_none_or(|w| i < w);
                    if supersedes {
                        *lock = Some(i);
                        for t in tokens.iter().skip(i + 1) {
                            t.cancel();
                        }
                    }
                }
                r
            })
        })
        .collect();
    let results: Vec<(Outcome, SolverStats)> = handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(r) => r,
            // A worker panic (or an injected pool fault) loses that cube's
            // verdict; treat it as an abort of that cube.
            Err(_) => (Outcome::Aborted, SolverStats::default()),
        })
        .collect();
    aggregate(&cube_set, results, cuber_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_sat::{solve_exhaustive, Lit, Var};

    fn lit(i: i32) -> Lit {
        let var = Var::new((i.unsigned_abs() - 1) as usize);
        Lit::with_polarity(var, i > 0)
    }

    /// `n` pigeons into `n-1` holes (UNSAT).
    fn pigeonhole(n: usize) -> CnfFormula {
        let holes = n - 1;
        let mut f = CnfFormula::new(n * holes);
        let v = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..n {
            f.add_clause((0..holes).map(|h| Lit::positive(v(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..n {
                for p2 in p1 + 1..n {
                    f.add_clause([Lit::negative(v(p1, h)), Lit::negative(v(p2, h))]);
                }
            }
        }
        f
    }

    fn opts(depth: u32, jobs: usize) -> CncOptions {
        CncOptions {
            cube: CubeOptions {
                depth,
                cutoff: 0,
                candidates: 8,
            },
            jobs,
            max_conflicts: None,
            max_decisions: None,
        }
    }

    #[test]
    fn unsat_aggregates_across_jobs() {
        let f = pigeonhole(6);
        for jobs in [1, 4] {
            let r = solve_cnc(&f, &opts(3, jobs), &CancelToken::never(), &Faults::none());
            assert_eq!(r.outcome, Outcome::Unsatisfiable, "jobs={jobs}");
        }
    }

    #[test]
    fn verdict_model_and_stats_identical_across_jobs() {
        let mut f = CnfFormula::new(30);
        // A satisfiable chain of implications with some slack.
        for i in 1..30 {
            f.add_clause([lit(-i), lit(i + 1)]);
        }
        f.add_clause([lit(5), lit(12), lit(20)]);
        let serial = solve_cnc(&f, &opts(4, 1), &CancelToken::never(), &Faults::none());
        let parallel = solve_cnc(&f, &opts(4, 4), &CancelToken::never(), &Faults::none());
        assert!(serial.outcome.is_sat());
        assert_eq!(
            serial.outcome.model().unwrap().as_slice(),
            parallel.outcome.model().unwrap().as_slice()
        );
        assert_eq!(serial.winner, parallel.winner);
        assert_eq!(serial.stats, parallel.stats);
        assert_eq!(serial.cubes_spawned, parallel.cubes_spawned);
    }

    #[test]
    fn agrees_with_exhaustive_on_small_random_cnfs() {
        let mut state = 0xc0ffee_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for round in 0..150 {
            let num_vars = 4 + (next() % 8) as usize;
            let num_clauses = (next() % 30) as usize;
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 4) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new((next() % num_vars as u64) as usize);
                        Lit::with_polarity(v, next() & 1 == 0)
                    })
                    .collect();
                f.add_clause(lits);
            }
            let expected = solve_exhaustive(&f).is_sat();
            let r = solve_cnc(&f, &opts(2, 2), &CancelToken::never(), &Faults::none());
            match r.outcome {
                Outcome::Satisfiable(ref m) => {
                    assert!(expected, "round {round}: cnc sat, exhaustive unsat");
                    assert!(m.check(&f));
                }
                Outcome::Unsatisfiable => {
                    assert!(!expected, "round {round}: cnc unsat, exhaustive sat")
                }
                ref other => panic!("round {round}: undecided tiny formula: {other:?}"),
            }
        }
    }

    #[test]
    fn per_cube_conflict_budget_surfaces_as_backtrack_limit() {
        let f = pigeonhole(8);
        let mut o = opts(1, 2);
        o.max_conflicts = Some(2);
        let r = solve_cnc(&f, &o, &CancelToken::never(), &Faults::none());
        assert_eq!(r.outcome, Outcome::BacktrackLimit);
    }

    #[test]
    fn cancelled_parent_token_aborts() {
        let f = pigeonhole(8);
        let token = CancelToken::new();
        token.cancel();
        let r = solve_cnc(&f, &opts(2, 2), &token, &Faults::none());
        assert_eq!(r.outcome, Outcome::Aborted);
    }
}
