//! Structural validation of STGs.

use crate::{Polarity, Stg, StgError};

/// Structural facts about an STG gathered by [`Stg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StgReport {
    /// Signals with unbalanced rise/fall transition counts. Balanced counts
    /// are necessary (not sufficient) for consistency on live cyclic STGs.
    pub unbalanced_signals: Vec<String>,
    /// Signals with no transitions at all.
    pub silent_signals: Vec<String>,
    /// Whether the net passed basic Petri-net validation.
    pub net_ok: bool,
}

impl StgReport {
    /// Whether no problems were found.
    pub fn is_clean(&self) -> bool {
        self.unbalanced_signals.is_empty() && self.silent_signals.is_empty() && self.net_ok
    }
}

impl Stg {
    /// Checks structural sanity: the net validates, every signal has
    /// transitions, and each signal has as many rising as falling
    /// transitions.
    ///
    /// # Errors
    ///
    /// Returns the first problem found as an [`StgError`]; call
    /// [`Stg::validation_report`] for a full listing instead.
    pub fn validate(&self) -> Result<(), StgError> {
        let report = self.validation_report();
        if !report.net_ok {
            self.net().validate()?;
        }
        if let Some(name) = report.silent_signals.first() {
            return Err(StgError::NoTransitions {
                signal: name.clone(),
            });
        }
        if let Some(name) = report.unbalanced_signals.first() {
            return Err(StgError::Parse {
                line: 0,
                message: format!("signal {name:?} has unbalanced rise/fall transitions"),
            });
        }
        Ok(())
    }

    /// Gathers all structural problems without failing fast.
    pub fn validation_report(&self) -> StgReport {
        let mut unbalanced = Vec::new();
        let mut silent = Vec::new();
        for s in self.signal_ids() {
            let ts = self.transitions_of(s);
            if ts.is_empty() {
                silent.push(self.signal(s).name().to_string());
                continue;
            }
            let rises = ts
                .iter()
                .filter(|&&t| self.label(t).is_some_and(|l| l.polarity == Polarity::Rise))
                .count();
            if rises * 2 != ts.len() {
                unbalanced.push(self.signal(s).name().to_string());
            }
        }
        StgReport {
            unbalanced_signals: unbalanced,
            silent_signals: silent,
            net_ok: self.net().validate().is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_g, SignalKind, Stg, StgError};

    #[test]
    fn clean_stg_validates() {
        let stg = parse_g(
            ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        stg.validate().unwrap();
        assert!(stg.validation_report().is_clean());
    }

    #[test]
    fn unbalanced_signal_is_flagged() {
        let stg = parse_g(
            ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+/2\na+/2 b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let report = stg.validation_report();
        assert_eq!(report.unbalanced_signals, vec!["a".to_string()]);
        assert!(matches!(stg.validate(), Err(StgError::Parse { .. })));
    }

    #[test]
    fn silent_signal_is_flagged() {
        let mut stg = Stg::new("s");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        stg.add_signal("quiet", SignalKind::Output).unwrap();
        let t1 = stg.add_transition(a, crate::Polarity::Rise);
        let t2 = stg.add_transition(a, crate::Polarity::Fall);
        stg.arc(t1, t2).unwrap();
        let p = stg.arc(t2, t1).unwrap();
        stg.set_tokens(p, 1).unwrap();
        let report = stg.validation_report();
        assert_eq!(report.silent_signals, vec!["quiet".to_string()]);
    }
}
