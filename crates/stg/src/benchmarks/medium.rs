//! The mid-size Table-1 benchmarks (~14–56 states).

use crate::{Frag, Polarity, SignalKind, Stg, StgBuilder};

fn built(stg: Result<Stg, crate::StgError>) -> Stg {
    stg.expect("benchmark construction is static and well-formed")
}

/// `wrdata` stand-in: 4 signals, ~16 states.
pub fn wrdata() -> Stg {
    let mut b = StgBuilder::new("wrdata");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let w = b.signal("we", SignalKind::Output).expect("fresh");
    let d = b.signal("dack", SignalKind::Output).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par([
            Frag::seq([Frag::rise(w), Frag::fall(w)]),
            Frag::seq([Frag::rise(d), Frag::fall(d)]),
        ]),
        Frag::rise(w),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(w),
        Frag::fall(a),
    ])))
}

/// `pa` stand-in: 4 signals, ~18 states.
pub fn pa() -> Stg {
    let mut b = StgBuilder::new("pa");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("a", SignalKind::Output).expect("fresh");
    let y = b.signal("b", SignalKind::Output).expect("fresh");
    let z = b.signal("c", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::rise(a),
        Frag::par([
            Frag::seq([Frag::rise(y), Frag::fall(y)]),
            Frag::seq([Frag::rise(z), Frag::fall(z)]),
        ]),
        Frag::fall(a),
        Frag::fall(r),
        Frag::rise(y),
        Frag::rise(z),
        Frag::fall(y),
        Frag::fall(z),
    ])))
}

/// `sbuf-read-ctl` stand-in: 6 signals, ~14 states.
pub fn sbuf_read_ctl() -> Stg {
    let mut b = StgBuilder::new("sbuf-read-ctl");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let ramdone = b.signal("ramdone", SignalKind::Input).expect("fresh");
    let pr = b.signal("prbar", SignalKind::Output).expect("fresh");
    let pa = b.signal("pack", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let busy = b.signal("busy", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(pr),
        Frag::rise(pa),
        Frag::fall(pr),
        Frag::fall(pa),
        Frag::par([Frag::rise(busy), Frag::rise(ramdone)]),
        Frag::rise(ack),
        Frag::fall(req),
        Frag::rise(pr),
        Frag::fall(pr),
        Frag::par([Frag::fall(busy), Frag::fall(ramdone)]),
        Frag::fall(ack),
    ])))
}

/// `atod` stand-in: 6 signals, ~20 states.
pub fn atod() -> Stg {
    let mut b = StgBuilder::new("atod");
    let go = b.signal("go", SignalKind::Input).expect("fresh");
    let cmp = b.signal("cmp", SignalKind::Input).expect("fresh");
    let lt = b.signal("lt", SignalKind::Output).expect("fresh");
    let ld = b.signal("ld", SignalKind::Output).expect("fresh");
    let q = b.signal("q", SignalKind::Output).expect("fresh");
    let done = b.signal("done", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(go),
        Frag::rise(lt),
        Frag::rise(cmp),
        Frag::par([
            Frag::seq([Frag::rise(ld), Frag::fall(ld)]),
            Frag::seq([Frag::fall(lt), Frag::rise(q)]),
        ]),
        Frag::fall(cmp),
        Frag::rise(done),
        Frag::par([Frag::fall(go), Frag::fall(q)]),
        Frag::rise(ld),
        Frag::fall(ld),
        Frag::fall(done),
    ])))
}

/// `sbuf-send-ctl` stand-in: 6 signals, ~20 states.
pub fn sbuf_send_ctl() -> Stg {
    let mut b = StgBuilder::new("sbuf-send-ctl");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let done = b.signal("done", SignalKind::Input).expect("fresh");
    let sp = b.signal("sendpkt", SignalKind::Output).expect("fresh");
    let la = b.signal("latch", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let idle = b.signal("idle", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(la),
        Frag::par([
            Frag::seq([Frag::rise(sp), Frag::rise(done), Frag::fall(sp)]),
            Frag::seq([Frag::fall(la), Frag::rise(idle)]),
        ]),
        Frag::rise(ack),
        Frag::par([Frag::fall(req), Frag::fall(done), Frag::fall(idle)]),
        Frag::fall(ack),
    ])))
}

/// `sbuf-send-pkt2` stand-in: 6 signals, ~21 states.
pub fn sbuf_send_pkt2() -> Stg {
    let mut b = StgBuilder::new("sbuf-send-pkt2");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let dack = b.signal("dack", SignalKind::Input).expect("fresh");
    let tx = b.signal("tx", SignalKind::Output).expect("fresh");
    let dreq = b.signal("dreq", SignalKind::Output).expect("fresh");
    let shift = b.signal("shift", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(dreq),
        Frag::rise(dack),
        Frag::par([
            Frag::seq([Frag::rise(tx), Frag::rise(shift), Frag::fall(shift)]),
            Frag::seq([Frag::fall(dreq), Frag::fall(dack)]),
        ]),
        Frag::fall(tx),
        Frag::rise(shift),
        Frag::rise(ack),
        Frag::fall(req),
        Frag::fall(shift),
        Frag::fall(ack),
    ])))
}

/// `alloc-outbound` stand-in: 7 signals, ~17 states.
pub fn alloc_outbound() -> Stg {
    let mut b = StgBuilder::new("alloc-outbound");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let gnt = b.signal("gnt", SignalKind::Input).expect("fresh");
    let ar = b.signal("allocreq", SignalKind::Output).expect("fresh");
    let sv = b.signal("setvalid", SignalKind::Output).expect("fresh");
    let sd = b.signal("send", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let rel = b.signal("release", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(ar),
        Frag::rise(gnt),
        Frag::par([
            Frag::seq([Frag::rise(sv), Frag::fall(sv)]),
            Frag::seq([Frag::fall(ar), Frag::fall(gnt)]),
        ]),
        Frag::rise(sd),
        Frag::rise(ack),
        Frag::par([Frag::fall(req), Frag::fall(sd), Frag::rise(rel)]),
        Frag::fall(rel),
        Frag::fall(ack),
    ])))
}

/// `ram-read-sbuf` stand-in: 10 signals, ~36 states.
pub fn ram_read_sbuf() -> Stg {
    let mut b = StgBuilder::new("ram-read-sbuf");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let pr = b.signal("prechrg", SignalKind::Input).expect("fresh");
    let ra = b.signal("rasel", SignalKind::Output).expect("fresh");
    let rd = b.signal("rden", SignalKind::Output).expect("fresh");
    let wen = b.signal("wen", SignalKind::Output).expect("fresh");
    let lt = b.signal("latch", SignalKind::Output).expect("fresh");
    let vd = b.signal("valid", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let bs = b.signal("bufsel", SignalKind::Output).expect("fresh");
    let dn = b.signal("done", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(ra),
        Frag::par([
            Frag::seq([Frag::rise(rd), Frag::rise(lt), Frag::fall(rd)]),
            Frag::seq([Frag::rise(bs), Frag::rise(wen), Frag::fall(bs)]),
        ]),
        Frag::rise(vd),
        Frag::par([
            Frag::seq([Frag::fall(lt), Frag::fall(wen)]),
            Frag::seq([Frag::rise(pr), Frag::fall(ra)]),
        ]),
        Frag::rise(ack),
        Frag::rise(dn),
        Frag::par([Frag::fall(req), Frag::fall(pr), Frag::fall(vd)]),
        Frag::fall(ack),
        Frag::fall(dn),
        Frag::rise(dn),
        Frag::fall(dn),
    ])))
}

/// `pe-rcv-ifc-fc` stand-in: 8 signals, ~46 states, live safe free-choice
/// (an incoming packet is either consumed locally or forwarded).
pub fn pe_rcv_ifc_fc() -> Stg {
    let mut b = StgBuilder::new("pe-rcv-ifc-fc");
    let rcv = b.signal("rcv", SignalKind::Input).expect("fresh");
    let hdr = b.signal("hdr", SignalKind::Input).expect("fresh");
    let lo = b.signal("local", SignalKind::Output).expect("fresh");
    let la = b.signal("lack", SignalKind::Input).expect("fresh");
    let fw = b.signal("fwd", SignalKind::Output).expect("fresh");
    let fa = b.signal("fack", SignalKind::Input).expect("fresh");
    let st = b.signal("strobe", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(rcv),
        Frag::par([
            Frag::seq([Frag::rise(ack), Frag::fall(ack)]),
            Frag::rise(st),
        ]),
        Frag::rise(hdr),
        // The environment decides (input transitions head both branches).
        Frag::choice([
            // Consume locally (two beats).
            Frag::seq([
                Frag::rise(la),
                Frag::rise(lo),
                Frag::fall(la),
                Frag::fall(lo),
                Frag::rise(la),
                Frag::rise(lo),
                Frag::fall(la),
                Frag::fall(lo),
            ]),
            // Forward (two beats).
            Frag::seq([
                Frag::rise(fa),
                Frag::rise(fw),
                Frag::fall(fa),
                Frag::fall(fw),
                Frag::rise(fa),
                Frag::rise(fw),
                Frag::fall(fa),
                Frag::fall(fw),
            ]),
        ]),
        Frag::par([
            Frag::seq([Frag::fall(st), Frag::fall(hdr)]),
            Frag::seq([Frag::rise(ack), Frag::fall(rcv)]),
        ]),
        Frag::rise(st),
        Frag::fall(st),
        Frag::fall(ack),
    ])))
}

/// `nak-pa` stand-in: 9 signals, ~56 states, free-choice — the environment
/// either starts the transfer (`xack+`) or requests a negative acknowledge
/// (`nrq+`).
pub fn nak_pa() -> Stg {
    let mut b = StgBuilder::new("nak-pa");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let xack = b.signal("xack", SignalKind::Input).expect("fresh");
    let nrq = b.signal("nrq", SignalKind::Input).expect("fresh");
    let xfer = b.signal("xfer", SignalKind::Output).expect("fresh");
    let buf = b.signal("buf", SignalKind::Output).expect("fresh");
    let wr = b.signal("wr", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let nak = b.signal("nak", SignalKind::Output).expect("fresh");
    let done = b.signal("done", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::choice([
            // Accept: run the transfer with double-buffered writes.
            Frag::seq([
                Frag::rise(xack),
                Frag::rise(xfer),
                Frag::par([
                    Frag::fall(xack),
                    Frag::seq([
                        Frag::rise(buf),
                        Frag::rise(wr),
                        Frag::fall(buf),
                        Frag::fall(wr),
                        Frag::rise(buf),
                        Frag::rise(wr),
                        Frag::fall(buf),
                        Frag::fall(wr),
                    ]),
                ]),
                Frag::fall(xfer),
                Frag::rise(ack),
                Frag::fall(ack),
            ]),
            // Reject: pulse nak.
            Frag::seq([
                Frag::rise(nrq),
                Frag::rise(nak),
                Frag::fall(nrq),
                Frag::fall(nak),
            ]),
        ]),
        Frag::par([
            Frag::seq([Frag::rise(done), Frag::fall(done)]),
            Frag::fall(req),
        ]),
        Frag::rise(done),
        Frag::fall(done),
    ])))
}

/// `alex-nonfc` stand-in: 6 signals, ~24 states, **non-free-choice**
/// (an arbiter place shared between two request paths — the structure the
/// Lavagno flow rejects).
pub fn alex_nonfc() -> Stg {
    let mut stg = Stg::new("alex-nonfc");
    let r1 = stg.add_signal("r1", SignalKind::Input).expect("fresh");
    let r2 = stg.add_signal("r2", SignalKind::Input).expect("fresh");
    let g1 = stg.add_signal("g1", SignalKind::Output).expect("fresh");
    let g2 = stg.add_signal("g2", SignalKind::Output).expect("fresh");
    let d1 = stg.add_signal("d1", SignalKind::Output).expect("fresh");
    let d2 = stg.add_signal("d2", SignalKind::Output).expect("fresh");

    // Two client cycles plus a shared mutual-exclusion place. Each request
    // transition r+ consumes the mutex AND its own idle place, so the mutex
    // place's fan-outs do not have singleton fan-ins: non-free-choice by
    // construction. The competitors are inputs (the environment serialises
    // its requests), keeping the graph semi-modular for outputs.
    let mutex = stg.add_place("mutex");
    stg.set_tokens(mutex, 1).expect("in range");

    let client = |stg: &mut Stg, r, g, d| {
        let rp = stg.add_transition(r, Polarity::Rise);
        let gp = stg.add_transition(g, Polarity::Rise);
        let dp = stg.add_transition(d, Polarity::Rise);
        let dm = stg.add_transition(d, Polarity::Fall);
        let rm = stg.add_transition(r, Polarity::Fall);
        let gm = stg.add_transition(g, Polarity::Fall);
        // r+ g+ d+ d- r- g-: the d pulse inside the grant window repeats
        // the code after g+, creating a CSC conflict.
        stg.arc(rp, gp).expect("fresh arc");
        stg.arc(gp, dp).expect("fresh arc");
        stg.arc(dp, dm).expect("fresh arc");
        stg.arc(dm, rm).expect("fresh arc");
        stg.arc(rm, gm).expect("fresh arc");
        let idle = stg.arc(gm, rp).expect("fresh arc");
        stg.set_tokens(idle, 1).expect("in range");
        // Critical section: the request takes the mutex; the data pulse's
        // completion returns it, so the release handshake (r-, g-) of one
        // client overlaps the other client's critical section.
        stg.arc_from_place(mutex, rp).expect("fresh arc");
        stg.arc_into_place(dm, mutex).expect("fresh arc");
    };
    client(&mut stg, r1, g1, d1);
    client(&mut stg, r2, g2, d2);
    stg
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::{NetClass, ReachabilityOptions};

    #[test]
    fn alex_nonfc_is_beyond_free_choice() {
        // The mutex place's fan-out {r1+, r2+} strictly contains each idle
        // place's singleton fan-out: nested conflicts, the classic
        // asymmetric-choice arbiter.
        let stg = alex_nonfc();
        assert_eq!(stg.net().classify(), NetClass::AsymmetricChoice);
        assert!(stg.net().structural_report().nested_choice_pairs >= 2);
    }

    #[test]
    fn choice_benchmarks_are_free_choice() {
        for stg in [pe_rcv_ifc_fc(), nak_pa()] {
            assert_eq!(stg.net().classify(), NetClass::FreeChoice, "{}", stg.name());
        }
    }

    #[test]
    fn marked_graph_benchmarks_have_no_choice() {
        for stg in [wrdata(), pa(), ram_read_sbuf()] {
            assert_eq!(
                stg.net().classify(),
                NetClass::MarkedGraph,
                "{}",
                stg.name()
            );
        }
    }

    #[test]
    fn medium_benchmarks_are_live_and_safe() {
        for stg in [
            wrdata(),
            pa(),
            sbuf_read_ctl(),
            atod(),
            sbuf_send_ctl(),
            sbuf_send_pkt2(),
            alloc_outbound(),
            ram_read_sbuf(),
            pe_rcv_ifc_fc(),
            nak_pa(),
            alex_nonfc(),
        ] {
            let g = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            assert!(g.is_safe(), "{}", stg.name());
            assert!(g.deadlocks().is_empty(), "{}", stg.name());
        }
    }
}
