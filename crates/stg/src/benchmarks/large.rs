//! The large Table-1 benchmarks (~58–302 states).
//!
//! These model master controllers dispatching several concurrent
//! sub-handshakes (the structure of the original `mr`/`mmu` memory
//! controllers): a master request forks into parallel resource handshakes
//! whose interleavings dominate the state count.

use crate::{Frag, SignalId, SignalKind, Stg, StgBuilder};

fn built(stg: Result<Stg, crate::StgError>) -> Stg {
    stg.expect("benchmark construction is static and well-formed")
}

/// One full four-phase handshake `p+ q+ p- q-`.
fn hs(p: SignalId, q: SignalId) -> Frag {
    Frag::seq([Frag::rise(p), Frag::rise(q), Frag::fall(p), Frag::fall(q)])
}

/// A double handshake `p+ q+ p- q- p+ q+ p- q-` — the second beat repeats
/// the first beat's codes with different excitation, the conflict motif
/// whose insertion room sits on the non-input `p` edges.
fn double_hs(p: SignalId, q: SignalId) -> Frag {
    Frag::seq([
        Frag::rise(p),
        Frag::rise(q),
        Frag::fall(p),
        Frag::fall(q),
        Frag::rise(p),
        Frag::rise(q),
        Frag::fall(p),
        Frag::fall(q),
    ])
}

/// `vbe4a` stand-in: 6 signals, ~58 states — two concurrent handshake pairs
/// run twice per master cycle.
pub fn vbe4a() -> Stg {
    let mut b = StgBuilder::new("vbe4a");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let x = b.signal("x", SignalKind::Output).expect("fresh");
    let y = b.signal("y", SignalKind::Input).expect("fresh");
    let z = b.signal("z", SignalKind::Output).expect("fresh");
    let w = b.signal("w", SignalKind::Input).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par([double_hs(x, y), double_hs(z, w)]),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ])))
}

/// `sbuf-ram-write` stand-in: 10 signals, ~58 states.
pub fn sbuf_ram_write() -> Stg {
    let mut b = StgBuilder::new("sbuf-ram-write");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let dack = b.signal("dack", SignalKind::Input).expect("fresh");
    let wsel = b.signal("wsel", SignalKind::Output).expect("fresh");
    let wen = b.signal("wen", SignalKind::Output).expect("fresh");
    let lt = b.signal("latch", SignalKind::Output).expect("fresh");
    let pr = b.signal("prechrg", SignalKind::Output).expect("fresh");
    let vd = b.signal("valid", SignalKind::Output).expect("fresh");
    let ack = b.signal("ack", SignalKind::Output).expect("fresh");
    let bs = b.signal("bufsel", SignalKind::Output).expect("fresh");
    let dn = b.signal("done", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(wsel),
        Frag::par([
            Frag::seq([Frag::rise(wen), Frag::rise(lt), Frag::fall(wen)]),
            Frag::seq([Frag::rise(bs), Frag::rise(dack), Frag::fall(bs)]),
        ]),
        Frag::rise(vd),
        Frag::par([
            Frag::seq([Frag::fall(lt), Frag::fall(dack)]),
            Frag::seq([Frag::rise(pr), Frag::fall(wsel)]),
        ]),
        Frag::rise(ack),
        Frag::rise(dn),
        Frag::par([Frag::fall(req), Frag::fall(pr), Frag::fall(vd)]),
        Frag::fall(ack),
        Frag::fall(dn),
        Frag::rise(dn),
        Frag::fall(dn),
    ])))
}

/// `mmu1` stand-in: 8 signals, ~82 states — a master forking into two full
/// resource handshakes plus a short third strand.
pub fn mmu1() -> Stg {
    let mut b = StgBuilder::new("mmu1");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let p1 = b.signal("p1", SignalKind::Output).expect("fresh");
    let q1 = b.signal("q1", SignalKind::Input).expect("fresh");
    let p2 = b.signal("p2", SignalKind::Output).expect("fresh");
    let q2 = b.signal("q2", SignalKind::Input).expect("fresh");
    let p3 = b.signal("p3", SignalKind::Output).expect("fresh");
    let q3 = b.signal("q3", SignalKind::Input).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par([
            hs(p1, q1),
            hs(p2, q2),
            Frag::seq([Frag::rise(p3), Frag::rise(q3)]),
        ]),
        Frag::fall(p3),
        Frag::fall(q3),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ])))
}

/// `mmu0` stand-in: 8 signals, ~174 states — like [`mmu1`] but the third
/// strand runs a double-pulse, deepening the interleaving.
pub fn mmu0() -> Stg {
    let mut b = StgBuilder::new("mmu0");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let p1 = b.signal("p1", SignalKind::Output).expect("fresh");
    let q1 = b.signal("q1", SignalKind::Input).expect("fresh");
    let p2 = b.signal("p2", SignalKind::Output).expect("fresh");
    let q2 = b.signal("q2", SignalKind::Input).expect("fresh");
    let p3 = b.signal("p3", SignalKind::Output).expect("fresh");
    let q3 = b.signal("q3", SignalKind::Input).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par([hs(p1, q1), hs(p2, q2), double_hs(p3, q3)]),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ])))
}

/// `mr1` stand-in: 8 signals, ~190 states — two resource strands of three
/// signals each, every signal cycling twice per master round.
pub fn mr1() -> Stg {
    let mut b = StgBuilder::new("mr1");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let p1 = b.signal("p1", SignalKind::Output).expect("fresh");
    let q1 = b.signal("q1", SignalKind::Input).expect("fresh");
    let s1 = b.signal("s1", SignalKind::Output).expect("fresh");
    let p2 = b.signal("p2", SignalKind::Output).expect("fresh");
    let q2 = b.signal("q2", SignalKind::Input).expect("fresh");
    let s2 = b.signal("s2", SignalKind::Output).expect("fresh");
    let strand = |p: SignalId, q: SignalId, s: SignalId| {
        Frag::seq([
            Frag::rise(p),
            Frag::rise(q),
            Frag::rise(s),
            Frag::fall(p),
            Frag::fall(q),
            Frag::fall(s),
            Frag::rise(p),
            Frag::rise(q),
            Frag::rise(s),
            Frag::fall(p),
            Frag::fall(q),
            Frag::fall(s),
        ])
    };
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par([strand(p1, q1, s1), strand(p2, q2, s2)]),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ])))
}

/// `mr0` stand-in: 11 signals, ~302 states — three resource strands of
/// three signals each under one master handshake.
pub fn mr0() -> Stg {
    let mut b = StgBuilder::new("mr0");
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let mut strands = Vec::new();
    for i in 1..=3 {
        let p = b
            .signal(format!("p{i}"), SignalKind::Output)
            .expect("fresh");
        let q = b.signal(format!("q{i}"), SignalKind::Input).expect("fresh");
        let s = b
            .signal(format!("s{i}"), SignalKind::Output)
            .expect("fresh");
        strands.push(Frag::seq([
            Frag::rise(p),
            Frag::rise(q),
            Frag::rise(s),
            Frag::fall(p),
            Frag::fall(q),
            Frag::fall(s),
        ]));
    }
    built(b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par(strands),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    fn states(stg: &Stg) -> usize {
        stg.net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len()
    }

    #[test]
    fn large_benchmarks_scale_as_designed() {
        let mr0 = states(&mr0());
        let mr1 = states(&mr1());
        let mmu0 = states(&mmu0());
        let mmu1 = states(&mmu1());
        assert!(mr0 > mr1, "mr0 {mr0} should exceed mr1 {mr1}");
        assert!(mmu0 > mmu1, "mmu0 {mmu0} should exceed mmu1 {mmu1}");
        assert!(mr0 > 200);
    }

    #[test]
    fn vbe4a_and_sbuf_ram_write_are_mid_double_digits() {
        assert!((29..=116).contains(&states(&vbe4a())));
        assert!((29..=116).contains(&states(&sbuf_ram_write())));
    }
}
