//! The small Table-1 benchmarks (up to ~16 states).

use crate::{Frag, SignalKind, Stg, StgBuilder};

fn built(stg: Result<Stg, crate::StgError>) -> Stg {
    stg.expect("benchmark construction is static and well-formed")
}

/// `vbe-ex1` stand-in: 2 signals, ~6 states.
///
/// The output pulses twice per input cycle — the smallest STG whose CSC
/// conflict is resolvable with exactly one state signal.
pub fn vbe_ex1() -> Stg {
    let mut b = StgBuilder::new("vbe-ex1");
    let a = b.signal("a", SignalKind::Input).expect("fresh");
    let y = b.signal("b", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(a),
        Frag::rise(y),
        Frag::fall(y),
        Frag::fall(a),
        Frag::rise(y),
        Frag::fall(y),
    ])))
}

/// `vbe-ex2` stand-in: 2 signals, ~8 states.
///
/// The output pulses three times per input cycle; the middle pulse
/// conflicts with both of its neighbours, forcing **two** state signals
/// (matching the paper's `vbe-ex2` row, which also gains two).
pub fn vbe_ex2() -> Stg {
    let mut b = StgBuilder::new("vbe-ex2");
    let a = b.signal("a", SignalKind::Input).expect("fresh");
    let y = b.signal("b", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(a),
        Frag::rise(y),
        Frag::fall(y),
        Frag::rise(y),
        Frag::fall(y),
        Frag::fall(a),
        Frag::rise(y),
        Frag::fall(y),
    ])))
}

/// `sendr-done` stand-in: 3 signals, ~7 states.
pub fn sendr_done() -> Stg {
    let mut b = StgBuilder::new("sendr-done");
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let d = b.signal("d", SignalKind::Output).expect("fresh");
    let done = b.signal("done", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(req),
        Frag::rise(d),
        Frag::fall(d),
        Frag::rise(done),
        Frag::fall(req),
        Frag::rise(d),
        Frag::fall(d),
        Frag::fall(done),
    ])))
}

/// `nousc-ser` stand-in: 3 signals, ~8 states, fully serial.
pub fn nousc_ser() -> Stg {
    let mut b = StgBuilder::new("nousc-ser");
    let a = b.signal("a", SignalKind::Input).expect("fresh");
    let y = b.signal("b", SignalKind::Output).expect("fresh");
    let z = b.signal("c", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(a),
        Frag::rise(y),
        Frag::fall(y),
        Frag::rise(z),
        Frag::fall(a),
        Frag::rise(y),
        Frag::fall(y),
        Frag::fall(z),
    ])))
}

/// `nouse` stand-in: 3 signals, ~12 states, concurrent output pulses.
pub fn nouse() -> Stg {
    let mut b = StgBuilder::new("nouse");
    let a = b.signal("a", SignalKind::Input).expect("fresh");
    let y = b.signal("b", SignalKind::Output).expect("fresh");
    let z = b.signal("c", SignalKind::Output).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(a),
        Frag::par([Frag::seq([Frag::rise(y), Frag::fall(y)]), Frag::rise(z)]),
        Frag::fall(a),
        Frag::fall(z),
        Frag::rise(y),
        Frag::fall(y),
    ])))
}

/// `fifo` stand-in: 4 signals, ~16 states — a single FIFO stage with the
/// downstream handshake overlapping the upstream release.
pub fn fifo() -> Stg {
    let mut b = StgBuilder::new("fifo");
    let r1 = b.signal("ri", SignalKind::Input).expect("fresh");
    let a1 = b.signal("ao", SignalKind::Output).expect("fresh");
    let r2 = b.signal("ro", SignalKind::Output).expect("fresh");
    let a2 = b.signal("ai", SignalKind::Input).expect("fresh");
    built(b.cycle(Frag::seq([
        Frag::rise(r1),
        Frag::par([
            Frag::seq([Frag::rise(a1), Frag::fall(r1)]),
            Frag::seq([
                Frag::rise(r2),
                Frag::rise(a2),
                Frag::fall(r2),
                Frag::fall(a2),
            ]),
        ]),
        Frag::fall(a1),
    ])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    fn states(stg: &Stg) -> usize {
        stg.net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len()
    }

    #[test]
    fn vbe_ex1_has_six_states() {
        assert_eq!(states(&vbe_ex1()), 6);
    }

    #[test]
    fn small_benchmarks_infer_initial_values() {
        for stg in [
            vbe_ex1(),
            vbe_ex2(),
            sendr_done(),
            nousc_ser(),
            nouse(),
            fifo(),
        ] {
            let values = stg.infer_initial_values().unwrap();
            assert_eq!(values.len(), stg.signal_count());
            // All benchmarks start with every signal low.
            assert!(values.iter().all(|&v| !v), "{}", stg.name());
        }
    }
}
