//! Parameterised benchmark families for scaling studies.
//!
//! Table 1 fixes each benchmark's size; these generators expose the size
//! knobs so the Criterion benches can sweep state-space growth: the
//! master-read family scales the number of concurrent resource strands
//! (state count grows as `(2·beats·3 + 1)^strands`), the pipeline family
//! scales depth with linear state growth.

use crate::{Frag, SignalId, SignalKind, Stg, StgBuilder};

/// A master controller forking into `strands` concurrent three-wire
/// resource strands, each cycling `beats` times per master round — the
/// generalisation of the `mr0`/`mr1` stand-ins (`mr0` = 3 strands × 1 beat,
/// `mr1` = 2 strands × 2 beats).
///
/// # Panics
///
/// Panics if `strands` or `beats` is zero, or if the signal count would
/// exceed the 64-signal code limit.
pub fn master_read(strands: usize, beats: usize) -> Stg {
    assert!(strands > 0 && beats > 0, "degenerate master_read");
    assert!(2 + strands * 3 <= 64, "too many signals");
    let mut b = StgBuilder::new(format!("master-read-{strands}x{beats}"));
    let r = b.signal("req", SignalKind::Input).expect("fresh");
    let a = b.signal("ack", SignalKind::Output).expect("fresh");
    let mut branches = Vec::with_capacity(strands);
    for i in 1..=strands {
        let p = b
            .signal(format!("p{i}"), SignalKind::Output)
            .expect("fresh");
        let q = b.signal(format!("q{i}"), SignalKind::Input).expect("fresh");
        let s = b
            .signal(format!("s{i}"), SignalKind::Output)
            .expect("fresh");
        let mut events = Vec::with_capacity(beats * 6);
        for _ in 0..beats {
            events.extend([
                Frag::rise(p),
                Frag::rise(q),
                Frag::rise(s),
                Frag::fall(p),
                Frag::fall(q),
                Frag::fall(s),
            ]);
        }
        branches.push(Frag::seq(events));
    }
    b.cycle(Frag::seq([
        Frag::rise(r),
        Frag::par(branches),
        Frag::rise(a),
        Frag::fall(r),
        Frag::fall(a),
    ]))
    .expect("static construction is well-formed")
}

/// A linear `stages`-deep pipeline controller: stage `i` handshakes with
/// stage `i+1` before releasing stage `i-1`; every stage's acknowledge
/// pulses twice per token, giving one CSC conflict per stage. State count
/// grows linearly with `stages`.
///
/// # Panics
///
/// Panics if `stages` is zero or the signal count would exceed 64.
pub fn pipeline(stages: usize) -> Stg {
    assert!(stages > 0, "degenerate pipeline");
    assert!(2 * stages < 64, "too many signals");
    let mut b = StgBuilder::new(format!("pipeline-{stages}"));
    let req = b.signal("req", SignalKind::Input).expect("fresh");
    let mut wires: Vec<(SignalId, SignalId)> = Vec::with_capacity(stages);
    for i in 0..stages {
        let r = b
            .signal(format!("r{i}"), SignalKind::Output)
            .expect("fresh");
        let a = b.signal(format!("a{i}"), SignalKind::Input).expect("fresh");
        wires.push((r, a));
    }
    // Token walks the stages front to back, then acknowledges ripple back.
    let mut events = vec![Frag::rise(req)];
    for &(r, a) in &wires {
        events.push(Frag::rise(r));
        events.push(Frag::rise(a));
    }
    events.push(Frag::fall(req));
    for &(r, a) in wires.iter().rev() {
        events.push(Frag::fall(r));
        events.push(Frag::fall(a));
        // Second pulse: the CSC-conflict motif per stage.
        events.push(Frag::rise(r));
        events.push(Frag::fall(r));
    }
    b.cycle(Frag::seq(events))
        .expect("static construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    fn states(stg: &Stg) -> usize {
        stg.net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len()
    }

    #[test]
    fn master_read_matches_its_closed_form() {
        // One strand of b beats contributes (6b + 1) interleaving slots.
        for (strands, beats) in [(1, 1), (2, 1), (3, 1), (2, 2)] {
            let stg = master_read(strands, beats);
            let expected = (6 * beats + 1).pow(strands as u32) + 3;
            assert_eq!(states(&stg), expected, "{strands}x{beats}");
        }
    }

    #[test]
    fn mr_family_members_agree_with_table_rows() {
        // mr0 = master_read(3, 1), mr1 = master_read(2, 2).
        assert_eq!(
            states(&master_read(3, 1)),
            states(&crate::benchmarks::mr0())
        );
        assert_eq!(
            states(&master_read(2, 2)),
            states(&crate::benchmarks::mr1())
        );
    }

    #[test]
    fn pipeline_grows_linearly() {
        // The sequential pipeline adds exactly six states per stage.
        assert_eq!(states(&pipeline(2)), 14);
        assert_eq!(states(&pipeline(3)), 20);
        assert_eq!(states(&pipeline(4)), 26);
        assert_eq!(states(&pipeline(8)), 50);
    }

    #[test]
    fn scalable_families_are_valid_stgs() {
        for stg in [master_read(2, 1), master_read(1, 3), pipeline(3)] {
            stg.validate().unwrap();
            let g = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap();
            assert!(g.is_safe());
            assert!(g.deadlocks().is_empty());
        }
    }
}
