//! The Table-1 benchmark suite.
//!
//! The paper evaluates on 23 STG benchmarks (the HP benchmarks plus
//! classics like `mr0`/`mmu0`). The original `.g` files are not
//! redistributable here, so each benchmark is a **synthetic stand-in**
//! constructed with the [`crate::StgBuilder`] DSL:
//!
//! * the *signal count* matches the paper's "initial no. of signal" column
//!   exactly,
//! * the *state count* lands in the same band as the paper's "initial no.
//!   of states" column (recorded per row in EXPERIMENTS.md),
//! * the *structure class* matches where the paper depends on it
//!   (`alex-nonfc` is non-free-choice; the rest are marked graphs or live
//!   safe free-choice nets),
//! * each has genuine CSC conflicts, so state-signal insertion is exercised
//!   end to end.
//!
//! ```
//! use modsyn_stg::benchmarks;
//! let all = benchmarks::all();
//! assert_eq!(all.len(), 23);
//! let stg = benchmarks::by_name("vbe-ex1").expect("known benchmark");
//! assert_eq!(stg.signal_count(), 2);
//! ```

mod large;
mod medium;
mod scalable;
mod small;

pub use large::{mmu0, mmu1, mr0, mr1, sbuf_ram_write, vbe4a};
pub use medium::{
    alex_nonfc, alloc_outbound, atod, nak_pa, pa, pe_rcv_ifc_fc, ram_read_sbuf, sbuf_read_ctl,
    sbuf_send_ctl, sbuf_send_pkt2, wrdata,
};
pub use scalable::{master_read, pipeline};
pub use small::{fifo, nousc_ser, nouse, sendr_done, vbe_ex1, vbe_ex2};

use crate::Stg;

/// Paper-reported specification columns for one Table-1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperSpec {
    /// Benchmark name as printed in Table 1.
    pub name: &'static str,
    /// "Initial no. of states" column.
    pub initial_states: usize,
    /// "Initial no. of signal" column.
    pub initial_signals: usize,
}

/// The specification columns of Table 1, in the paper's row order
/// (largest first).
pub const PAPER_SPECS: [PaperSpec; 23] = [
    PaperSpec {
        name: "mr0",
        initial_states: 302,
        initial_signals: 11,
    },
    PaperSpec {
        name: "mr1",
        initial_states: 190,
        initial_signals: 8,
    },
    PaperSpec {
        name: "mmu0",
        initial_states: 174,
        initial_signals: 8,
    },
    PaperSpec {
        name: "mmu1",
        initial_states: 82,
        initial_signals: 8,
    },
    PaperSpec {
        name: "sbuf-ram-write",
        initial_states: 58,
        initial_signals: 10,
    },
    PaperSpec {
        name: "vbe4a",
        initial_states: 58,
        initial_signals: 6,
    },
    PaperSpec {
        name: "nak-pa",
        initial_states: 56,
        initial_signals: 9,
    },
    PaperSpec {
        name: "pe-rcv-ifc-fc",
        initial_states: 46,
        initial_signals: 8,
    },
    PaperSpec {
        name: "ram-read-sbuf",
        initial_states: 36,
        initial_signals: 10,
    },
    PaperSpec {
        name: "alex-nonfc",
        initial_states: 24,
        initial_signals: 6,
    },
    PaperSpec {
        name: "sbuf-send-pkt2",
        initial_states: 21,
        initial_signals: 6,
    },
    PaperSpec {
        name: "sbuf-send-ctl",
        initial_states: 20,
        initial_signals: 6,
    },
    PaperSpec {
        name: "atod",
        initial_states: 20,
        initial_signals: 6,
    },
    PaperSpec {
        name: "pa",
        initial_states: 18,
        initial_signals: 4,
    },
    PaperSpec {
        name: "alloc-outbound",
        initial_states: 17,
        initial_signals: 7,
    },
    PaperSpec {
        name: "wrdata",
        initial_states: 16,
        initial_signals: 4,
    },
    PaperSpec {
        name: "fifo",
        initial_states: 16,
        initial_signals: 4,
    },
    PaperSpec {
        name: "sbuf-read-ctl",
        initial_states: 14,
        initial_signals: 6,
    },
    PaperSpec {
        name: "nouse",
        initial_states: 12,
        initial_signals: 3,
    },
    PaperSpec {
        name: "vbe-ex2",
        initial_states: 8,
        initial_signals: 2,
    },
    PaperSpec {
        name: "nousc-ser",
        initial_states: 8,
        initial_signals: 3,
    },
    PaperSpec {
        name: "sendr-done",
        initial_states: 7,
        initial_signals: 3,
    },
    PaperSpec {
        name: "vbe-ex1",
        initial_states: 5,
        initial_signals: 2,
    },
];

/// Builds every benchmark, in Table-1 row order.
pub fn all() -> Vec<(&'static str, Stg)> {
    vec![
        ("mr0", mr0()),
        ("mr1", mr1()),
        ("mmu0", mmu0()),
        ("mmu1", mmu1()),
        ("sbuf-ram-write", sbuf_ram_write()),
        ("vbe4a", vbe4a()),
        ("nak-pa", nak_pa()),
        ("pe-rcv-ifc-fc", pe_rcv_ifc_fc()),
        ("ram-read-sbuf", ram_read_sbuf()),
        ("alex-nonfc", alex_nonfc()),
        ("sbuf-send-pkt2", sbuf_send_pkt2()),
        ("sbuf-send-ctl", sbuf_send_ctl()),
        ("atod", atod()),
        ("pa", pa()),
        ("alloc-outbound", alloc_outbound()),
        ("wrdata", wrdata()),
        ("fifo", fifo()),
        ("sbuf-read-ctl", sbuf_read_ctl()),
        ("nouse", nouse()),
        ("vbe-ex2", vbe_ex2()),
        ("nousc-ser", nousc_ser()),
        ("sendr-done", sendr_done()),
        ("vbe-ex1", vbe_ex1()),
    ]
}

/// Builds one benchmark by its Table-1 name.
pub fn by_name(name: &str) -> Option<Stg> {
    all().into_iter().find(|(n, _)| *n == name).map(|(_, s)| s)
}

/// The paper specification row for a benchmark name.
pub fn paper_spec(name: &str) -> Option<PaperSpec> {
    PAPER_SPECS.iter().copied().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    #[test]
    fn every_row_has_a_generator_and_matching_signal_count() {
        let all = all();
        assert_eq!(all.len(), PAPER_SPECS.len());
        for (name, stg) in &all {
            let spec = paper_spec(name).unwrap_or_else(|| panic!("no spec for {name}"));
            assert_eq!(
                stg.signal_count(),
                spec.initial_signals,
                "{name}: signal count deviates from Table 1"
            );
        }
    }

    #[test]
    fn every_benchmark_is_structurally_valid() {
        for (name, stg) in all() {
            stg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_benchmark_is_live_and_safe() {
        for (name, stg) in all() {
            let g = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(g.is_safe(), "{name}: not 1-safe");
            assert!(g.deadlocks().is_empty(), "{name}: deadlock");
        }
    }

    #[test]
    fn state_counts_land_in_the_paper_band() {
        // Within a factor of 2 of the paper's initial state count; the exact
        // measured numbers are recorded in EXPERIMENTS.md.
        for (name, stg) in all() {
            let spec = paper_spec(name).unwrap();
            let n = stg
                .net()
                .reachability(&ReachabilityOptions::default())
                .unwrap()
                .markings
                .len();
            let lo = spec.initial_states.div_ceil(2);
            let hi = spec.initial_states * 2;
            assert!(
                (lo..=hi).contains(&n),
                "{name}: {n} states, paper {} (band {lo}..={hi})",
                spec.initial_states
            );
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("not-a-benchmark").is_none());
    }
}
