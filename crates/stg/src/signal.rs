//! Signals and signal transitions.

use std::fmt;

/// Handle to a signal of an [`crate::Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Dense index of this signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a raw index.
    pub fn from_index(index: usize) -> Self {
        SignalId(index as u32)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Interface role of a signal.
///
/// The paper splits signals into the input set `S_I` and the non-input set
/// `S_NI` (outputs and internal signals). Only non-input signals get logic
/// functions; only non-input excitation participates in CSC conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SignalKind {
    /// Driven by the environment.
    Input,
    /// Driven by the synthesised circuit, visible at the interface.
    Output,
    /// Driven by the synthesised circuit, not visible (includes inserted
    /// state signals).
    Internal,
}

impl SignalKind {
    /// Whether the circuit (not the environment) drives this signal.
    pub fn is_non_input(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignalKind::Input => "input",
            SignalKind::Output => "output",
            SignalKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// `s+`: the signal changes 0 → 1.
    Rise,
    /// `s-`: the signal changes 1 → 0.
    Fall,
}

impl Polarity {
    /// The opposite direction.
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        }
    }

    /// The signal value *before* a transition of this polarity.
    pub fn value_before(self) -> bool {
        matches!(self, Polarity::Fall)
    }

    /// The signal value *after* a transition of this polarity.
    pub fn value_after(self) -> bool {
        matches!(self, Polarity::Rise)
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Polarity::Rise => "+",
            Polarity::Fall => "-",
        })
    }
}

/// Label on a net transition: which signal edge it represents.
///
/// `instance` distinguishes multiple occurrences of the same edge in one
/// STG (written `a+/2` in the `.g` format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionLabel {
    /// The signal this transition toggles.
    pub signal: SignalId,
    /// Rising or falling edge.
    pub polarity: Polarity,
    /// 1-based occurrence number within the STG.
    pub instance: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_semantics() {
        assert_eq!(Polarity::Rise.opposite(), Polarity::Fall);
        assert!(!Polarity::Rise.value_before());
        assert!(Polarity::Rise.value_after());
        assert!(Polarity::Fall.value_before());
        assert!(!Polarity::Fall.value_after());
        assert_eq!(Polarity::Rise.to_string(), "+");
    }

    #[test]
    fn kind_predicates() {
        assert!(!SignalKind::Input.is_non_input());
        assert!(SignalKind::Output.is_non_input());
        assert!(SignalKind::Internal.is_non_input());
        assert_eq!(SignalKind::Output.to_string(), "output");
    }

    #[test]
    fn signal_id_round_trip() {
        let s = SignalId::from_index(4);
        assert_eq!(s.index(), 4);
        assert_eq!(s.to_string(), "s4");
    }
}
