//! The signal transition graph type.

use std::collections::BTreeSet;
use std::fmt;

use modsyn_petri::{PetriNet, PlaceId, TransitionId};

use crate::{Polarity, SignalId, SignalKind, StgError, TransitionLabel};

/// Name and role of one STG signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    name: String,
    kind: SignalKind,
}

impl SignalInfo {
    /// The signal's name as written in `.g` files.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal's interface role.
    pub fn kind(&self) -> SignalKind {
        self.kind
    }
}

/// A signal transition graph: a Petri net whose transitions are labelled
/// with rising/falling edges of interface signals.
///
/// # Example
///
/// A two-signal handshake `a+ → b+ → a- → b-`:
///
/// ```
/// use modsyn_stg::{Polarity, SignalKind, Stg};
///
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let mut stg = Stg::new("handshake");
/// let a = stg.add_signal("a", SignalKind::Input)?;
/// let b = stg.add_signal("b", SignalKind::Output)?;
/// let ap = stg.add_transition(a, Polarity::Rise);
/// let bp = stg.add_transition(b, Polarity::Rise);
/// let am = stg.add_transition(a, Polarity::Fall);
/// let bm = stg.add_transition(b, Polarity::Fall);
/// stg.arc(ap, bp)?;
/// stg.arc(bp, am)?;
/// stg.arc(am, bm)?;
/// let back = stg.arc(bm, ap)?;
/// stg.set_tokens(back, 1)?;
/// assert_eq!(stg.signal_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    name: String,
    net: PetriNet,
    signals: Vec<SignalInfo>,
    /// Per net transition: its signal edge, or `None` for a dummy (ε) event.
    labels: Vec<Option<TransitionLabel>>,
}

impl Stg {
    /// Creates an empty STG with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Stg {
            name: name.into(),
            net: PetriNet::new(),
            signals: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::DuplicateSignal`] if the name is taken.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        kind: SignalKind,
    ) -> Result<SignalId, StgError> {
        let name = name.into();
        if self.signals.iter().any(|s| s.name == name) {
            return Err(StgError::DuplicateSignal { name });
        }
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(SignalInfo { name, kind });
        Ok(id)
    }

    /// Info for a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn signal(&self, id: SignalId) -> &SignalInfo {
        &self.signals[id.index()]
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// All signal handles in declaration order.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Handles of all non-input (output and internal) signals.
    pub fn non_input_signals(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|&s| self.signal(s).kind.is_non_input())
            .collect()
    }

    /// Handles of all output signals.
    pub fn output_signals(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|&s| self.signal(s).kind == SignalKind::Output)
            .collect()
    }

    /// Looks a signal up by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Adds a transition for an edge of `signal`; occurrence numbers are
    /// assigned automatically (`a+`, then `a+/2`, …).
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn add_transition(&mut self, signal: SignalId, polarity: Polarity) -> TransitionId {
        let instance = self
            .labels
            .iter()
            .flatten()
            .filter(|l| l.signal == signal && l.polarity == polarity)
            .count() as u32
            + 1;
        let base = format!("{}{}", self.signals[signal.index()].name, polarity);
        let name = if instance == 1 {
            base
        } else {
            format!("{base}/{instance}")
        };
        let t = self.net.add_transition(name);
        self.labels.push(Some(TransitionLabel {
            signal,
            polarity,
            instance,
        }));
        t
    }

    /// Adds an unlabelled (dummy / ε) transition.
    pub fn add_dummy(&mut self, name: impl Into<String>) -> TransitionId {
        let t = self.net.add_transition(name);
        self.labels.push(None);
        t
    }

    /// The label of a net transition (`None` for dummies).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn label(&self, t: TransitionId) -> Option<TransitionLabel> {
        self.labels[t.index()]
    }

    /// All transitions labelled with `signal`.
    pub fn transitions_of(&self, signal: SignalId) -> Vec<TransitionId> {
        self.net
            .transition_ids()
            .filter(|&t| self.labels[t.index()].is_some_and(|l| l.signal == signal))
            .collect()
    }

    /// Adds an explicit place.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.add_place(name)
    }

    /// Connects two transitions through a fresh implicit place (the STG
    /// convention: "every place with a single fanin and fanout transition is
    /// represented by an arc"). Returns the created place so the caller can
    /// mark it.
    ///
    /// # Errors
    ///
    /// Propagates [`modsyn_petri::PetriError`] on duplicate arcs.
    pub fn arc(&mut self, from: TransitionId, to: TransitionId) -> Result<PlaceId, StgError> {
        let name = format!(
            "<{},{}>",
            self.net.transition(from).name(),
            self.net.transition(to).name()
        );
        let p = self.net.add_place(name);
        self.net.add_arc_transition_to_place(from, p)?;
        self.net.add_arc_place_to_transition(p, to)?;
        Ok(p)
    }

    /// Arc from a transition into an explicit place.
    ///
    /// # Errors
    ///
    /// Propagates [`modsyn_petri::PetriError`] on duplicate arcs.
    pub fn arc_into_place(&mut self, from: TransitionId, place: PlaceId) -> Result<(), StgError> {
        self.net.add_arc_transition_to_place(from, place)?;
        Ok(())
    }

    /// Arc from an explicit place into a transition.
    ///
    /// # Errors
    ///
    /// Propagates [`modsyn_petri::PetriError`] on duplicate arcs.
    pub fn arc_from_place(&mut self, place: PlaceId, to: TransitionId) -> Result<(), StgError> {
        self.net.add_arc_place_to_transition(place, to)?;
        Ok(())
    }

    /// Sets the initial tokens on a place.
    ///
    /// # Errors
    ///
    /// Propagates [`modsyn_petri::PetriError`].
    pub fn set_tokens(&mut self, place: PlaceId, tokens: u32) -> Result<(), StgError> {
        self.net.set_initial_tokens(place, tokens)?;
        Ok(())
    }

    /// The *immediate input set* of a signal: signals whose transitions
    /// directly precede (cause) some transition of `signal` in the STG.
    /// The signal itself is excluded.
    ///
    /// This is the seed of the paper's `determine_input_set` procedure.
    pub fn immediate_inputs(&self, signal: SignalId) -> BTreeSet<SignalId> {
        let mut set = BTreeSet::new();
        for t in self.transitions_of(signal) {
            for &p in self.net.transition(t).fanin() {
                for &pred in self.net.place(p).fanin() {
                    if let Some(label) = self.labels[pred.index()] {
                        if label.signal != signal {
                            set.insert(label.signal);
                        }
                    }
                }
            }
        }
        set
    }

    /// Infers each signal's initial value from the net: a signal whose next
    /// enabled-in-the-future transition is a rise starts at 0, a fall starts
    /// at 1.
    ///
    /// The inference walks the reachability-free structural approximation:
    /// it fires the token game only as far as needed — concretely, for each
    /// signal it finds the polarity of the first reachable transition by BFS
    /// over the net from the initial marking.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::NoTransitions`] for a signal with no transitions,
    /// or a propagated Petri error if the net is malformed.
    pub fn infer_initial_values(&self) -> Result<Vec<bool>, StgError> {
        use std::collections::{HashSet, VecDeque};

        self.net.validate()?;
        let mut values: Vec<Option<bool>> = vec![None; self.signals.len()];
        let mut remaining = self.signals.len();

        // BFS over markings until every signal's first edge has been seen.
        let mut seen: HashSet<modsyn_petri::Marking> = HashSet::new();
        let mut queue = VecDeque::new();
        let m0 = self.net.initial_marking();
        seen.insert(m0.clone());
        queue.push_back(m0);
        let budget = 1_000_000usize;
        let mut explored = 0usize;

        while let Some(m) = queue.pop_front() {
            if remaining == 0 {
                break;
            }
            explored += 1;
            if explored > budget {
                break;
            }
            for t in m.enabled_transitions(&self.net) {
                if let Some(label) = self.labels[t.index()] {
                    let slot = &mut values[label.signal.index()];
                    if slot.is_none() {
                        *slot = Some(label.polarity.value_before());
                        remaining -= 1;
                    }
                }
                let next = m.fire(&self.net, t).expect("enabled transition fires");
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }

        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| StgError::NoTransitions {
                    signal: self.signals[i].name.clone(),
                })
            })
            .collect()
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stg {}: {} signals, {} transitions, {} places",
            self.name,
            self.signals.len(),
            self.net.transition_count(),
            self.net.place_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake() -> Stg {
        let mut stg = Stg::new("hs");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let ap = stg.add_transition(a, Polarity::Rise);
        let bp = stg.add_transition(b, Polarity::Rise);
        let am = stg.add_transition(a, Polarity::Fall);
        let bm = stg.add_transition(b, Polarity::Fall);
        stg.arc(ap, bp).unwrap();
        stg.arc(bp, am).unwrap();
        stg.arc(am, bm).unwrap();
        let back = stg.arc(bm, ap).unwrap();
        stg.set_tokens(back, 1).unwrap();
        stg
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut stg = Stg::new("x");
        stg.add_signal("a", SignalKind::Input).unwrap();
        let err = stg.add_signal("a", SignalKind::Output).unwrap_err();
        assert!(matches!(err, StgError::DuplicateSignal { .. }));
    }

    #[test]
    fn transition_names_carry_instances() {
        let mut stg = Stg::new("x");
        let a = stg.add_signal("a", SignalKind::Output).unwrap();
        let t1 = stg.add_transition(a, Polarity::Rise);
        let t2 = stg.add_transition(a, Polarity::Rise);
        assert_eq!(stg.net().transition(t1).name(), "a+");
        assert_eq!(stg.net().transition(t2).name(), "a+/2");
        assert_eq!(stg.label(t2).unwrap().instance, 2);
        assert_eq!(stg.transitions_of(a), vec![t1, t2]);
    }

    #[test]
    fn immediate_inputs_follow_causal_arcs() {
        let stg = handshake();
        let a = stg.find_signal("a").unwrap();
        let b = stg.find_signal("b").unwrap();
        assert_eq!(stg.immediate_inputs(b), BTreeSet::from([a]));
        assert_eq!(stg.immediate_inputs(a), BTreeSet::from([b]));
    }

    #[test]
    fn initial_values_inferred_from_marking() {
        let stg = handshake();
        // Token sits before a+: both signals start low.
        assert_eq!(stg.infer_initial_values().unwrap(), vec![false, false]);
    }

    #[test]
    fn initial_values_mid_cycle() {
        let mut stg = Stg::new("hs2");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let ap = stg.add_transition(a, Polarity::Rise);
        let am = stg.add_transition(a, Polarity::Fall);
        stg.arc(ap, am).unwrap();
        let back = stg.arc(am, ap).unwrap();
        stg.set_tokens(back, 0).unwrap();
        // Mark the place before a- instead: a starts high.
        let p = stg.net().find_place("<a+,a->").unwrap();
        stg.set_tokens(p, 1).unwrap();
        assert_eq!(stg.infer_initial_values().unwrap(), vec![true]);
    }

    #[test]
    fn no_transition_signal_is_an_error() {
        let mut stg = handshake();
        stg.add_signal("ghost", SignalKind::Input).unwrap();
        assert!(matches!(
            stg.infer_initial_values(),
            Err(StgError::NoTransitions { .. })
        ));
    }

    #[test]
    fn display_summarises() {
        let stg = handshake();
        let s = stg.to_string();
        assert!(s.contains("2 signals"));
        assert!(s.contains("4 transitions"));
    }

    #[test]
    fn dummy_transitions_have_no_label() {
        let mut stg = Stg::new("d");
        let t = stg.add_dummy("eps");
        assert_eq!(stg.label(t), None);
    }

    #[test]
    fn output_and_non_input_lists() {
        let mut stg = Stg::new("k");
        let a = stg.add_signal("a", SignalKind::Input).unwrap();
        let b = stg.add_signal("b", SignalKind::Output).unwrap();
        let c = stg.add_signal("c", SignalKind::Internal).unwrap();
        assert_eq!(stg.output_signals(), vec![b]);
        assert_eq!(stg.non_input_signals(), vec![b, c]);
        assert_eq!(stg.signal(a).kind(), SignalKind::Input);
    }
}
