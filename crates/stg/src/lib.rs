//! Signal transition graphs (STGs) for asynchronous circuit synthesis.
//!
//! An STG (Chu, 1987) is a Petri net whose transitions are interpreted as
//! rising (`s+`) and falling (`s-`) edges of interface signals. This crate
//! provides:
//!
//! * the [`Stg`] type on top of [`modsyn_petri`],
//! * the [`StgBuilder`]/[`Frag`] combinator DSL for building live, safe,
//!   cyclic STGs,
//! * [`parse_g`]/[`write_g`] for the `.g` (astg) interchange format used by
//!   SIS and petrify,
//! * structural validation, and
//! * the [`benchmarks`] module with synthetic stand-ins for the paper's 23
//!   Table-1 STGs.
//!
//! # Example
//!
//! ```
//! use modsyn_stg::{parse_g, SignalKind};
//!
//! # fn main() -> Result<(), modsyn_stg::StgError> {
//! let stg = parse_g("
//! .model celement
//! .inputs a b
//! .outputs c
//! .graph
//! a+ c+
//! b+ c+
//! c+ a- b-
//! a- c-
//! b- c-
//! c- a+ b+
//! .marking { <c-,a+> <c-,b+> }
//! .end
//! ")?;
//! assert_eq!(stg.signal_count(), 3);
//! assert_eq!(stg.find_signal("c").map(|s| stg.signal(s).kind()),
//!            Some(SignalKind::Output));
//! # Ok(())
//! # }
//! ```

pub mod benchmarks;
mod digest;
mod dot;
mod dsl;
mod error;
mod parser;
mod signal;
mod stg;
mod validate;
mod writer;

pub use digest::{
    combined_module_digest, fnv1a64, module_digest, output_module_digests, stg_digest,
};
pub use dot::to_dot;
pub use dsl::{Frag, StgBuilder};
pub use error::StgError;
pub use parser::{parse_g, parse_g_traced};
pub use signal::{Polarity, SignalId, SignalKind, TransitionLabel};
pub use stg::{SignalInfo, Stg};
pub use validate::StgReport;
pub use writer::write_g;
