//! Graphviz DOT export for STGs.

use std::fmt::Write as _;

use crate::{SignalKind, Stg};

/// Renders the STG's Petri net as a Graphviz `dot` digraph: transitions as
/// boxes (inputs dashed), places as circles (implicit single-fanin/fanout
/// places collapsed into labelled arcs), marked places with a token dot.
///
/// ```
/// use modsyn_stg::{parse_g, to_dot};
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let stg = parse_g("
/// .model m
/// .inputs a
/// .outputs b
/// .graph
/// a+ b+
/// b+ a-
/// a- b-
/// b- a+
/// .marking { <b-,a+> }
/// .end
/// ")?;
/// let dot = to_dot(&stg);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("\"a+\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(stg: &Stg) -> String {
    let net = stg.net();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", stg.name());
    let _ = writeln!(out, "  rankdir=TB;");

    for t in net.transition_ids() {
        let dashed = match stg.label(t) {
            Some(l) => stg.signal(l.signal).kind() == SignalKind::Input,
            None => false,
        };
        let style = if dashed { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box{style}];",
            net.transition(t).name()
        );
    }

    let implicit = |p: modsyn_petri::PlaceId| {
        net.place(p).fanin().len() == 1
            && net.place(p).fanout().len() == 1
            && net.place(p).initial_tokens() == 0
    };
    for p in net.place_ids() {
        let place = net.place(p);
        if implicit(p) {
            let from = net.transition(place.fanin()[0]).name();
            let to = net.transition(place.fanout()[0]).name();
            let _ = writeln!(out, "  \"{from}\" -> \"{to}\";");
        } else if !place.fanin().is_empty() || !place.fanout().is_empty() {
            let marked = if place.initial_tokens() > 0 {
                ", label=\"●\""
            } else {
                ", label=\"\""
            };
            let _ = writeln!(out, "  \"{}\" [shape=circle{marked}];", place.name());
            for &t in place.fanin() {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    net.transition(t).name(),
                    place.name()
                );
            }
            for &t in place.fanout() {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    place.name(),
                    net.transition(t).name()
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dot_mentions_every_transition() {
        let stg = benchmarks::vbe_ex1();
        let dot = to_dot(&stg);
        for t in stg.net().transition_ids() {
            assert!(
                dot.contains(&format!("\"{}\"", stg.net().transition(t).name())),
                "missing {}",
                stg.net().transition(t).name()
            );
        }
    }

    #[test]
    fn choice_places_are_explicit_nodes() {
        let stg = benchmarks::nak_pa();
        let dot = to_dot(&stg);
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains('●'), "marked place rendered");
    }

    #[test]
    fn inputs_are_dashed() {
        let stg = benchmarks::vbe_ex1();
        let dot = to_dot(&stg);
        assert!(dot.contains("style=dashed"));
    }
}
