//! Error type for STG construction and parsing.

use std::error::Error;
use std::fmt;

use modsyn_petri::PetriError;

/// Errors raised while building, parsing or analysing an [`crate::Stg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StgError {
    /// A signal with this name already exists.
    DuplicateSignal {
        /// The duplicated name.
        name: String,
    },
    /// A `.g` line referenced a signal never declared in `.inputs` /
    /// `.outputs` / `.internal`.
    UnknownSignal {
        /// The undeclared name.
        name: String,
    },
    /// A signal has no transitions, so its initial value cannot be inferred.
    NoTransitions {
        /// The offending signal name.
        signal: String,
    },
    /// A `.g` document was structurally malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying Petri-net operation failed.
    Petri(PetriError),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::DuplicateSignal { name } => write!(f, "duplicate signal {name:?}"),
            StgError::UnknownSignal { name } => write!(f, "unknown signal {name:?}"),
            StgError::NoTransitions { signal } => {
                write!(f, "signal {signal:?} has no transitions")
            }
            StgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            StgError::Petri(e) => write!(f, "petri net error: {e}"),
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Petri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for StgError {
    fn from(e: PetriError) -> Self {
        StgError::Petri(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn petri_errors_convert_and_chain() {
        let err: StgError = PetriError::EmptyInitialMarking.into();
        assert!(err.to_string().contains("petri net error"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn parse_error_carries_location() {
        let err = StgError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(err.to_string().contains("line 7"));
    }
}
