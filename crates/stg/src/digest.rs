//! Content-addressed STG identity: FNV-1a over the canonical `.g` text.
//!
//! The serving layer (`modsyn-svc`) caches synthesis results by *what the
//! STG is*, not by the bytes the client happened to send: two `.g`
//! documents that differ only in whitespace, arc ordering inside a line,
//! or transition-instance spelling must map to the same cache entry. The
//! canonical form is [`crate::write_g`]'s output — `parse ∘ write` is a
//! fixpoint (property-tested over every Table-1 benchmark plus generated
//! STGs), so hashing the written text gives a stable, structure-derived
//! key.
//!
//! The hash is 64-bit FNV-1a: tiny, dependency-free, and fast on short
//! inputs. It is a *cache key*, not a cryptographic commitment — collision
//! resistance against adversarial inputs is explicitly out of scope (the
//! service double-checks nothing on a hit beyond the key).

use crate::{write_g, Stg};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// ```
/// use modsyn_stg::fnv1a64;
/// // Published FNV-1a test vectors.
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical content digest of an STG: [`fnv1a64`] over the canonical
/// [`write_g`] rendering.
///
/// Equal digests ⇔ equal canonical `.g` text, so any two parse trees of
/// the same net (regardless of source formatting) share a digest, and the
/// digest survives a round trip through `write_g`/`parse_g` unchanged.
///
/// ```
/// use modsyn_stg::{parse_g, stg_digest, write_g};
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let a = parse_g(".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n")?;
/// // Same net, different formatting: extra blank lines and spacing.
/// let b = parse_g(".model m\n\n.inputs  a\n.outputs  b\n.graph\n\na+  b+\nb+  a-\na-  b-\nb-  a+\n.marking  { <b-,a+> }\n.end\n")?;
/// assert_eq!(stg_digest(&a), stg_digest(&b));
/// let round = parse_g(&write_g(&a))?;
/// assert_eq!(stg_digest(&a), stg_digest(&round));
/// # Ok(())
/// # }
/// ```
pub fn stg_digest(stg: &Stg) -> u64 {
    fnv1a64(write_g(stg).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, parse_g};

    #[test]
    fn fnv_vectors() {
        // Reference vectors from the FNV specification draft.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_stable_across_roundtrip() {
        for (name, stg) in benchmarks::all() {
            let again = parse_g(&crate::write_g(&stg)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(stg_digest(&stg), stg_digest(&again), "{name}");
        }
    }

    /// Cache keys must not drift silently: any change to `write_g`'s
    /// canonical rendering (or to a benchmark generator) invalidates every
    /// persisted digest, so it has to be a *deliberate* change that updates
    /// these pinned values in the same commit.
    #[test]
    fn table1_digests_are_pinned() {
        let pinned: &[(&str, u64)] = &PINNED;
        let all = benchmarks::all();
        assert_eq!(all.len(), pinned.len());
        for ((name, stg), (pin_name, pin)) in all.iter().zip(pinned) {
            assert_eq!(name, pin_name);
            assert_eq!(
                stg_digest(stg),
                *pin,
                "{name}: canonical digest drifted (write_g or the generator changed; \
                 if intentional, re-pin with `cargo test -p modsyn-stg digest -- --nocapture`)"
            );
        }
    }

    // Regenerate with the `print_digests` test below (`--ignored --nocapture`).
    const PINNED: [(&str, u64); 23] = [
        ("mr0", 0xa09b_8a5e_bd27_71ec),
        ("mr1", 0x24fb_3669_fc42_3129),
        ("mmu0", 0x5bb9_8208_4e3b_c495),
        ("mmu1", 0x4c19_8385_4ac7_1260),
        ("sbuf-ram-write", 0x9814_5872_6ac8_5903),
        ("vbe4a", 0x18ed_ba0a_2d63_d9de),
        ("nak-pa", 0xf2c0_fdde_5ac6_2258),
        ("pe-rcv-ifc-fc", 0x3362_4f5e_8701_8ae6),
        ("ram-read-sbuf", 0x4303_2db2_9719_b1a8),
        ("alex-nonfc", 0xc8db_a022_8d8c_aad8),
        ("sbuf-send-pkt2", 0xf49d_5617_10c5_47a8),
        ("sbuf-send-ctl", 0xb1a1_aeab_d4ca_9f9c),
        ("atod", 0xdbf4_2494_4e56_b157),
        ("pa", 0x03c0_80e4_f3b7_d04b),
        ("alloc-outbound", 0x7201_4095_ee3f_9f7b),
        ("wrdata", 0x7dce_d660_b000_913c),
        ("fifo", 0x8346_e8b5_5ddf_63e9),
        ("sbuf-read-ctl", 0x10d9_4ad4_2c47_1310),
        ("nouse", 0x8c2b_be7a_9ef4_c1fc),
        ("vbe-ex2", 0x964c_087e_b2c5_f9ce),
        ("nousc-ser", 0x2760_88ef_d620_838a),
        ("sendr-done", 0xacbe_192c_c943_cbd4),
        ("vbe-ex1", 0xacca_6b41_4f46_2845),
    ];

    #[test]
    #[ignore = "helper: prints the pinned-digest table for re-pinning"]
    fn print_digests() {
        for (name, stg) in benchmarks::all() {
            println!("(\"{name}\", 0x{:016x}),", stg_digest(&stg));
        }
    }
}
