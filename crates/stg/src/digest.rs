//! Content-addressed STG identity: FNV-1a over the canonical `.g` text.
//!
//! The serving layer (`modsyn-svc`) caches synthesis results by *what the
//! STG is*, not by the bytes the client happened to send: two `.g`
//! documents that differ only in whitespace, arc ordering inside a line,
//! or transition-instance spelling must map to the same cache entry. The
//! canonical form is [`crate::write_g`]'s output — `parse ∘ write` is a
//! fixpoint (property-tested over every Table-1 benchmark plus generated
//! STGs), so hashing the written text gives a stable, structure-derived
//! key.
//!
//! The hash is 64-bit FNV-1a: tiny, dependency-free, and fast on short
//! inputs. It is a *cache key*, not a cryptographic commitment — collision
//! resistance against adversarial inputs is explicitly out of scope (the
//! service double-checks nothing on a hit beyond the key).

use std::collections::BTreeSet;

use crate::{write_g, SignalId, Stg};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
///
/// ```
/// use modsyn_stg::fnv1a64;
/// // Published FNV-1a test vectors.
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical content digest of an STG: [`fnv1a64`] over the canonical
/// [`write_g`] rendering.
///
/// Equal digests ⇔ equal canonical `.g` text, so any two parse trees of
/// the same net (regardless of source formatting) share a digest, and the
/// digest survives a round trip through `write_g`/`parse_g` unchanged.
///
/// ```
/// use modsyn_stg::{parse_g, stg_digest, write_g};
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let a = parse_g(".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n")?;
/// // Same net, different formatting: extra blank lines and spacing.
/// let b = parse_g(".model m\n\n.inputs  a\n.outputs  b\n.graph\n\na+  b+\nb+  a-\na-  b-\nb-  a+\n.marking  { <b-,a+> }\n.end\n")?;
/// assert_eq!(stg_digest(&a), stg_digest(&b));
/// let round = parse_g(&write_g(&a))?;
/// assert_eq!(stg_digest(&a), stg_digest(&round));
/// # Ok(())
/// # }
/// ```
pub fn stg_digest(stg: &Stg) -> u64 {
    fnv1a64(write_g(stg).as_bytes())
}

/// The content digest of one *module projection* of an STG: the behaviour
/// visible to the `kept` signals, with everything else treated as hidden.
///
/// The projection renders, per kept-signal transition, the set of kept
/// transitions reachable through hidden transitions and places (the
/// module's causal skeleton), plus which kept transitions the initial
/// marking enables through hidden structure. Two STGs that agree on a
/// module's projection agree on this digest, so an edit's blast radius can
/// be predicted *at the STG level* — before deriving a single state graph —
/// by comparing per-output digests (see [`output_module_digests`]).
///
/// This is a fast, conservative change predictor, not the reuse key: the
/// synthesis store keys cached module solves by the exact quotient state
/// graph, which is what actually guarantees byte-identical replay.
pub fn module_digest(stg: &Stg, kept: &BTreeSet<SignalId>) -> u64 {
    use std::fmt::Write;

    let net = stg.net();
    let is_kept =
        |t: modsyn_petri::TransitionId| stg.label(t).is_some_and(|l| kept.contains(&l.signal));

    // Kept transitions reachable from `start` places, walking forward
    // through hidden transitions until the first kept transition on each
    // path.
    let reachable_kept = |start: &[modsyn_petri::PlaceId]| -> Vec<String> {
        let mut seen_t: BTreeSet<usize> = BTreeSet::new();
        let mut seen_p: BTreeSet<usize> = BTreeSet::new();
        let mut found: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<modsyn_petri::PlaceId> = start.to_vec();
        while let Some(p) = queue.pop() {
            if !seen_p.insert(p.index()) {
                continue;
            }
            for &t in net.place(p).fanout() {
                if !seen_t.insert(t.index()) {
                    continue;
                }
                if is_kept(t) {
                    found.insert(net.transition(t).name().to_string());
                } else {
                    queue.extend(net.transition(t).fanout().iter().copied());
                }
            }
        }
        found.into_iter().collect()
    };

    let mut text = String::from("module/v1\n");
    for &s in kept {
        let info = stg.signal(s);
        let _ = writeln!(text, "k {} {}", info.name(), info.kind());
    }
    for t in net.transition_ids() {
        if !is_kept(t) {
            continue;
        }
        let succs = reachable_kept(net.transition(t).fanout());
        let _ = writeln!(text, "t {} > {}", net.transition(t).name(), succs.join(" "));
    }
    let mut marked: BTreeSet<String> = BTreeSet::new();
    for p in net.place_ids() {
        let tokens = net.place(p).initial_tokens();
        if tokens > 0 {
            for name in reachable_kept(&[p]) {
                marked.insert(format!("{name} {tokens}"));
            }
        }
    }
    for m in &marked {
        let _ = writeln!(text, "m {m}");
    }
    fnv1a64(text.as_bytes())
}

/// Per-module digests for every non-input signal: `(signal name,`
/// [`module_digest`] over `{signal} ∪ immediate_inputs(signal))`, in signal
/// order — one entry per module of the paper's partition.
pub fn output_module_digests(stg: &Stg) -> Vec<(String, u64)> {
    stg.non_input_signals()
        .into_iter()
        .map(|s| {
            let mut kept = stg.immediate_inputs(s);
            kept.insert(s);
            (stg.signal(s).name().to_string(), module_digest(stg, &kept))
        })
        .collect()
}

/// Folds the per-module digests of [`output_module_digests`] into one
/// per-STG value (pinned per Table-1 row to catch projection drift).
pub fn combined_module_digest(stg: &Stg) -> u64 {
    let mut text = String::new();
    for (name, digest) in output_module_digests(stg) {
        text.push_str(&name);
        text.push(':');
        text.push_str(&format!("{digest:016x}"));
        text.push('\n');
    }
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, parse_g};

    #[test]
    fn fnv_vectors() {
        // Reference vectors from the FNV specification draft.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_stable_across_roundtrip() {
        for (name, stg) in benchmarks::all() {
            let again = parse_g(&crate::write_g(&stg)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(stg_digest(&stg), stg_digest(&again), "{name}");
        }
    }

    /// Cache keys must not drift silently: any change to `write_g`'s
    /// canonical rendering (or to a benchmark generator) invalidates every
    /// persisted digest, so it has to be a *deliberate* change that updates
    /// these pinned values in the same commit.
    #[test]
    fn table1_digests_are_pinned() {
        let pinned: &[(&str, u64)] = &PINNED;
        let all = benchmarks::all();
        assert_eq!(all.len(), pinned.len());
        for ((name, stg), (pin_name, pin)) in all.iter().zip(pinned) {
            assert_eq!(name, pin_name);
            assert_eq!(
                stg_digest(stg),
                *pin,
                "{name}: canonical digest drifted (write_g or the generator changed; \
                 if intentional, re-pin with `cargo test -p modsyn-stg digest -- --nocapture`)"
            );
        }
    }

    // Regenerate with the `print_digests` test below (`--ignored --nocapture`).
    const PINNED: [(&str, u64); 23] = [
        ("mr0", 0xa09b_8a5e_bd27_71ec),
        ("mr1", 0x24fb_3669_fc42_3129),
        ("mmu0", 0x5bb9_8208_4e3b_c495),
        ("mmu1", 0x4c19_8385_4ac7_1260),
        ("sbuf-ram-write", 0x9814_5872_6ac8_5903),
        ("vbe4a", 0x18ed_ba0a_2d63_d9de),
        ("nak-pa", 0xf2c0_fdde_5ac6_2258),
        ("pe-rcv-ifc-fc", 0x3362_4f5e_8701_8ae6),
        ("ram-read-sbuf", 0x4303_2db2_9719_b1a8),
        ("alex-nonfc", 0xc8db_a022_8d8c_aad8),
        ("sbuf-send-pkt2", 0xf49d_5617_10c5_47a8),
        ("sbuf-send-ctl", 0xb1a1_aeab_d4ca_9f9c),
        ("atod", 0xdbf4_2494_4e56_b157),
        ("pa", 0x03c0_80e4_f3b7_d04b),
        ("alloc-outbound", 0x7201_4095_ee3f_9f7b),
        ("wrdata", 0x7dce_d660_b000_913c),
        ("fifo", 0x8346_e8b5_5ddf_63e9),
        ("sbuf-read-ctl", 0x10d9_4ad4_2c47_1310),
        ("nouse", 0x8c2b_be7a_9ef4_c1fc),
        ("vbe-ex2", 0x964c_087e_b2c5_f9ce),
        ("nousc-ser", 0x2760_88ef_d620_838a),
        ("sendr-done", 0xacbe_192c_c943_cbd4),
        ("vbe-ex1", 0xacca_6b41_4f46_2845),
    ];

    #[test]
    #[ignore = "helper: prints the pinned-digest table for re-pinning"]
    fn print_digests() {
        for (name, stg) in benchmarks::all() {
            println!("(\"{name}\", 0x{:016x}),", stg_digest(&stg));
        }
    }

    /// Same drift guard for the per-module projection digests: the
    /// incremental flow predicts an edit's blast radius by comparing these,
    /// so the projection itself must not move silently.
    #[test]
    fn table1_module_digests_are_pinned() {
        let all = benchmarks::all();
        assert_eq!(all.len(), MODULE_PINNED.len());
        for ((name, stg), (pin_name, pin)) in all.iter().zip(&MODULE_PINNED) {
            assert_eq!(name, pin_name);
            assert_eq!(
                combined_module_digest(stg),
                *pin,
                "{name}: module projection digest drifted (if intentional, re-pin \
                 with `cargo test -p modsyn-stg print_module_digests -- --ignored --nocapture`)"
            );
        }
    }

    #[test]
    fn module_digest_sees_only_the_projection() {
        // Editing a module-local detail must move exactly the digests of
        // the modules that can observe it.
        let stg = benchmarks::vbe_ex2();
        let per_output = output_module_digests(&stg);
        assert!(!per_output.is_empty());
        // The digest is a pure function of the projection.
        let again = output_module_digests(&stg);
        assert_eq!(per_output, again);
        // Distinct modules of a multi-output benchmark key differently.
        let distinct: std::collections::BTreeSet<u64> =
            per_output.iter().map(|&(_, d)| d).collect();
        assert!(distinct.len() > 1 || per_output.len() == 1);
    }

    // Regenerate with `print_module_digests` below (`--ignored --nocapture`).
    const MODULE_PINNED: [(&str, u64); 23] = [
        ("mr0", 0x6cb5_039c_c35d_49ca),
        ("mr1", 0x7d22_9833_b88f_7f90),
        ("mmu0", 0x5597_54e7_3372_0a09),
        ("mmu1", 0x2c38_0567_7cb7_2b5d),
        ("sbuf-ram-write", 0x12e8_2364_02fe_64a0),
        ("vbe4a", 0xd896_75e4_eb5e_ad57),
        ("nak-pa", 0xdd23_9c9d_462b_c277),
        ("pe-rcv-ifc-fc", 0xf2e2_6db5_3116_12e5),
        ("ram-read-sbuf", 0x7b2e_c33a_214e_5c86),
        ("alex-nonfc", 0x13be_a0dc_e841_dbd6),
        ("sbuf-send-pkt2", 0x6eef_bd10_e8d2_fe49),
        ("sbuf-send-ctl", 0x3143_ac1b_36bd_6b2c),
        ("atod", 0x2ea4_bfe2_14b2_f3b8),
        ("pa", 0xa161_e2ed_a0e1_8eaf),
        ("alloc-outbound", 0xf80f_2a88_0df6_7fbd),
        ("wrdata", 0xcf7c_b956_76a8_26d2),
        ("fifo", 0x8233_7e13_c3f6_33dc),
        ("sbuf-read-ctl", 0xe8d3_4df1_c8a6_e2c5),
        ("nouse", 0xf5da_cca0_0b01_d02c),
        ("vbe-ex2", 0x3077_91e5_3986_8f05),
        ("nousc-ser", 0x5366_49f5_173b_b2b7),
        ("sendr-done", 0x692c_e73f_8929_06f8),
        ("vbe-ex1", 0x87cc_f685_cf3f_718b),
    ];

    #[test]
    #[ignore = "helper: prints the pinned module-digest table for re-pinning"]
    fn print_module_digests() {
        for (name, stg) in benchmarks::all() {
            println!("(\"{name}\", 0x{:016x}),", combined_module_digest(&stg));
        }
    }
}
