//! Parser for the `.g` (astg) text format used by SIS and petrify.
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.dummy`, `.graph`, `.marking`, `.end`. Graph lines are
//! `source target target …` where each token is a transition
//! (`sig+`, `sig-`, optionally `/instance`), a dummy name, or an explicit
//! place name. Markings accept explicit places and implicit-place pairs
//! `<t1,t2>`.

use std::collections::HashMap;

use modsyn_petri::{PlaceId, TransitionId};

use crate::{Polarity, SignalKind, Stg, StgError};

/// Parses a `.g` document into an [`Stg`].
///
/// # Errors
///
/// Returns [`StgError::Parse`] with a line number on malformed input,
/// [`StgError::UnknownSignal`] for transitions of undeclared signals.
///
/// ```
/// use modsyn_stg::parse_g;
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let stg = parse_g("
/// .model tiny
/// .inputs a
/// .outputs b
/// .graph
/// a+ b+
/// b+ a-
/// a- b-
/// b- a+
/// .marking { <b-,a+> }
/// .end
/// ")?;
/// assert_eq!(stg.signal_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_g(input: &str) -> Result<Stg, StgError> {
    let mut parser = Parser::new();
    parser.run(input)?;
    Ok(parser.stg)
}

/// [`parse_g`] wrapped in an `stg.parse` observability span recording the
/// parsed net's size. With a disabled tracer this is exactly [`parse_g`].
pub fn parse_g_traced(input: &str, tracer: &modsyn_obs::Tracer) -> Result<Stg, StgError> {
    if !tracer.is_enabled() {
        return parse_g(input);
    }
    let _span = tracer.span("stg.parse");
    let result = parse_g(input);
    match &result {
        Ok(stg) => {
            tracer.note("model", stg.name());
            tracer.gauge("signals", stg.signal_count() as f64);
            tracer.gauge("transitions", stg.net().transition_count() as f64);
            tracer.gauge("places", stg.net().place_count() as f64);
        }
        Err(e) => tracer.note("error", &e.to_string()),
    }
    result
}

struct Parser {
    stg: Stg,
    /// Named transitions: "a+", "a+/2", dummies by name.
    transitions: HashMap<String, TransitionId>,
    /// Explicit places by name.
    places: HashMap<String, PlaceId>,
    in_graph: bool,
    /// Arc-target pairs resolved to implicit places, for `.marking`.
    implicit: HashMap<(TransitionId, TransitionId), PlaceId>,
}

impl Parser {
    fn new() -> Self {
        Parser {
            stg: Stg::new("unnamed"),
            transitions: HashMap::new(),
            places: HashMap::new(),
            in_graph: false,
            implicit: HashMap::new(),
        }
    }

    fn err(line: usize, message: impl Into<String>) -> StgError {
        StgError::Parse {
            line,
            message: message.into(),
        }
    }

    fn run(&mut self, input: &str) -> Result<(), StgError> {
        let mut signal_decls: Vec<(String, SignalKind)> = Vec::new();
        let mut dummy_decls: Vec<String> = Vec::new();
        let mut graph_lines: Vec<(usize, String)> = Vec::new();
        let mut marking_line: Option<(usize, String)> = None;
        let mut model = String::from("unnamed");

        for (i, raw) in input.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".model") {
                model = rest.trim().to_string();
            } else if let Some(rest) = line.strip_prefix(".inputs") {
                for name in rest.split_whitespace() {
                    signal_decls.push((name.to_string(), SignalKind::Input));
                }
            } else if let Some(rest) = line.strip_prefix(".outputs") {
                for name in rest.split_whitespace() {
                    signal_decls.push((name.to_string(), SignalKind::Output));
                }
            } else if let Some(rest) = line.strip_prefix(".internal") {
                for name in rest.split_whitespace() {
                    signal_decls.push((name.to_string(), SignalKind::Internal));
                }
            } else if let Some(rest) = line.strip_prefix(".dummy") {
                for name in rest.split_whitespace() {
                    dummy_decls.push(name.to_string());
                }
            } else if line == ".graph" {
                self.in_graph = true;
            } else if let Some(rest) = line.strip_prefix(".marking") {
                marking_line = Some((lineno, rest.trim().to_string()));
            } else if line == ".end" {
                break;
            } else if line.starts_with('.') {
                return Err(Self::err(lineno, format!("unknown directive {line:?}")));
            } else if self.in_graph {
                graph_lines.push((lineno, line.to_string()));
            } else {
                return Err(Self::err(lineno, "graph line before .graph"));
            }
        }

        self.stg = Stg::new(model);
        for (name, kind) in signal_decls {
            self.stg.add_signal(name, kind)?;
        }
        let dummies = dummy_decls;

        // First pass: create all transitions mentioned anywhere.
        for (lineno, line) in &graph_lines {
            for token in line.split_whitespace() {
                self.ensure_node(token, &dummies, *lineno)?;
            }
        }
        // Second pass: arcs.
        for (lineno, line) in &graph_lines {
            let mut tokens = line.split_whitespace();
            let src = tokens
                .next()
                .ok_or_else(|| Self::err(*lineno, "empty graph line"))?;
            for dst in tokens {
                self.add_arc(src, dst, *lineno)?;
            }
        }
        // Marking.
        if let Some((lineno, text)) = marking_line {
            self.parse_marking(&text, lineno)?;
        }
        Ok(())
    }

    fn is_transition_token(token: &str) -> bool {
        let base = token.split('/').next().unwrap_or(token);
        base.ends_with('+') || base.ends_with('-')
    }

    /// Creates the transition or remembers the place named by `token`.
    fn ensure_node(
        &mut self,
        token: &str,
        dummies: &[String],
        lineno: usize,
    ) -> Result<(), StgError> {
        if self.transitions.contains_key(token) || self.places.contains_key(token) {
            return Ok(());
        }
        if Self::is_transition_token(token) {
            let (base, _inst) = split_instance(token, lineno)?;
            let (sig_name, polarity) = split_polarity(&base, lineno)?;
            let signal = self
                .stg
                .find_signal(&sig_name)
                .ok_or(StgError::UnknownSignal { name: sig_name })?;
            let t = self.stg.add_transition(signal, polarity);
            // The STG assigns canonical names; map the token as written too.
            self.transitions.insert(token.to_string(), t);
            Ok(())
        } else if dummies.iter().any(|d| d == token) {
            let t = self.stg.add_dummy(token);
            self.transitions.insert(token.to_string(), t);
            Ok(())
        } else {
            let p = self.stg.add_place(token);
            self.places.insert(token.to_string(), p);
            Ok(())
        }
    }

    fn add_arc(&mut self, src: &str, dst: &str, lineno: usize) -> Result<(), StgError> {
        match (
            self.transitions.get(src).copied(),
            self.transitions.get(dst).copied(),
            self.places.get(src).copied(),
            self.places.get(dst).copied(),
        ) {
            (Some(t1), Some(t2), _, _) => {
                let p = self.stg.arc(t1, t2)?;
                self.implicit.insert((t1, t2), p);
                Ok(())
            }
            (Some(t), None, _, Some(p)) => self.stg.arc_into_place(t, p),
            (None, Some(t), Some(p), _) => self.stg.arc_from_place(p, t),
            _ => Err(Self::err(
                lineno,
                format!("arc between two places: {src} -> {dst}"),
            )),
        }
    }

    fn parse_marking(&mut self, text: &str, lineno: usize) -> Result<(), StgError> {
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| Self::err(lineno, "marking must be wrapped in { }"))?;
        // Tokens: explicit place names, or <t1,t2> implicit pairs. Repeated
        // mentions accumulate tokens.
        let mut tokens: std::collections::HashMap<modsyn_petri::PlaceId, u32> =
            std::collections::HashMap::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if let Some(after) = rest.strip_prefix('<') {
                let end = after
                    .find('>')
                    .ok_or_else(|| Self::err(lineno, "unterminated <t1,t2> marking"))?;
                let pair = &after[..end];
                let (a, b) = pair
                    .split_once(',')
                    .ok_or_else(|| Self::err(lineno, "implicit marking needs two transitions"))?;
                let t1 = self
                    .transitions
                    .get(a.trim())
                    .copied()
                    .ok_or_else(|| Self::err(lineno, format!("unknown transition {a:?}")))?;
                let t2 = self
                    .transitions
                    .get(b.trim())
                    .copied()
                    .ok_or_else(|| Self::err(lineno, format!("unknown transition {b:?}")))?;
                let p = self
                    .implicit
                    .get(&(t1, t2))
                    .copied()
                    .ok_or_else(|| Self::err(lineno, format!("no arc <{a},{b}> to mark")))?;
                *tokens.entry(p).or_insert(0) += 1;
                rest = after[end + 1..].trim_start();
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                let name = &rest[..end];
                let p = self
                    .places
                    .get(name)
                    .copied()
                    .ok_or_else(|| Self::err(lineno, format!("unknown place {name:?}")))?;
                *tokens.entry(p).or_insert(0) += 1;
                rest = rest[end..].trim_start();
            }
        }
        for (p, count) in tokens {
            self.stg.set_tokens(p, count)?;
        }
        Ok(())
    }
}

fn split_instance(token: &str, lineno: usize) -> Result<(String, u32), StgError> {
    match token.split_once('/') {
        None => Ok((token.to_string(), 1)),
        Some((base, inst)) => {
            let n: u32 = inst
                .parse()
                .map_err(|_| Parser::err(lineno, format!("bad instance suffix in {token:?}")))?;
            Ok((base.to_string(), n))
        }
    }
}

fn split_polarity(base: &str, lineno: usize) -> Result<(String, Polarity), StgError> {
    if let Some(name) = base.strip_suffix('+') {
        Ok((name.to_string(), Polarity::Rise))
    } else if let Some(name) = base.strip_suffix('-') {
        Ok((name.to_string(), Polarity::Fall))
    } else {
        Err(Parser::err(
            lineno,
            format!("expected +/- suffix in {base:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::ReachabilityOptions;

    const HANDSHAKE: &str = "
.model hs
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn parses_simple_handshake() {
        let stg = parse_g(HANDSHAKE).unwrap();
        assert_eq!(stg.name(), "hs");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        let g = stg
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert_eq!(g.markings.len(), 4);
    }

    #[test]
    fn explicit_places_and_choice() {
        let src = "
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+/2
c+ p1
c+/2 p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        // a- fires in both branches? No: p1 merges; a- then c- back to p0.
        assert_eq!(stg.net().transition_count(), 6);
        let p0 = stg.net().find_place("p0").unwrap();
        assert_eq!(stg.net().place(p0).initial_tokens(), 1);
    }

    #[test]
    fn unknown_signal_is_reported() {
        let src = ".model x\n.inputs a\n.graph\na+ z+\nz+ a-\na- a+\n.marking { <a-,a+> }\n.end\n";
        assert!(matches!(
            parse_g(src),
            Err(StgError::UnknownSignal { name }) if name == "z"
        ));
    }

    #[test]
    fn dummies_are_supported() {
        let src = "
.model d
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let t = stg.net().find_transition("eps").unwrap();
        assert_eq!(stg.label(t), None);
    }

    #[test]
    fn bad_marking_is_rejected() {
        let src = ".model x\n.inputs a\n.graph\na+ a-\na- a+\n.marking { <a+,a+> }\n.end\n";
        assert!(matches!(parse_g(src), Err(StgError::Parse { .. })));
    }

    #[test]
    fn marking_with_multiple_tokens() {
        let src = "
.model two
.inputs a b
.graph
a+ a-
a- a+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        let g = stg
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert_eq!(g.markings.len(), 4);
    }

    #[test]
    fn repeated_marking_mentions_accumulate_tokens() {
        // Two tokens on one explicit place (a non-safe net, still parseable).
        let src = "
.model two_tokens
.inputs a
.graph
p0 a+
a+ a-
a- p0
.marking { p0 p0 }
.end
";
        let stg = parse_g(src).unwrap();
        let p0 = stg.net().find_place("p0").unwrap();
        assert_eq!(stg.net().place(p0).initial_tokens(), 2);
    }

    #[test]
    fn unknown_directive_errors() {
        assert!(matches!(
            parse_g(".bogus\n"),
            Err(StgError::Parse { line: 1, .. })
        ));
    }
}
