//! Serialising STGs back to the `.g` format.

use std::fmt::Write as _;

use crate::{SignalKind, Stg};

/// Renders an [`Stg`] as a `.g` document.
///
/// Implicit places (single fan-in, single fan-out) are written as arcs;
/// other places are written explicitly. The output round-trips through
/// [`crate::parse_g`].
///
/// ```
/// use modsyn_stg::{parse_g, write_g};
/// # fn main() -> Result<(), modsyn_stg::StgError> {
/// let stg = parse_g("
/// .model m
/// .inputs a
/// .outputs b
/// .graph
/// a+ b+
/// b+ a-
/// a- b-
/// b- a+
/// .marking { <b-,a+> }
/// .end
/// ")?;
/// let text = write_g(&stg);
/// let again = parse_g(&text)?;
/// assert_eq!(again.signal_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn write_g(stg: &Stg) -> String {
    let net = stg.net();
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());

    for (directive, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signal_ids()
            .filter(|&s| stg.signal(s).kind() == kind)
            .map(|s| stg.signal(s).name())
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    let dummies: Vec<&str> = net
        .transition_ids()
        .filter(|&t| stg.label(t).is_none())
        .map(|t| net.transition(t).name())
        .collect();
    if !dummies.is_empty() {
        let _ = writeln!(out, ".dummy {}", dummies.join(" "));
    }

    let _ = writeln!(out, ".graph");
    let is_implicit = |p: modsyn_petri::PlaceId| {
        net.place(p).fanin().len() == 1 && net.place(p).fanout().len() == 1
    };

    // The parser numbers each signal's transition instances by first
    // appearance in the document (`a+`, then `a+/2`, …) regardless of any
    // suffix the token carried, so the writer must emit that same
    // numbering — otherwise `parse ∘ write` renames transitions on every
    // trip instead of reaching a fixpoint. Walk the arcs in emission order
    // and rename labelled transitions accordingly; dummies keep their
    // declared names.
    let mut emission_order = Vec::new();
    let mut seen = vec![false; net.transition_count()];
    let mut record = |t: modsyn_petri::TransitionId| {
        if !seen[t.index()] {
            seen[t.index()] = true;
            emission_order.push(t);
        }
    };
    for p in net.place_ids() {
        if is_implicit(p) {
            record(net.place(p).fanin()[0]);
            record(net.place(p).fanout()[0]);
        }
    }
    for p in net.place_ids() {
        if !is_implicit(p) {
            net.place(p).fanin().iter().for_each(|&t| record(t));
            net.place(p).fanout().iter().for_each(|&t| record(t));
        }
    }
    let mut canonical: Vec<Option<String>> = vec![None; net.transition_count()];
    let mut instances: std::collections::HashMap<(usize, crate::Polarity), u32> =
        std::collections::HashMap::new();
    for &t in &emission_order {
        canonical[t.index()] = Some(match stg.label(t) {
            None => net.transition(t).name().to_string(),
            Some(label) => {
                let n = instances
                    .entry((label.signal.index(), label.polarity))
                    .or_insert(0);
                *n += 1;
                let base = format!("{}{}", stg.signal(label.signal).name(), label.polarity);
                if *n == 1 {
                    base
                } else {
                    format!("{base}/{n}")
                }
            }
        });
    }
    let name_of = |t: modsyn_petri::TransitionId| {
        canonical[t.index()]
            .clone()
            .unwrap_or_else(|| net.transition(t).name().to_string())
    };

    // Arcs through implicit places.
    for p in net.place_ids() {
        if is_implicit(p) {
            let from = net.place(p).fanin()[0];
            let to = net.place(p).fanout()[0];
            let _ = writeln!(out, "{} {}", name_of(from), name_of(to));
        }
    }
    // Explicit places.
    for p in net.place_ids() {
        if is_implicit(p) {
            continue;
        }
        let place = net.place(p);
        if place.fanin().is_empty() && place.fanout().is_empty() {
            continue;
        }
        for &t in place.fanin() {
            let _ = writeln!(out, "{} {}", name_of(t), place.name());
        }
        for &t in place.fanout() {
            let _ = writeln!(out, "{} {}", place.name(), name_of(t));
        }
    }

    // Marking.
    let mut marks = Vec::new();
    for p in net.place_ids() {
        let tokens = net.place(p).initial_tokens();
        for _ in 0..tokens {
            if is_implicit(p) {
                let from = net.place(p).fanin()[0];
                let to = net.place(p).fanout()[0];
                marks.push(format!("<{},{}>", name_of(from), name_of(to)));
            } else {
                marks.push(net.place(p).name().to_string());
            }
        }
    }
    let _ = writeln!(out, ".marking {{ {} }}", marks.join(" "));
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_g;
    use modsyn_petri::ReachabilityOptions;

    #[test]
    fn round_trip_preserves_state_count() {
        let src = "
.model rt
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+/2
c+ p1
c+/2 p1
p1 a-
a- c-
c- p0
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap();
        let n1 = stg
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len();
        let n2 = again
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len();
        assert_eq!(n1, n2);
        assert_eq!(stg.signal_count(), again.signal_count());
    }

    #[test]
    fn writer_emits_sections() {
        let stg = parse_g(
            ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .unwrap();
        let text = write_g(&stg);
        assert!(text.contains(".model m"));
        assert!(text.contains(".inputs a"));
        assert!(text.contains(".outputs b"));
        assert!(text.contains(".marking { <b-,a+> }"));
    }
}
