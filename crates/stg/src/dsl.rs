//! A combinator DSL for building cyclic STGs.
//!
//! Benchmarks are specified as a *behaviour expression* — sequence,
//! fork/join concurrency, and free choice over signal edges — which is
//! compiled into a 1-safe, live, consistent STG whose cycle repeats forever.
//!
//! ```
//! use modsyn_stg::{Frag, Polarity, SignalKind, StgBuilder};
//!
//! # fn main() -> Result<(), modsyn_stg::StgError> {
//! let mut b = StgBuilder::new("demo");
//! let req = b.signal("req", SignalKind::Input)?;
//! let ack = b.signal("ack", SignalKind::Output)?;
//! let stg = b.cycle(Frag::seq([
//!     Frag::rise(req),
//!     Frag::rise(ack),
//!     Frag::fall(req),
//!     Frag::fall(ack),
//! ]))?;
//! assert_eq!(stg.signal_count(), 2);
//! # Ok(())
//! # }
//! ```

use modsyn_petri::{PlaceId, TransitionId};

use crate::{Polarity, SignalId, SignalKind, Stg, StgError};

/// A behaviour fragment: the body of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frag {
    /// A single signal edge.
    Event(SignalId, Polarity),
    /// Fragments executed one after another.
    Seq(Vec<Frag>),
    /// Fragments executed concurrently (fork before, join after).
    Par(Vec<Frag>),
    /// Free choice between alternatives (split place before, merge place
    /// after).
    Choice(Vec<Frag>),
}

impl Frag {
    /// A rising edge.
    pub fn rise(signal: SignalId) -> Frag {
        Frag::Event(signal, Polarity::Rise)
    }

    /// A falling edge.
    pub fn fall(signal: SignalId) -> Frag {
        Frag::Event(signal, Polarity::Fall)
    }

    /// Sequential composition.
    pub fn seq(frags: impl IntoIterator<Item = Frag>) -> Frag {
        Frag::Seq(frags.into_iter().collect())
    }

    /// Parallel (fork/join) composition.
    pub fn par(frags: impl IntoIterator<Item = Frag>) -> Frag {
        Frag::Par(frags.into_iter().collect())
    }

    /// Free-choice composition.
    pub fn choice(frags: impl IntoIterator<Item = Frag>) -> Frag {
        Frag::Choice(frags.into_iter().collect())
    }

    /// The last events of the fragment (those with nothing after them
    /// inside the fragment).
    fn is_single_exit(&self) -> bool {
        match self {
            Frag::Event(..) => true,
            Frag::Seq(fs) => fs.last().is_some_and(Frag::is_single_exit),
            Frag::Par(_) => false,
            Frag::Choice(fs) => fs.iter().all(Frag::is_single_exit),
        }
    }
}

/// What the next transition must consume.
#[derive(Debug, Clone)]
enum Pending {
    /// One fresh place per transition (normal causal arcs; a following
    /// transition joining several of these synchronises).
    Transitions(Vec<TransitionId>),
    /// One shared place fed by all transitions (choice-exit merge).
    Merge(Vec<TransitionId>),
    /// Pre-created places to consume directly (choice entry).
    Places(Vec<PlaceId>),
}

/// Builds STGs from [`Frag`] expressions.
#[derive(Debug)]
pub struct StgBuilder {
    stg: Stg,
}

impl StgBuilder {
    /// Starts a builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        StgBuilder {
            stg: Stg::new(name),
        }
    }

    /// Declares a signal.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::DuplicateSignal`] on name clashes.
    pub fn signal(
        &mut self,
        name: impl Into<String>,
        kind: SignalKind,
    ) -> Result<SignalId, StgError> {
        self.stg.add_signal(name, kind)
    }

    /// Compiles `body` into a cyclic STG: the fragment repeats forever, with
    /// the initial token placed before its first event.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::Parse`] (reused for construction problems) if the
    /// body does not end in a single-exit fragment — a trailing event is
    /// needed to close the cycle safely — or propagates Petri errors.
    pub fn cycle(mut self, body: Frag) -> Result<Stg, StgError> {
        if !body.is_single_exit() {
            return Err(StgError::Parse {
                line: 0,
                message: "cycle body must end in a single event (append one to close the loop)"
                    .into(),
            });
        }
        // Seed place, marked, consumed by the first event(s).
        let seed = self.stg.add_place("p_seed");
        self.stg.set_tokens(seed, 1)?;
        let exits = self.compile(&body, vec![Pending::Places(vec![seed])])?;
        // Close the cycle: every exit transition feeds the seed place.
        for pending in exits {
            match pending {
                Pending::Transitions(ts) | Pending::Merge(ts) => {
                    for t in ts {
                        self.stg.arc_into_place(t, seed)?;
                    }
                }
                Pending::Places(_) => unreachable!("compile never returns Places"),
            }
        }
        Ok(self.stg)
    }

    /// Wires `t` to consume everything pending, returning the new pending.
    fn wire_event(
        &mut self,
        t: TransitionId,
        pending: Vec<Pending>,
    ) -> Result<Vec<Pending>, StgError> {
        for p in pending {
            match p {
                Pending::Transitions(ts) => {
                    for from in ts {
                        let name = format!(
                            "<{},{}>",
                            self.stg.net().transition(from).name(),
                            self.stg.net().transition(t).name()
                        );
                        let place = self.stg.add_place(name);
                        self.stg.arc_into_place(from, place)?;
                        self.stg.arc_from_place(place, t)?;
                    }
                }
                Pending::Merge(ts) => {
                    // Note: no +/- in the name, so `.g` round-trips cleanly.
                    let place = self
                        .stg
                        .add_place(format!("pm{}", self.stg.net().place_count()));
                    for from in ts {
                        self.stg.arc_into_place(from, place)?;
                    }
                    self.stg.arc_from_place(place, t)?;
                }
                Pending::Places(ps) => {
                    for place in ps {
                        self.stg.arc_from_place(place, t)?;
                    }
                }
            }
        }
        Ok(vec![Pending::Transitions(vec![t])])
    }

    fn compile(&mut self, frag: &Frag, pending: Vec<Pending>) -> Result<Vec<Pending>, StgError> {
        match frag {
            Frag::Event(signal, polarity) => {
                let t = self.stg.add_transition(*signal, *polarity);
                self.wire_event(t, pending)
            }
            Frag::Seq(frags) => {
                let mut pending = pending;
                for f in frags {
                    pending = self.compile(f, pending)?;
                }
                Ok(pending)
            }
            Frag::Par(branches) => {
                // Each branch independently consumes a copy of the pending
                // set: sources fan out one place per branch (the fork), and
                // the caller's next event joins all branch exits.
                let mut exits = Vec::new();
                for branch in branches {
                    let mut out = self.compile(branch, pending.clone())?;
                    exits.append(&mut out);
                }
                Ok(exits)
            }
            Frag::Choice(branches) => {
                // Each alternative must funnel into a single exit event,
                // otherwise the merge place would receive one token per
                // parallel exit and the net would not stay 1-safe.
                if let Some(bad) = branches.iter().find(|b| !b.is_single_exit()) {
                    return Err(StgError::Parse {
                        line: 0,
                        message: format!("choice branch must end in a single event: {bad:?}"),
                    });
                }
                // One shared choice place per pending group; every branch's
                // first transition consumes the same place(s).
                let mut entry_places = Vec::new();
                for p in pending {
                    match p {
                        Pending::Transitions(ts) | Pending::Merge(ts) => {
                            let place = self
                                .stg
                                .add_place(format!("choice_{}", self.stg.net().place_count()));
                            for from in ts {
                                self.stg.arc_into_place(from, place)?;
                            }
                            entry_places.push(place);
                        }
                        Pending::Places(ps) => entry_places.extend(ps),
                    }
                }
                let mut exit_ts = Vec::new();
                for branch in branches {
                    let outs = self.compile(branch, vec![Pending::Places(entry_places.clone())])?;
                    for out in outs {
                        match out {
                            Pending::Transitions(ts) | Pending::Merge(ts) => {
                                exit_ts.extend(ts);
                            }
                            Pending::Places(_) => {
                                unreachable!("compile never returns Places")
                            }
                        }
                    }
                }
                Ok(vec![Pending::Merge(exit_ts)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsyn_petri::{NetClass, ReachabilityOptions};

    fn states(stg: &Stg) -> usize {
        stg.net()
            .reachability(&ReachabilityOptions::default())
            .unwrap()
            .markings
            .len()
    }

    #[test]
    fn sequential_cycle_has_one_state_per_event() {
        let mut b = StgBuilder::new("seq");
        let a = b.signal("a", SignalKind::Input).unwrap();
        let c = b.signal("c", SignalKind::Output).unwrap();
        let stg = b
            .cycle(Frag::seq([
                Frag::rise(a),
                Frag::rise(c),
                Frag::fall(a),
                Frag::fall(c),
            ]))
            .unwrap();
        assert_eq!(states(&stg), 4);
        assert_eq!(stg.net().classify(), NetClass::MarkedGraph);
    }

    #[test]
    fn par_multiplies_states() {
        let mut b = StgBuilder::new("par");
        let a = b.signal("a", SignalKind::Input).unwrap();
        let c = b.signal("c", SignalKind::Output).unwrap();
        let d = b.signal("d", SignalKind::Output).unwrap();
        // a+ ; (c+ c- || d+ d-) ; a-
        let stg = b
            .cycle(Frag::seq([
                Frag::rise(a),
                Frag::par([
                    Frag::seq([Frag::rise(c), Frag::fall(c)]),
                    Frag::seq([Frag::rise(d), Frag::fall(d)]),
                ]),
                Frag::fall(a),
            ]))
            .unwrap();
        // a+ -> 3x3 interleavings -> a-: 1 + 9 states... exact count checked
        // empirically; the important property is the product structure.
        let n = states(&stg);
        assert!(n >= 10, "expected concurrency blow-up, got {n}");
        assert_eq!(stg.net().classify(), NetClass::MarkedGraph);
    }

    #[test]
    fn choice_sums_states_and_is_free_choice() {
        let mut b = StgBuilder::new("choice");
        let a = b.signal("a", SignalKind::Input).unwrap();
        let c = b.signal("c", SignalKind::Output).unwrap();
        let d = b.signal("d", SignalKind::Output).unwrap();
        // a+ ; (c+ c- [] d+ d-) ; a-
        let stg = b
            .cycle(Frag::seq([
                Frag::rise(a),
                Frag::choice([
                    Frag::seq([Frag::rise(c), Frag::fall(c)]),
                    Frag::seq([Frag::rise(d), Frag::fall(d)]),
                ]),
                Frag::fall(a),
            ]))
            .unwrap();
        // Distinct markings: seed, post-a+ (choice place), mid-c, mid-d,
        // pre-a- (merge place). Alternatives share the choice/merge markings.
        let n = states(&stg);
        assert_eq!(n, 5);
        assert_eq!(stg.net().classify(), NetClass::FreeChoice);
    }

    #[test]
    fn par_tail_is_rejected() {
        let mut b = StgBuilder::new("bad");
        let a = b.signal("a", SignalKind::Input).unwrap();
        let c = b.signal("c", SignalKind::Output).unwrap();
        let body = Frag::par([Frag::rise(a), Frag::rise(c)]);
        assert!(matches!(b.cycle(body), Err(StgError::Parse { .. })));
    }

    #[test]
    fn cycle_is_live_and_safe() {
        let mut b = StgBuilder::new("live");
        let a = b.signal("a", SignalKind::Input).unwrap();
        let c = b.signal("c", SignalKind::Output).unwrap();
        let stg = b
            .cycle(Frag::seq([
                Frag::rise(a),
                Frag::par([Frag::seq([Frag::rise(c), Frag::fall(c)]), Frag::fall(a)]),
                Frag::rise(a),
                Frag::fall(a),
            ]))
            .unwrap();
        let g = stg
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert!(g.is_safe());
        assert!(g.deadlocks().is_empty());
    }
}
