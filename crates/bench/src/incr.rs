//! Incremental-synthesis measurements: seeded single-edit perturbations of
//! the Table-1 rows, replayed through the synthesis store.
//!
//! Per row the harness runs the paper's modular flow three times:
//!
//! 1. **Cold** — the unedited row against an empty [`SynthStore`],
//!    populating it with every module solve (all misses).
//! 2. **Full** — the *edited* row from scratch with no store attached: the
//!    from-scratch baseline wall clock and the byte-identity oracle.
//! 3. **Incremental** — the edited row against the warm store: hits replay
//!    recorded modules, misses are the dirty set that had to be re-solved.
//!
//! The incremental result must be **byte-identical** to the full re-run
//! (compared on the serving layer's canonical JSON rendering) and is
//! independently certified by the `modsyn-check` oracle; the store can only
//! change where answers come from, never what they are.
//!
//! Edits come from [`choose_edit`]: a behavioural [`pulse_edit`] whose
//! first-selected module is provably untouched (so the warm run must hit at
//! least once), or — when no such pulse exists for the row — a pure
//! [`rename_edit`], which moves the STG digest while leaving every module
//! quotient identical (zero dirty modules by construction).

use std::sync::Arc;
use std::time::Instant;

use modsyn::{
    certify_report, determine_input_set, synthesize, Method, StoreLink, StoreSession, SynthStore,
    SynthesisOptions, SynthesisReport,
};
use modsyn_obs::Json;
use modsyn_sat::SolverOptions;
use modsyn_sg::{derive, StateGraph};
use modsyn_stg::{benchmarks, output_module_digests, stg_digest, write_g, Stg};
use modsyn_store::{graph_key_text, pulse_edit, rename_edit};
use modsyn_svc::render_report;

use crate::TABLE1_BACKTRACK_LIMIT;

/// Pulse candidates probed per row before falling back to a rename edit.
/// Each probe costs one state-graph derivation plus one module-selection
/// pass, so the cap keeps the chooser cheap on the large rows.
const MAX_PULSE_PROBES: usize = 4;

/// One chosen single-edit perturbation of a benchmark STG.
pub struct Edit {
    /// The edited STG (same model name for pulses, suffixed for renames).
    pub stg: Stg,
    /// Deterministic human-readable description, e.g. `pulse y (seed 0)`.
    pub description: String,
    /// `"pulse"` or `"rename"`.
    pub kind: &'static str,
}

/// One row's incremental-synthesis measurement (see [`run_incr_row`]).
pub struct IncrMeasurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Edit description ([`Edit::description`]).
    pub edit: String,
    /// Edit kind ([`Edit::kind`]).
    pub edit_kind: String,
    /// Module solves in the cold (store-populating) run.
    pub base_modules: u64,
    /// Module solves in the incremental run (hits + dirty).
    pub total_modules: u64,
    /// Module solves the incremental run answered from the store.
    pub store_hits: u64,
    /// Module solves the incremental run had to re-run — the dirty set.
    pub dirty_modules: u64,
    /// Output modules whose STG-level projection digest changed
    /// ([`output_module_digests`]) — the edit's predicted blast radius.
    pub changed_modules: usize,
    /// Wall clock of the from-scratch synthesis of the edited STG.
    pub wall_full_s: f64,
    /// Wall clock of the incremental synthesis of the edited STG.
    pub wall_incr_s: f64,
}

/// The Table-1 synthesis options ([`crate::run_row`]'s), modular method.
fn table1_options() -> SynthesisOptions {
    let mut options = SynthesisOptions::for_method(Method::Modular);
    options.solver = SolverOptions {
        max_backtracks: Some(TABLE1_BACKTRACK_LIMIT),
        ..SolverOptions::default()
    };
    options
}

/// The exact rendering of the module the modular flow would solve *first*
/// on `stg`, or `None` when no module has locally-resolvable conflicts
/// (residual-only rows). Mirrors the selection in `modular_resolve`:
/// minimum conflict count over the outputs in signal order, first wins.
///
/// Two STGs that agree on this text agree on the first module solve's
/// content key (same scope, same zero name offset, same solver options),
/// so a warm incremental run is guaranteed at least one store hit.
fn first_module_text(stg: &Stg, options: &SynthesisOptions) -> Option<String> {
    let graph = derive(stg, &options.derive).ok()?;
    let mut best: Option<(String, usize)> = None;
    for output in 0..graph.signals().len() {
        if !graph.signals()[output].kind.is_non_input() {
            continue;
        }
        let set = determine_input_set(&graph, output).ok()?;
        let quotient = graph.hide_signals(&set.hidden).ok()?;
        let analysis = quotient.graph.csc_analysis();
        let conflicts =
            analysis.csc_pairs.len() - quotient.graph.unresolvable_csc_pairs(&analysis).len();
        if conflicts == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(_, c)| conflicts < *c) {
            best = Some((graph_key_text(&quotient.graph), conflicts));
        }
    }
    best.map(|(text, _)| text)
}

/// The deterministic rename fallback for `stg`: digest moves, behaviour
/// (and with it every module quotient) stays identical.
fn rename_fallback(stg: &Stg, seed: usize) -> Edit {
    Edit {
        stg: rename_edit(stg, &format!("-r{seed}")),
        description: format!("rename -r{seed}"),
        kind: "rename",
    }
}

/// Picks a deterministic single edit for `stg`, steered by `seed`.
///
/// Preference order: a [`pulse_edit`] on a non-input signal (rotated by
/// `seed`) that leaves the first-selected module's exact quotient rendering
/// unchanged — a genuine behavioural change the store can still partially
/// absorb — then the [`rename_edit`] fallback, which always guarantees a
/// fully-warm incremental run.
pub fn choose_edit(stg: &Stg, seed: usize) -> Edit {
    let options = table1_options();
    if let Some(base_text) = first_module_text(stg, &options) {
        let signals: Vec<String> = stg
            .non_input_signals()
            .into_iter()
            .map(|s| stg.signal(s).name().to_string())
            .collect();
        let mut probed = 0;
        for k in 0..signals.len() {
            if probed >= MAX_PULSE_PROBES {
                break;
            }
            let name = &signals[(seed + k) % signals.len()];
            let Some(edited) = pulse_edit(stg, name, seed) else {
                continue;
            };
            probed += 1;
            if first_module_text(&edited, &options).as_deref() == Some(base_text.as_str()) {
                return Edit {
                    stg: edited,
                    description: format!("pulse {name} (seed {seed})"),
                    kind: "pulse",
                };
            }
        }
    }
    rename_fallback(stg, seed)
}

/// From-scratch synthesis of `stg` (no store), certified by the oracle.
/// Returns the report and its wall clock, or `None` when synthesis or
/// certification fails — a pulse edit can push a row outside the solvable
/// envelope, in which case the caller falls back to a rename edit.
fn full_certified(stg: &Stg, options: &SynthesisOptions) -> Option<(SynthesisReport, f64)> {
    let spec = derive(stg, &options.derive).ok()?;
    let started = Instant::now();
    let report = synthesize(stg, options).ok()?;
    let wall = started.elapsed().as_secs_f64();
    certify_report(Some(&spec), &report).ok()?;
    Some((report, wall))
}

/// Runs the cold → edit → full → incremental measurement for one Table-1
/// row with the standard limits. See the module docs for the protocol.
///
/// # Panics
///
/// Panics if `name` is not a known benchmark, if the unedited row fails to
/// synthesise, or if any incremental invariant is violated (result not
/// byte-identical to the from-scratch run, certification failure, zero
/// store hits, or dirty count not strictly below the module total).
pub fn run_incr_row(name: &str, seed: usize) -> IncrMeasurement {
    let base = benchmarks::by_name(name).expect("known benchmark");
    let options = table1_options();

    // Cold pass: populate the store from the unedited row.
    let store = Arc::new(SynthStore::new());
    let cold_session = StoreSession::new(Arc::clone(&store));
    let mut cold_options = options.clone();
    cold_options.store = StoreLink::to(Arc::clone(&cold_session));
    synthesize(&base, &cold_options).expect("Table-1 row synthesises");
    let base_modules = cold_session.total();

    // The edit, and the from-scratch baseline on the edited STG. A pulse
    // that no longer synthesises (or certifies) degrades to a rename,
    // which inherits solvability from the unedited row.
    let mut edit = choose_edit(&base, seed);
    let (full_report, wall_full_s) = match full_certified(&edit.stg, &options) {
        Some(full) => full,
        None => {
            assert_eq!(edit.kind, "pulse", "rename edits preserve solvability");
            edit = rename_fallback(&base, seed);
            full_certified(&edit.stg, &options).expect("renamed row synthesises")
        }
    };
    assert_ne!(
        stg_digest(&base),
        stg_digest(&edit.stg),
        "the edit must move the content digest"
    );

    // Incremental pass: the edited STG against the warm store.
    let incr_session = StoreSession::new(Arc::clone(&store));
    let mut incr_options = options.clone();
    incr_options.store = StoreLink::to(Arc::clone(&incr_session));
    let started = Instant::now();
    let incr_report = synthesize(&edit.stg, &incr_options).expect("incremental run synthesises");
    let wall_incr_s = started.elapsed().as_secs_f64();

    // The three incremental invariants: certified, byte-identical to the
    // from-scratch run, strictly cheaper than re-solving everything.
    let spec = derive(&edit.stg, &options.derive).expect("edited STG derives");
    certify_report(Some(&spec), &incr_report).expect("oracle certifies the incremental result");
    assert_eq!(
        render_report(&incr_report),
        render_report(&full_report),
        "incremental result must be byte-identical to from-scratch synthesis"
    );
    let store_hits = incr_session.hits();
    let dirty_modules = incr_session.misses();
    let total_modules = incr_session.total();
    assert!(
        store_hits >= 1,
        "incremental run must reuse at least one module"
    );
    assert!(
        dirty_modules < total_modules,
        "dirty set must be strictly smaller than the module total"
    );

    let changed_modules = changed_module_count(&base, &edit.stg);
    IncrMeasurement {
        benchmark: name.to_string(),
        edit: edit.description,
        edit_kind: edit.kind.to_string(),
        base_modules,
        total_modules,
        store_hits,
        dirty_modules,
        changed_modules,
        wall_full_s,
        wall_incr_s,
    }
}

/// How many output-module projection digests the edit changed — the
/// STG-level blast-radius prediction (0 for renames by construction).
fn changed_module_count(base: &Stg, edited: &Stg) -> usize {
    let before = output_module_digests(base);
    let after = output_module_digests(edited);
    after
        .iter()
        .filter(|(name, digest)| {
            before
                .iter()
                .find(|(n, _)| n == name)
                .is_none_or(|(_, d)| d != digest)
        })
        .count()
        + before
            .iter()
            .filter(|(name, _)| !after.iter().any(|(n, _)| n == name))
            .count()
}

/// The `.g` renderings of a row and its chosen edit — the CI smoke test
/// feeds these to a live daemon (`/synth` then `/synth/incr`).
///
/// # Panics
///
/// Panics if `name` is not a known benchmark.
pub fn edit_specs(name: &str, seed: usize) -> (String, String) {
    let base = benchmarks::by_name(name).expect("known benchmark");
    let edit = choose_edit(&base, seed);
    (write_g(&base), write_g(&edit.stg))
}

/// `BENCH_incr.json`: deterministic per-row records (wall clocks are
/// informational; everything else is exact), no timestamps.
pub fn incr_json(seed: usize, rows: &[IncrMeasurement]) -> Json {
    let records: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("benchmark", Json::from(r.benchmark.as_str())),
                ("edit", Json::from(r.edit.as_str())),
                ("edit_kind", Json::from(r.edit_kind.as_str())),
                ("base_modules", Json::from(r.base_modules)),
                ("total_modules", Json::from(r.total_modules)),
                ("store_hits", Json::from(r.store_hits)),
                ("dirty_modules", Json::from(r.dirty_modules)),
                ("changed_modules", Json::from(r.changed_modules as u64)),
                ("wall_full_s", Json::from(r.wall_full_s)),
                ("wall_incr_s", Json::from(r.wall_incr_s)),
            ])
        })
        .collect();
    Json::obj([
        ("suite", Json::from("incr")),
        ("seed", Json::from(seed as u64)),
        ("backtrack_limit", Json::from(TABLE1_BACKTRACK_LIMIT)),
        ("rows", Json::Arr(records)),
    ])
}

/// Re-exported for the smoke tests: the state graph a certification needs.
///
/// # Errors
///
/// Propagates derivation failures from [`derive`].
pub fn derive_spec(stg: &Stg) -> Result<StateGraph, modsyn_sg::SgError> {
    derive(stg, &table1_options().derive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chooser_is_deterministic() {
        let stg = benchmarks::by_name("vbe-ex2").unwrap();
        let a = choose_edit(&stg, 3);
        let b = choose_edit(&stg, 3);
        assert_eq!(a.description, b.description);
        assert_eq!(write_g(&a.stg), write_g(&b.stg));
    }

    #[test]
    fn rename_fallback_moves_digest_only() {
        let stg = benchmarks::by_name("vbe-ex1").unwrap();
        let edit = rename_fallback(&stg, 7);
        assert_eq!(edit.kind, "rename");
        assert_ne!(stg_digest(&stg), stg_digest(&edit.stg));
        assert_eq!(changed_module_count(&stg, &edit.stg), 0);
    }

    #[test]
    fn incr_row_smoke() {
        let m = run_incr_row("vbe-ex2", 0);
        assert_eq!(m.benchmark, "vbe-ex2");
        assert!(m.store_hits >= 1);
        assert!(m.dirty_modules < m.total_modules);
    }

    #[test]
    fn incr_json_has_no_timestamps() {
        let m = run_incr_row("vbe-ex1", 1);
        let json = incr_json(1, &[m]).pretty();
        assert!(json.contains("\"suite\": \"incr\""));
        assert!(!json.contains("time_unix"));
        assert!(!json.contains("timestamp"));
    }
}
